//! Cross-crate property tests: FRaZ's contract — "if the search reports a
//! feasible result, re-running the recommended bound lands in the acceptable
//! ratio window and respects the error constraint" — must hold for random
//! targets, tolerances and fields.

use proptest::prelude::*;

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;

proptest! {
    // Each case runs a full (small) FRaZ search, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn feasible_results_really_are_inside_the_window(
        target in 4.0f64..40.0,
        tolerance in 0.05f64..0.25,
        seed in 0u64..1000,
    ) {
        let app = synthetic::hurricane(6, 16, 16, 1, seed);
        let dataset = app.field("TCf", 0);
        let config = SearchConfig {
            regions: 4,
            max_iterations: 16,
            threads: 2,
            ..SearchConfig::new(target, tolerance)
        };
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
        let outcome = search.run(&dataset);
        prop_assert!(outcome.error_bound > 0.0);
        prop_assert!(outcome.evaluations >= 1);
        if outcome.feasible {
            let ratio = outcome.best.compression_ratio;
            prop_assert!(
                ratio >= target * (1.0 - tolerance) - 1e-9 &&
                ratio <= target * (1.0 + tolerance) + 1e-9,
                "feasible but ratio {} outside [{}, {}]",
                ratio, target * (1.0 - tolerance), target * (1.0 + tolerance)
            );
            // And the recommended bound reproduces that ratio.
            let check = search.compressor().evaluate(&dataset, outcome.error_bound, false).unwrap();
            prop_assert!((check.compression_ratio - ratio).abs() < 1e-9);
        } else {
            // Infeasible answers still report the closest observation.
            prop_assert!(outcome.best.compression_ratio >= 0.0);
        }
    }

    #[test]
    fn error_ceiling_is_never_exceeded(
        target in 20.0f64..200.0,
        ceiling_fraction in 1e-4f64..1e-2,
        seed in 0u64..1000,
    ) {
        let app = synthetic::cesm(24, 32, 1, seed);
        let dataset = app.field("FLDSC", 0);
        let ceiling = dataset.stats().value_range() * ceiling_fraction;
        let config = SearchConfig {
            regions: 3,
            max_iterations: 10,
            threads: 2,
            ..SearchConfig::new(target, 0.1)
        }
        .with_max_error(ceiling);
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
        let outcome = search.run(&dataset);
        prop_assert!(outcome.error_bound <= ceiling * (1.0 + 1e-9));
        let quality = outcome.best.quality.expect("quality measured");
        prop_assert!(quality.max_abs_error <= ceiling * (1.0 + 1e-9));
    }
}
