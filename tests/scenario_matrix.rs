//! The scenario × codec oracle matrix: every error-bounded codec in the
//! registry is exercised over every synthetic regime, and the regimes'
//! *known* ground truth ([`fraz::scenarios::ScenarioDescriptor`]) turns
//! into hard assertions — bound conformance per regime, the predicted
//! cross-regime compressibility ordering (asserted, not logged), PSNR-model
//! first-guess quality on smooth vs. shock fields, and tune-cache
//! fingerprint stability across regenerated identical scenarios.
//!
//! The suite never hard-codes codec names: it runs for whatever the
//! default registry registers (including slim feature builds with a single
//! codec), so a future backend is covered the moment it registers.
//!
//! Ordering is asserted on the geometric mean of each regime's ratios
//! across the canonical workloads the codec supports (1-D 8192 and 2-D
//! 64×64 at an absolute bound of 2e-2, f32) — the standard way compression
//! papers aggregate across datasets, and robust to a codec family being
//! layout-biased toward one dimensionality.

use fraz::data::{DType, Dims};
use fraz::pressio::{registry, BoundKind, Compressor};
use fraz::scenarios::{all_scenarios, by_name, Regime, ScenarioField, DEFAULT_SEED, REGIMES};
use fraz::tune::fingerprint;

/// The canonical ordering workloads (every codec supports at least one).
fn canonical_dims() -> [Dims; 2] {
    [Dims::d1(8192), Dims::d2(64, 64)]
}

/// The absolute bound the compressibility ordering is defined at.
const ORDERING_BOUND: f64 = 2e-2;

fn error_bounded_codecs() -> Vec<(String, Box<dyn Compressor>)> {
    let names = registry::error_bounded_names();
    assert!(
        !names.is_empty(),
        "no error-bounded codecs registered — nothing to test"
    );
    names
        .into_iter()
        .map(|name| {
            let codec = registry::build_default(&name)
                .unwrap_or_else(|e| panic!("building {name} failed: {e}"));
            (name, codec)
        })
        .collect()
}

/// Every regime, every registered codec, every supported canonical
/// workload, both dtypes, across three decades of bounds: the decompressed
/// field must honour the codec's bound contract.
#[test]
fn every_regime_conforms_to_every_codec_bound() {
    let bounds = [2e-2, 1e-3, 1e-5];
    for (name, codec) in error_bounded_codecs() {
        for dims in &canonical_dims() {
            if !codec.supports_dims(dims) {
                continue;
            }
            for dtype in [DType::F32, DType::F64] {
                for config in all_scenarios(DEFAULT_SEED) {
                    let field = config.generate(dims, dtype, 0);
                    for bound in bounds {
                        assert_conforms(&name, codec.as_ref(), &field, bound);
                    }
                }
            }
        }
    }
}

fn assert_conforms(name: &str, codec: &dyn Compressor, field: &ScenarioField, bound: f64) {
    let regime = field.descriptor.name;
    let ctx = || {
        format!(
            "{name} on {regime} {:?} at bound {bound:e}",
            field.dataset.dims
        )
    };
    let compressed = codec
        .compress(&field.dataset, bound)
        .unwrap_or_else(|e| panic!("{}: compress failed: {e}", ctx()));
    let restored = codec
        .decompress(&compressed)
        .unwrap_or_else(|e| panic!("{}: decompress failed: {e}", ctx()));
    let original = field.dataset.values_f64();
    let recovered = restored.values_f64();
    assert_eq!(recovered.len(), original.len(), "{}", ctx());
    match codec.bound_kind() {
        BoundKind::AbsoluteError | BoundKind::AccuracyTolerance | BoundKind::InfinityNorm => {
            for (i, (x, y)) in original.iter().zip(recovered.iter()).enumerate() {
                let err = (x - y).abs();
                assert!(
                    err <= bound,
                    "{}: |x[{i}] - x̂[{i}]| = {err:e} (x = {x}, x̂ = {y})",
                    ctx()
                );
            }
        }
        BoundKind::L2Norm => {
            let mse = original
                .iter()
                .zip(recovered.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                / original.len() as f64;
            let rmse = mse.sqrt();
            assert!(rmse <= bound * (1.0 + 1e-9), "{}: rmse = {rmse:e}", ctx());
        }
        other => panic!("{name}: unexpected bound kind {other:?} in error-bounded set"),
    }
}

/// Geometric-mean ratio of one regime across the codec's supported
/// canonical workloads at the ordering bound.
fn aggregate_ratio(codec: &dyn Compressor, regime: Regime) -> f64 {
    let config = by_name(regime.name()).unwrap();
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for dims in &canonical_dims() {
        if !codec.supports_dims(dims) {
            continue;
        }
        let field = config.generate(dims, DType::F32, 0);
        let out = codec
            .evaluate(&field.dataset, ORDERING_BOUND, false)
            .unwrap_or_else(|e| panic!("{} on {regime}: {e}", codec.name()));
        log_sum += out.compression_ratio.ln();
        count += 1;
    }
    assert!(
        count > 0,
        "{}: no supported canonical workload",
        codec.name()
    );
    (log_sum / count as f64).exp()
}

/// The descriptors' compressibility promises, asserted per codec:
/// the universal chain `smooth ≻ turbulence ≻ noise` (the regimes carrying
/// a `compress_rank`), and `{oscillatory, shock, sparse} ≻ noise` for the
/// rank-less regimes.
#[test]
fn compressibility_ordering_holds_for_every_codec() {
    for (name, codec) in error_bounded_codecs() {
        let ratio_of = |regime: Regime| aggregate_ratio(codec.as_ref(), regime);

        // The ranked chain, driven by the descriptors themselves so a new
        // ranked regime is asserted the moment it declares a rank.
        let mut chain: Vec<(u8, Regime, f64)> = REGIMES
            .iter()
            .filter_map(|&r| r.compress_rank().map(|rank| (rank, r, ratio_of(r))))
            .collect();
        chain.sort_by_key(|&(rank, _, _)| rank);
        assert!(chain.len() >= 3, "chain regimes went missing");
        for pair in chain.windows(2) {
            let (_, better, a) = pair[0];
            let (_, worse, b) = pair[1];
            assert!(
                a > b,
                "{name}: {better} must out-compress {worse} at equal bound \
                 {ORDERING_BOUND:e}, got {a:.3} vs {b:.3}"
            );
        }

        // Rank-less regimes still beat noise under every codec.
        let noise = ratio_of(Regime::Noise);
        for regime in [Regime::Oscillatory, Regime::Shock, Regime::Sparse] {
            let ratio = ratio_of(regime);
            assert!(
                ratio > noise,
                "{name}: {regime} must out-compress noise, got {ratio:.3} vs {noise:.3}"
            );
        }
    }
}

/// For codecs that publish a PSNR⇄bound model, the analytic first guess
/// must land at-or-above the requested PSNR (it seeds a search that only
/// tightens), must not overshoot absurdly, and must be at least as
/// accurate on the smooth field as on the shock field — discontinuities
/// are exactly where the uniform-quantization assumption degrades.
#[test]
fn psnr_model_first_guess_is_tight_on_smooth_and_conservative_on_shock() {
    let dims = Dims::d1(8192);
    let mut modeled = 0usize;
    for (name, codec) in error_bounded_codecs() {
        let Some(model) = registry::describe(&name).and_then(|d| d.psnr_model) else {
            continue;
        };
        if !codec.supports_dims(&dims) {
            continue;
        }
        modeled += 1;
        for target in [50.0f64, 70.0] {
            let mut errors = Vec::new();
            for regime in [Regime::Smooth, Regime::Shock] {
                let field = by_name(regime.name())
                    .unwrap()
                    .generate(&dims, DType::F32, 0);
                let range = field.descriptor.value_range();
                let bound = model
                    .bound_for_psnr(range, target)
                    .expect("scenario ranges are non-degenerate");
                let out = codec
                    .evaluate(&field.dataset, bound, true)
                    .unwrap_or_else(|e| panic!("{name} on {regime}: {e}"));
                let actual = out.quality.expect("quality requested").psnr;
                assert!(
                    actual >= target,
                    "{name} on {regime}: first guess must reach the target \
                     (target {target} dB, got {actual:.2} dB)"
                );
                assert!(
                    actual <= target + 8.0,
                    "{name} on {regime}: first guess overshoots by {:.2} dB — \
                     the model is wasting compression",
                    actual - target
                );
                errors.push(actual - target);
            }
            let (smooth_err, shock_err) = (errors[0], errors[1]);
            assert!(
                smooth_err <= shock_err,
                "{name} at {target} dB: model error on smooth ({smooth_err:.2} dB) \
                 must not exceed shock ({shock_err:.2} dB)"
            );
        }
    }
    // At least sz/szx publish models in the default build; a slim build
    // without any modeled codec legitimately skips the loop body.
    if registry::error_bounded_names()
        .iter()
        .any(|n| n == "sz" || n == "szx")
    {
        assert!(modeled > 0, "expected at least one codec with a PSNR model");
    }
}

/// The tune cache keys on a dataset fingerprint: regenerating the *same*
/// scenario must fingerprint identically (cache hits across runs), and
/// changing the seed, regime, or time-step must move the fingerprint
/// (no false sharing of tuned bounds).
#[test]
fn tune_cache_fingerprints_are_stable_across_regeneration() {
    let dims = Dims::d2(64, 64);
    for regime in REGIMES {
        let config = by_name(regime.name()).unwrap();
        let a = config.generate(&dims, DType::F32, 0);
        let b = config.generate(&dims, DType::F32, 0);
        assert_eq!(
            fingerprint(&a.dataset),
            fingerprint(&b.dataset),
            "{regime}: regenerated identical scenario must fingerprint identically"
        );

        let reseeded = config
            .clone()
            .with_seed(DEFAULT_SEED + 1)
            .generate(&dims, DType::F32, 0);
        assert_ne!(
            fingerprint(&a.dataset),
            fingerprint(&reseeded.dataset),
            "{regime}: a different seed must change the fingerprint"
        );

        if regime != Regime::Sparse || config.blob_count > 0 {
            let stepped = config.generate(&dims, DType::F32, 1);
            assert_ne!(
                fingerprint(&a.dataset),
                fingerprint(&stepped.dataset),
                "{regime}: a different time-step must change the fingerprint"
            );
        }
    }

    // Distinct regimes never collide at the default seed.
    let prints: Vec<u64> = REGIMES
        .iter()
        .map(|r| {
            fingerprint(
                &by_name(r.name())
                    .unwrap()
                    .generate(&dims, DType::F32, 0)
                    .dataset,
            )
        })
        .collect();
    for i in 0..prints.len() {
        for j in (i + 1)..prints.len() {
            assert_ne!(
                prints[i], prints[j],
                "{} and {} fingerprints collide",
                REGIMES[i], REGIMES[j]
            );
        }
    }
}
