//! Stress tests for the shared work-stealing pool under the real FRaZ
//! task graph: concurrent applications on one pool, nested field→region
//! scopes, and early-termination promptness.
//!
//! CI runs this file in `--release` as well — scoped-pool bugs (lost
//! wakeups, help-loop races) often only surface under optimized timing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fraz::core::{FixedRatioSearch, Orchestrator, OrchestratorConfig, SearchConfig};
use fraz::data::{synthetic, Dataset, Dims};
use fraz::pool::Pool;
use fraz::pressio::PressioError;
use fraz::Compressor;

fn quick_search(target: f64) -> SearchConfig {
    SearchConfig {
        regions: 4,
        max_iterations: 10,
        threads: 2,
        measure_final_quality: false,
        ..SearchConfig::new(target, 0.15)
    }
}

fn hurricane_fields(fields: usize, steps: usize, seed: u64) -> Vec<(String, Vec<Dataset>)> {
    let app = synthetic::hurricane(6, 12, 12, steps, seed);
    app.field_names()
        .into_iter()
        .take(fields)
        .map(|f| (f.clone(), app.series(&f)))
        .collect()
}

#[test]
fn concurrent_run_application_calls_share_one_pool() {
    // Two orchestrators over different backends draw from a single
    // 4-worker pool, driven from independent caller threads at once.
    // Every field of both applications must complete, and neither call
    // may deadlock even though their field and region tasks interleave
    // on the same workers.
    let pool = Arc::new(Pool::new(4));
    let orch_sz = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 4,
            ..OrchestratorConfig::new(quick_search(8.0))
        },
    )
    .unwrap()
    .with_pool(Arc::clone(&pool));
    let orch_zfp = Orchestrator::new(
        "zfp",
        OrchestratorConfig {
            total_workers: 4,
            ..OrchestratorConfig::new(quick_search(8.0))
        },
    )
    .unwrap()
    .with_pool(Arc::clone(&pool));

    let fields_a = hurricane_fields(3, 2, 7);
    let fields_b = hurricane_fields(3, 2, 19);
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| orch_sz.run_application(&fields_a));
        let hb = s.spawn(|| orch_zfp.run_application(&fields_b));
        (ha.join().unwrap(), hb.join().unwrap())
    });

    assert_eq!(a.fields.len(), 3);
    assert_eq!(b.fields.len(), 3);
    for series in a.fields.iter().chain(b.fields.iter()) {
        assert_eq!(series.steps.len(), 2);
        for step in &series.steps {
            assert!(step.best.compression_ratio > 1.0);
        }
    }
    // The shared pool really was shared.
    assert!(Arc::ptr_eq(orch_sz.pool(), orch_zfp.pool()));
    assert_eq!(pool.threads(), 4);
}

#[test]
fn nested_region_scopes_complete_on_a_one_worker_pool() {
    // The deadlock canary for the real task graph: with a single worker,
    // a field task can only finish if the worker executes the region
    // tasks that field submitted to the same pool.
    let pool = Arc::new(Pool::new(1));
    let orch = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 1,
            ..OrchestratorConfig::new(quick_search(8.0))
        },
    )
    .unwrap()
    .with_pool(pool);
    let fields = hurricane_fields(2, 2, 3);
    let outcome = orch.run_application(&fields);
    assert_eq!(outcome.fields.len(), 2);
    for series in &outcome.fields {
        assert_eq!(series.steps.len(), 2);
    }
}

#[test]
fn repeated_runs_reuse_the_pool() {
    // Back-to-back applications on one orchestrator: the pool is built
    // once and every run just enqueues tasks.  (The zero-OS-thread claim
    // itself is enforced structurally — search.rs/orchestrator.rs no
    // longer reference std::thread::scope/spawn at all.)
    let orch = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 2,
            ..OrchestratorConfig::new(quick_search(8.0))
        },
    )
    .unwrap();
    let fields = hurricane_fields(2, 1, 5);
    for _ in 0..5 {
        let outcome = orch.run_application(&fields);
        assert_eq!(outcome.fields.len(), 2);
        assert_eq!(outcome.total_workers, 2);
    }
}

/// A synthetic compressor whose ratio is exactly `100 x bound` (so a
/// 10:1 target is trivially feasible at bound 0.1) but which *stalls* on every evaluation
/// outside the winning neighbourhood — making slow sibling regions
/// observable: if cancellation were not prompt, the search would grind
/// through every stalled evaluation of every region.
struct StallingCodec {
    calls: AtomicUsize,
    stall: Duration,
}

impl Compressor for StallingCodec {
    fn name(&self) -> &str {
        "stalling"
    }
    fn supports_dims(&self, _dims: &Dims) -> bool {
        true
    }
    fn bound_range(&self, _dataset: &Dataset) -> (f64, f64) {
        (1e-6, 1.0)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        // The acceptable window for the 10:1 target sits at bound = 0.1
        // (ratio = 100 x bound), in a high region — one of the regions the
        // descending stripes reach first; evaluations far from it are
        // slow, like a hard region's would be.
        if !(0.05..=0.2).contains(&error_bound) {
            std::thread::sleep(self.stall);
        }
        let original = dataset.byte_size();
        let ratio = (100.0 * error_bound).max(1.01);
        let compressed = ((original as f64) / ratio).max(1.0) as usize;
        Ok(vec![0u8; compressed])
    }
    fn decompress(&self, _data: &[u8]) -> Result<Dataset, PressioError> {
        Err(PressioError::Codec(
            "stalling codec cannot decompress".into(),
        ))
    }
}

#[test]
fn early_termination_stops_sibling_regions_promptly_under_the_pool() {
    let codec = Arc::new(StallingCodec {
        calls: AtomicUsize::new(0),
        stall: Duration::from_millis(5),
    });
    let dataset = Dataset::from_f32("t", "f", 0, Dims::d1(4096), vec![1.0; 4096]);
    let config = SearchConfig {
        regions: 8,
        max_iterations: 24,
        threads: 4,
        measure_final_quality: false,
        ..SearchConfig::new(10.0, 0.1)
    };
    let budget = config.regions * config.max_iterations;
    let search = FixedRatioSearch::new(Arc::clone(&codec) as Arc<dyn Compressor>, config)
        .with_pool(Arc::new(Pool::new(4)));

    let outcome = search.run(&dataset);
    assert!(outcome.feasible, "10:1 is feasible by construction");
    let calls = codec.calls.load(Ordering::Relaxed);
    // Early termination must cut the race short: without prompt
    // cancellation every region would burn its whole budget.
    assert!(
        calls < budget / 2,
        "cancellation was not prompt: {calls} compressor calls of a {budget} budget"
    );
    // The winner's measurement was reused, so the search spent exactly as
    // many compressor calls as it reported.
    assert_eq!(outcome.evaluations, calls);
    // Regions either won, were cancelled mid-flight, or never started.
    assert!(outcome.regions.len() <= 8);
    assert!(outcome
        .regions
        .iter()
        .any(|r| r.cancelled || r.reached_cutoff));
}
