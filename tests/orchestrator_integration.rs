//! Integration tests for the parallel orchestrator over multi-field,
//! multi-time-step synthetic applications.

use fraz::core::{Orchestrator, OrchestratorConfig, SearchConfig};
use fraz::data::synthetic;
use fraz::data::Dataset;

fn quick_search(target: f64) -> SearchConfig {
    SearchConfig {
        regions: 4,
        max_iterations: 12,
        threads: 2,
        measure_final_quality: false,
        ..SearchConfig::new(target, 0.15)
    }
}

#[test]
fn time_series_mostly_reuses_predictions() {
    let app = synthetic::hurricane(6, 16, 16, 6, 13);
    let series = app.series("TCf");
    let orch = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 4,
            ..OrchestratorConfig::new(quick_search(8.0))
        },
    )
    .unwrap();
    let outcome = orch.run_series("TCf", &series, 2);
    assert_eq!(outcome.steps.len(), 6);
    assert!(
        outcome.convergence_rate() >= 0.5,
        "{}",
        outcome.convergence_rate()
    );
    // Temporal coherence means training runs on only a minority of steps
    // after the first (the paper retrained 4 of 48 on Hurricane-CLOUD).
    assert!(
        outcome.retrain_steps.len() <= 3,
        "retrained too often: {:?}",
        outcome.retrain_steps
    );
}

#[test]
fn prediction_reuse_reduces_compressor_calls() {
    let app = synthetic::cesm(24, 48, 4, 29);
    let series = app.series("FLDSC");
    let with_reuse = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 4,
            reuse_prediction: true,
            ..OrchestratorConfig::new(quick_search(6.0))
        },
    )
    .unwrap()
    .run_series("FLDSC", &series, 2);
    let without_reuse = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 4,
            reuse_prediction: false,
            ..OrchestratorConfig::new(quick_search(6.0))
        },
    )
    .unwrap()
    .run_series("FLDSC", &series, 2);
    assert!(
        with_reuse.total_evaluations() < without_reuse.total_evaluations(),
        "reuse {} vs no-reuse {}",
        with_reuse.total_evaluations(),
        without_reuse.total_evaluations()
    );
}

#[test]
fn application_run_processes_every_field_and_timestep() {
    let app = synthetic::nyx(12, 16, 16, 2, 37);
    let fields: Vec<(String, Vec<Dataset>)> = app
        .field_names()
        .into_iter()
        .map(|f| (f.clone(), app.series(&f)))
        .collect();
    let orch = Orchestrator::new(
        "zfp",
        OrchestratorConfig {
            total_workers: 8,
            ..OrchestratorConfig::new(quick_search(10.0))
        },
    )
    .unwrap();
    let outcome = orch.run_application(&fields);
    assert_eq!(outcome.fields.len(), fields.len());
    for series in &outcome.fields {
        assert_eq!(series.steps.len(), 2);
        for step in &series.steps {
            assert!(step.best.compression_ratio > 1.0);
        }
    }
    // The aggregate run cannot be faster than its longest field.
    assert!(outcome.elapsed >= outcome.longest_field_time());
}

#[test]
fn more_workers_do_not_change_results_only_speed() {
    let app = synthetic::cesm(24, 48, 2, 53);
    let fields: Vec<(String, Vec<Dataset>)> = app
        .field_names()
        .into_iter()
        .take(2)
        .map(|f| (f.clone(), app.series(&f)))
        .collect();
    let run = |workers: usize| {
        Orchestrator::new(
            "sz",
            OrchestratorConfig {
                total_workers: workers,
                ..OrchestratorConfig::new(quick_search(6.0))
            },
        )
        .unwrap()
        .run_application(&fields)
    };
    let narrow = run(1);
    let wide = run(8);
    // The degree of parallelism changes which region wins the race, not
    // whether the target is reachable: both runs must cover the same steps
    // and converge on (at least) the clear majority of them.
    for (a, b) in narrow.fields.iter().zip(wide.fields.iter()) {
        assert_eq!(a.steps.len(), b.steps.len());
        assert!(
            a.convergence_rate() >= 0.5,
            "narrow: {}",
            a.convergence_rate()
        );
        assert!(
            b.convergence_rate() >= 0.5,
            "wide: {}",
            b.convergence_rate()
        );
        for (sa, sb) in a.steps.iter().zip(b.steps.iter()) {
            if sa.feasible && sb.feasible {
                assert!((sa.best.compression_ratio - 6.0).abs() <= 0.9 + 1e-9);
                assert!((sb.best.compression_ratio - 6.0).abs() <= 0.9 + 1e-9);
            }
        }
    }
}
