//! Workspace integration tests: the full FRaZ stack (synthetic data ->
//! pressio backends -> fixed-ratio search) behaves as the paper describes.

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;

fn quick(target: f64, tolerance: f64) -> SearchConfig {
    SearchConfig {
        regions: 4,
        max_iterations: 16,
        threads: 2,
        ..SearchConfig::new(target, tolerance)
    }
}

#[test]
fn feasible_targets_are_hit_on_every_application() {
    // One representative field per synthetic application, tuned with SZ to a
    // modest target that is feasible everywhere.
    let cases = [
        ("hurricane", "TCf"),
        ("cesm", "FLDSC"),
        ("nyx", "temperature"),
    ];
    for (app_name, field) in cases {
        let app = synthetic::by_name(app_name, 3).unwrap();
        let dataset = app.field(field, 0);
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick(8.0, 0.1));
        let outcome = search.run(&dataset);
        assert!(outcome.feasible, "{app_name}/{field} should reach 8:1");
        let ratio = outcome.best.compression_ratio;
        assert!(
            (ratio - 8.0).abs() <= 0.8 + 1e-9,
            "{app_name}/{field}: ratio {ratio}"
        );
    }
}

#[test]
fn recommended_bound_respects_the_error_constraint() {
    // Error-control-based fixed-ratio compression (paper Eq. 2): the result
    // must satisfy both the ratio window and the error ceiling U.
    let app = synthetic::hurricane(8, 24, 24, 1, 17);
    let dataset = app.field("Uf", 0);
    let ceiling = dataset.stats().value_range() * 0.05;
    let config = quick(12.0, 0.1).with_max_error(ceiling);
    let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
    let outcome = search.run(&dataset);
    assert!(outcome.error_bound <= ceiling * (1.0 + 1e-9));
    let quality = outcome.best.quality.expect("final quality measured");
    assert!(
        quality.max_abs_error <= ceiling * (1.0 + 1e-9),
        "max error {} exceeds ceiling {ceiling}",
        quality.max_abs_error
    );
    if outcome.feasible {
        assert!((outcome.best.compression_ratio - 12.0).abs() <= 1.2 + 1e-9);
    }
}

#[test]
fn all_error_bounded_backends_can_be_tuned_on_2d_data() {
    let app = synthetic::cesm(32, 64, 1, 23);
    let dataset = app.field("FLDSC", 0);
    for name in registry::error_bounded_names() {
        let backend = registry::build_default(&name).unwrap();
        if !backend.supports_dims(&dataset.dims) {
            continue;
        }
        let outcome = FixedRatioSearch::new(backend, quick(6.0, 0.15)).run(&dataset);
        assert!(
            outcome.best.compression_ratio > 1.0,
            "{name}: ratio {}",
            outcome.best.compression_ratio
        );
        // Whatever bound FRaZ recommends must actually reproduce the
        // reported ratio when re-applied.
        let backend = registry::build_default(&name).unwrap();
        let check = backend
            .evaluate(&dataset, outcome.error_bound, false)
            .unwrap();
        assert!(
            (check.compression_ratio - outcome.best.compression_ratio).abs() < 1e-9,
            "{name}: ratio not reproducible"
        );
    }
}

#[test]
fn mgard_is_skipped_for_1d_applications_like_the_paper() {
    // Fig 9 (d)/(e): MGARD is absent for HACC and EXAALT because it does not
    // support 1-D data; the abstraction layer reports that cleanly.
    let app = synthetic::hacc(4096, 1, 3);
    let dataset = app.field("x", 0);
    let backend = registry::build_default("mgard").unwrap();
    assert!(!backend.supports_dims(&dataset.dims));
    assert!(backend.compress(&dataset, 1e-3).is_err());
}

#[test]
fn fraz_beats_fixed_rate_mode_on_quality_at_equal_ratio() {
    // The headline comparison (Figs 1 and 10): at (approximately) the same
    // compression ratio, FRaZ-tuned ZFP accuracy mode has higher PSNR than
    // ZFP's built-in fixed-rate mode.  The paper runs this on Hurricane's
    // CLOUDf field, whose localized features are exactly what fixed-rate's
    // uniform per-block budget handles poorly; on smooth fields (e.g. NYX
    // temperature) the two modes are within noise of each other at the
    // ratios this codec reaches, so the comparison would be a coin flip.
    let app = synthetic::hurricane(8, 24, 24, 1, 31);
    let dataset = app.field("CLOUDf", 0);
    let target = 20.0;

    // ZFP's accuracy mode expresses relatively few distinct ratios (the
    // minexp flooring), so ask with a generous tolerance and compare at
    // whatever ratio FRaZ actually lands on — that is how the paper runs the
    // Fig. 10 comparison (it moved its own target from 100:1 to ~85:1 for
    // the same reason).
    let accuracy =
        FixedRatioSearch::new(registry::build_default("zfp").unwrap(), quick(target, 0.3))
            .run(&dataset);
    assert!(
        accuracy.best.compression_ratio > 5.0,
        "FRaZ should reach a substantial ratio, got {}",
        accuracy.best.compression_ratio
    );
    let accuracy_quality = accuracy.best.quality.clone().unwrap();

    let rate_backend = registry::build_default("zfp-rate").unwrap();
    let bits_per_value = 32.0 / accuracy.best.compression_ratio;
    let rate = rate_backend
        .evaluate(&dataset, bits_per_value, true)
        .unwrap();
    let rate_quality = rate.quality.unwrap();

    assert!(
        accuracy_quality.psnr > rate_quality.psnr,
        "FRaZ ZFP PSNR {:.2} should exceed fixed-rate PSNR {:.2}",
        accuracy_quality.psnr,
        rate_quality.psnr
    );
}

#[test]
fn infeasible_low_ratio_is_reported_infeasible() {
    // Ratios below the compressor's effective floor (paper Fig. 7 discussion)
    // must come back as infeasible rather than silently wrong.
    let app = synthetic::hurricane(6, 16, 16, 1, 41);
    let dataset = app.field("QCLOUDf.log10", 0);
    let config = SearchConfig {
        tolerance: 0.01,
        regions: 3,
        max_iterations: 10,
        threads: 2,
        ..SearchConfig::new(1.05, 0.01)
    };
    let outcome =
        FixedRatioSearch::new(registry::build_default("sz").unwrap(), config).run(&dataset);
    assert!(!outcome.feasible);
}
