//! Smoke test: `FixedRatioSearch` end-to-end on a tiny synthetic field for
//! each registered error-bounded compressor.
//!
//! This is the repo's canary — if any layer of the stack (data generation,
//! codec, pressio adapter, search) breaks, this fails in seconds.  Each
//! backend gets a target that is feasible for it on the probe field; ZFP's
//! accuracy mode needs a wider tolerance because its achievable ratios are
//! a step function of the bound (paper §VI-B3).

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;

#[test]
fn every_registered_compressor_hits_the_ratio_window() {
    // A small hurricane-like 3-D field: 3-D is supported by all three
    // codec families (MGARD rejects 1-D).
    let dataset = synthetic::hurricane(8, 16, 16, 1, 13).field("TCf", 0);

    // SZx's ratio curve is the coarsest: non-constant f32 blocks keep at
    // least 9 of 32 bits (≤3.6:1) and constant blocks jump to ~52:1 on this
    // field, so it gets a 2:1 target inside its smooth low-ratio regime.
    for (name, target, tolerance) in [
        ("sz", 8.0, 0.10),
        ("zfp", 8.0, 0.25),
        ("mgard", 8.0, 0.10),
        ("szx", 2.0, 0.10),
    ] {
        let compressor = registry::build_default(name)
            .unwrap_or_else(|e| panic!("registry must know {name}: {e}"));
        let config = SearchConfig::new(target, tolerance)
            .with_regions(4)
            .with_threads(2);
        let outcome = FixedRatioSearch::new(compressor, config).run(&dataset);

        assert!(
            outcome.feasible,
            "{name}: search should be feasible at {target}:1 ±{tolerance}"
        );
        assert!(outcome.evaluations >= 1, "{name}: no evaluations recorded");

        let ratio = outcome.best.compression_ratio;
        let (lo, hi) = (target * (1.0 - tolerance), target * (1.0 + tolerance));
        assert!(
            ratio >= lo - 1e-9 && ratio <= hi + 1e-9,
            "{name}: achieved ratio {ratio:.3} outside the tolerance band [{lo:.3}, {hi:.3}]"
        );

        // The recommended bound must reproduce the reported ratio exactly
        // (FRaZ's training-then-apply contract).
        let check = registry::build_default(name)
            .unwrap()
            .evaluate(&dataset, outcome.error_bound, false)
            .unwrap();
        assert!(
            (check.compression_ratio - ratio).abs() < 1e-9,
            "{name}: recommended bound does not reproduce the ratio"
        );
    }
}
