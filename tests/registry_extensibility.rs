//! The libpressio posture, proven: an out-of-tree codec — defined entirely
//! in this test, unknown to `fraz-pressio` — registers itself in the
//! process-wide registry and is driven through `FixedRatioSearch` to a
//! fixed-ratio result, exactly like the built-ins.
//!
//! Also covers the two registry-hardening satellites: the options
//! silent-ignore regression (unknown keys must error with a did-you-mean
//! suggestion) and concurrent register/build traffic on the global registry.

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::{Dataset, Dims};
use fraz::pressio::registry;
use fraz::{
    BoundKind, CodecDescriptor, Compressor, DimRange, OptionDescriptor, OptionKind, Options,
    PressioError, RegistryError,
};

/// A deliberately naive "codec" that keeps every k-th sample and
/// reconstructs by sample-and-hold.  The stride `k` is derived from the
/// scalar parameter as `k ≈ 1/bound`, so the achieved ratio grows smoothly
/// with the bound — a perfectly searchable black box, and obviously not a
/// member of `fraz-pressio`.
struct DecimateCodec {
    max_stride: usize,
}

const HEADER: usize = 16;

impl Compressor for DecimateCodec {
    fn name(&self) -> &str {
        "decimate"
    }
    fn bound_kind(&self) -> BoundKind {
        BoundKind::AbsoluteError
    }
    fn supports_dims(&self, dims: &Dims) -> bool {
        dims.ndims() == 1
    }
    fn bound_range(&self, _dataset: &Dataset) -> (f64, f64) {
        (1.0 / self.max_stride as f64, 1.0)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        if error_bound <= 0.0 || !error_bound.is_finite() {
            return Err(PressioError::InvalidBound(format!(
                "stride parameter must be positive, got {error_bound}"
            )));
        }
        if !self.supports_dims(&dataset.dims) {
            return Err(PressioError::Unsupported("decimate is 1-D only".into()));
        }
        let stride = (1.0 / error_bound)
            .round()
            .clamp(1.0, self.max_stride as f64) as usize;
        let values = dataset.values_f64();
        let mut out = Vec::with_capacity(HEADER + values.len() / stride * 4 + 4);
        out.extend((values.len() as u64).to_le_bytes());
        out.extend((stride as u64).to_le_bytes());
        for v in values.iter().step_by(stride) {
            out.extend((*v as f32).to_le_bytes());
        }
        Ok(out)
    }
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
        if data.len() < HEADER {
            return Err(PressioError::Codec("truncated decimate stream".into()));
        }
        let n = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
        let stride = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
        let kept: Vec<f32> = data[HEADER..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            values.push(*kept.get(i / stride).ok_or_else(|| {
                PressioError::Codec("decimate stream shorter than its header claims".into())
            })?);
        }
        Ok(Dataset::from_f32("ext", "field", 0, Dims::d1(n), values))
    }
}

fn decimate_descriptor(name: &str) -> CodecDescriptor {
    CodecDescriptor::new(name, BoundKind::AbsoluteError)
        .with_dims(DimRange::new(1, 1))
        .with_summary("out-of-tree sample-and-hold decimator (integration test)")
        .with_option(
            OptionDescriptor::new("decimate:max_stride", OptionKind::U64)
                .with_default(64u64)
                .with_range(1.0, 1024.0)
                .with_doc("largest decimation stride the bound may select"),
        )
}

fn register_decimate(name: &'static str) {
    registry::register(decimate_descriptor(name), |options| {
        Ok(Box::new(DecimateCodec {
            max_stride: options.get_u64("decimate:max_stride").unwrap_or(64) as usize,
        }))
    })
    .expect("first registration of this name");
}

fn smooth_1d(n: usize) -> Dataset {
    let values: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin() * 5.0).collect();
    Dataset::from_f32("ext", "field", 0, Dims::d1(n), values)
}

#[test]
fn out_of_tree_codec_runs_through_fixed_ratio_search() {
    register_decimate("decimate");

    // The registry now treats it exactly like a built-in.
    assert!(registry::contains("decimate"));
    assert!(registry::names().contains(&"decimate".to_string()));
    assert!(registry::error_bounded_names().contains(&"decimate".to_string()));
    let descriptor = registry::describe("decimate").unwrap();
    assert_eq!(descriptor.bound_kind, BoundKind::AbsoluteError);
    assert!(!descriptor.dims.supports(&Dims::d2(4, 4)));

    // Options are validated against the descriptor we registered.
    let err = registry::build(
        "decimate",
        &Options::new().with("decimate:max_strude", 32u64),
    )
    .err()
    .unwrap();
    match err {
        RegistryError::UnknownOption { suggestion, .. } => {
            assert_eq!(suggestion.as_deref(), Some("decimate:max_stride"));
        }
        other => panic!("wrong error: {other}"),
    }

    // And FRaZ tunes it to a fixed ratio, end to end.
    let dataset = smooth_1d(4096);
    let codec = registry::build(
        "decimate",
        &Options::new().with("decimate:max_stride", 64u64),
    )
    .unwrap();
    let config = SearchConfig::new(8.0, 0.1).with_regions(4).with_threads(2);
    let outcome = FixedRatioSearch::new(codec, config).run(&dataset);
    assert!(
        outcome.feasible,
        "8:1 is feasible for a 64x decimator, got ratio {}",
        outcome.best.compression_ratio
    );
    assert!((outcome.best.compression_ratio - 8.0).abs() <= 0.8 + 1e-9);
    assert_eq!(outcome.best.compressor, "decimate");
    // The final quality measurement exercised the codec's decompress path.
    let quality = outcome.best.quality.expect("final quality measured");
    assert!(quality.max_abs_error.is_finite());
}

#[test]
fn unknown_options_on_builtins_are_errors_not_silence() {
    // Regression for the pre-registry footgun: `compressor_with_options`
    // used to drop unknown keys without a word.
    let err = registry::build("sz", &Options::new().with("sz:blok_size", 8u64))
        .err()
        .unwrap();
    match &err {
        RegistryError::UnknownOption {
            codec,
            key,
            suggestion,
        } => {
            assert_eq!(codec, "sz");
            assert_eq!(key, "sz:blok_size");
            assert_eq!(suggestion.as_deref(), Some("sz:block_size"));
        }
        other => panic!("expected UnknownOption, got {other}"),
    }
    let message = err.to_string();
    assert!(
        message.contains("sz:block_size"),
        "the error must name the nearest valid key: {message}"
    );

    // The deprecated shim can no longer construct from a bad bag either.
    #[allow(deprecated)]
    let shimmed =
        registry::compressor_with_options("sz", &Options::new().with("sz:blok_size", 8u64));
    assert!(shimmed.is_none());
}

#[test]
fn concurrent_registration_and_builds_are_safe() {
    // The global registry is shared mutable state behind a parking_lot
    // RwLock; hammer it from many threads at once.  Each thread registers
    // its own codec name while everyone concurrently builds built-ins and
    // whatever stress codecs already appeared.
    const THREADS: usize = 8;
    const ROUNDS: usize = 25;
    let stress_names: Vec<String> = (0..THREADS).map(|i| format!("stress-{i}")).collect();

    std::thread::scope(|scope| {
        for (i, name) in stress_names.iter().enumerate() {
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    if round == i % ROUNDS {
                        registry::register(decimate_descriptor(name), |options| {
                            Ok(Box::new(DecimateCodec {
                                max_stride: options.get_u64("decimate:max_stride").unwrap_or(64)
                                    as usize,
                            }))
                        })
                        .expect("each stress name registers exactly once");
                    }
                    // Builds (read lock) interleave with registrations
                    // (write lock) from the sibling threads.
                    let codec = registry::build_default("sz").unwrap();
                    assert_eq!(codec.name(), "sz");
                    assert!(registry::describe("zfp").is_some());
                    if registry::contains(name) {
                        assert!(registry::build_default(name).is_ok());
                    }
                    // Duplicate registration must fail cleanly, never corrupt.
                    if registry::contains(name) {
                        let dup = registry::register(decimate_descriptor(name), |_| {
                            Ok(Box::new(DecimateCodec { max_stride: 2 }))
                        });
                        assert!(matches!(dup, Err(RegistryError::DuplicateName { .. })));
                    }
                }
            });
        }
    });

    // Every thread's codec survived and is buildable.
    for name in &stress_names {
        assert!(registry::contains(name), "{name} lost in the stampede");
        assert!(registry::build_default(name).is_ok());
    }
    // The built-ins were never displaced.
    for name in ["sz", "zfp", "zfp-rate", "mgard", "mgard-l2"] {
        assert!(registry::contains(name));
    }
}
