//! Cross-codec error-bound conformance: the contract every FRaZ search
//! target must honour is `max_i |x_i − x̂_i| ≤ e` for the requested bound
//! `e` — a fast-but-wrong codec would silently corrupt every search result.
//!
//! The suite loops over **every** error-bounded codec in the default
//! registry, so a future backend is covered the moment it registers; it
//! never hard-codes codec names.  Fields are proptest-generated in 1-D, 2-D
//! and 3-D at several amplitudes, in both f32 and f64, and each codec is
//! exercised across a log-spaced grid of absolute bounds down to 1e-12.
//!
//! The assertion is keyed on the codec's [`BoundKind`]: max-error kinds
//! (absolute error, accuracy tolerance, ∞-norm) must bound the element-wise
//! worst case; the L2-norm kind bounds the RMS error instead (it makes no
//! pointwise promise).

use proptest::prelude::*;

use fraz::data::{DType, Dataset, Dims};
use fraz::pressio::{registry, BoundKind};
use fraz::scenarios::{by_name, Regime, ScenarioConfig, REGIMES};

/// Log-spaced absolute bounds; the tightest settings force the codecs into
/// their exact/lossless fallback paths, which must *still* conform.
const BOUNDS: [f64; 6] = [1e-1, 1e-3, 1e-5, 1e-7, 1e-9, 1e-12];

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// A synthetic field mixing smooth waves, low-amplitude noise, and flat
/// plateaus, so blockwise codecs see constant, predictable and
/// unpredictable regions in one dataset.
fn synth(n: usize, mut seed: u64, amplitude: f64) -> Vec<f64> {
    seed |= 1;
    (0..n)
        .map(|i| {
            let noise = (lcg(&mut seed) >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            if (i / 97) % 5 == 0 {
                amplitude * 0.25
            } else {
                let x = i as f64;
                ((x * 0.021).sin() + 0.5 * (x * 0.0013).cos() + 0.01 * noise) * amplitude
            }
        })
        .collect()
}

/// Dims with ~`n` points at the requested dimensionality.
fn dims_for(ndims: usize, size_seed: u64) -> Dims {
    let w = 12 + (size_seed % 9) as usize; // 12..=20
    match ndims {
        1 => Dims::d1(w * w * w),
        2 => Dims::d2(w * w / 2, 2 * w),
        _ => Dims::d3(w, w, w),
    }
}

/// Compress + decompress `dataset` with every error-bounded registry codec
/// at every grid bound, asserting the codec's conformance contract
/// element-wise on the round-tripped values.
fn assert_all_codecs_conform(dataset: &Dataset) {
    let names = registry::error_bounded_names();
    assert!(
        names.len() >= 4,
        "expected at least sz/zfp/mgard/szx to be registered, got {names:?}"
    );
    for name in names {
        let codec = registry::build_default(&name)
            .unwrap_or_else(|e| panic!("building {name} failed: {e}"));
        if !codec.supports_dims(&dataset.dims) {
            continue;
        }
        for bound in BOUNDS {
            let compressed = codec
                .compress(dataset, bound)
                .unwrap_or_else(|e| panic!("{name} at bound {bound:e}: compress failed: {e}"));
            let restored = codec
                .decompress(&compressed)
                .unwrap_or_else(|e| panic!("{name} at bound {bound:e}: decompress failed: {e}"));
            assert_eq!(restored.dims, dataset.dims, "{name} at bound {bound:e}");
            assert_eq!(
                restored.dtype(),
                dataset.dtype(),
                "{name} at bound {bound:e}"
            );

            let original = dataset.values_f64();
            let recovered = restored.values_f64();
            assert_eq!(recovered.len(), original.len(), "{name} at bound {bound:e}");
            match codec.bound_kind() {
                BoundKind::AbsoluteError
                | BoundKind::AccuracyTolerance
                | BoundKind::InfinityNorm => {
                    for (i, (x, y)) in original.iter().zip(recovered.iter()).enumerate() {
                        let err = (x - y).abs();
                        assert!(
                            err <= bound,
                            "{name} at bound {bound:e}: |x[{i}] - x̂[{i}]| = {err:e} \
                             (x = {x}, x̂ = {y})"
                        );
                    }
                }
                BoundKind::L2Norm => {
                    let mse = original
                        .iter()
                        .zip(recovered.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        / original.len() as f64;
                    let rmse = mse.sqrt();
                    // The RMS is an n-term floating-point aggregate, so the
                    // comparison tolerates summation-order roundoff (relative
                    // 1e-9); the pointwise kinds above stay exact.
                    assert!(
                        rmse <= bound * (1.0 + 1e-9),
                        "{name} at bound {bound:e}: rmse = {rmse:e}"
                    );
                }
                other => panic!("{name}: unexpected bound kind {other:?} in error-bounded set"),
            }
        }
    }
}

proptest! {
    // Each case sweeps every codec × every bound, so a handful of cases
    // already covers hundreds of (codec, field, bound) combinations.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn f32_fields_conform(
        ndims in 1usize..=3,
        size_seed in 0u64..1000,
        amp_exp in -2i32..4,
        seed in 0u64..1_000_000,
    ) {
        let dims = dims_for(ndims, size_seed);
        let amplitude = 10f64.powi(amp_exp);
        let values: Vec<f32> = synth(dims.len(), seed, amplitude)
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let dataset = Dataset::from_f32("conformance", "f32", 0, dims, values);
        assert_all_codecs_conform(&dataset);
    }

    /// The named scenario regimes are the workloads the oracle matrix and
    /// the CLI's zero-file manifests run on; sample them across seeds and
    /// dimensionalities so codec conformance is pinned on exactly the data
    /// shapes the rest of the suite trusts.
    #[test]
    fn scenario_fields_conform(
        regime_idx in 0usize..REGIMES.len(),
        ndims in 1usize..=3,
        size_seed in 0u64..1000,
        seed in 0u64..1_000_000,
        wide in 0u8..2,
    ) {
        let dims = dims_for(ndims, size_seed);
        let dtype = if wide == 1 { DType::F64 } else { DType::F32 };
        let config = by_name(REGIMES[regime_idx].name()).unwrap().with_seed(seed);
        let field = config.generate(&dims, dtype, 0);
        prop_assert!(
            field.dataset.values_f64().iter().all(|v| v.is_finite()),
            "scenario generators must never emit NaN/inf"
        );
        assert_all_codecs_conform(&field.dataset);
    }

    #[test]
    fn f64_fields_conform(
        ndims in 1usize..=3,
        size_seed in 0u64..1000,
        amp_exp in -2i32..4,
        seed in 0u64..1_000_000,
    ) {
        let dims = dims_for(ndims, size_seed);
        let amplitude = 10f64.powi(amp_exp);
        let values = synth(dims.len(), seed, amplitude);
        let dataset = Dataset::from_f64("conformance", "f64", 0, dims, values);
        assert_all_codecs_conform(&dataset);
    }
}

/// Constant and degenerate fields are the classic codec edge cases; pin
/// them deterministically on top of the property sweep.
#[test]
fn degenerate_fields_conform() {
    for values in [vec![0.0f64; 4096], vec![-7.25; 4096], {
        let mut v = vec![1.0; 4096];
        v[0] = -1.0; // one outlier in a constant sea
        v
    }] {
        let dataset = Dataset::from_f64("conformance", "degenerate", 0, Dims::d2(64, 64), values);
        assert_all_codecs_conform(&dataset);
    }
}

/// Scenario-specific edge cases, pinned deterministically: a sparse field
/// with zero blobs degenerates to an all-constant plane (the descriptor
/// must agree), and a non-zero background shifts every plateau off zero —
/// both classic traps for blockwise constant detection.
#[test]
fn sparse_scenario_edge_cases_conform() {
    let dims = Dims::d2(64, 64);
    for (blob_count, background) in [(0, 0.0), (0, 2.5), (5, -1.75)] {
        let mut config = ScenarioConfig::new(Regime::Sparse);
        config.blob_count = blob_count;
        config.background = background;
        for dtype in [DType::F32, DType::F64] {
            let field = config.generate(&dims, dtype, 0);
            let d = &field.descriptor;
            assert!(field.dataset.values_f64().iter().all(|v| v.is_finite()));
            if blob_count == 0 {
                assert_eq!(d.constant_fraction, Some(1.0), "all-constant expected");
                assert_eq!(d.min, d.max);
                assert_eq!(d.min, background);
            } else {
                assert!(d.constant_fraction.unwrap() > 0.0, "plateaus expected");
            }
            assert_all_codecs_conform(&field.dataset);
        }
    }
}
