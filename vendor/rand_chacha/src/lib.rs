//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator (RFC 8439 block function, 8 rounds) implementing the vendored
//! [`rand`] shim's traits.
//!
//! Like the `rand` shim, this promises determinism for a fixed seed — the
//! property the synthetic dataset generators rely on — but not stream
//! bit-compatibility with the upstream crate.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed from a 64-bit seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce, as the 16-word ChaCha state.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = working;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with splitmix64, the
        // same construction rand's seed_from_u64 uses.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // counter = 0, nonce = 0.
        Self {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits total; a fair stream is near 32,000.
        assert!((30_000..34_000).contains(&ones), "ones {ones}");
    }
}
