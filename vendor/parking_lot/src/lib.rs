//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the FRaZ search/orchestrator code uses is provided:
//! [`Mutex`] and [`RwLock`] with parking_lot's poison-free `lock()` /
//! `read()` / `write()` signatures. A poisoned std lock (a panic while
//! held) is recovered rather than propagated, matching parking_lot's
//! semantics of not tracking poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_recovers_after_a_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }
}
