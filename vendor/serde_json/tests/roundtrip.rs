//! Round-trip property tests for the JSON shim: whatever [`serde::Serialize`]
//! emits, [`serde_json::from_str`] must read back identically — for raw
//! [`Value`] trees and for derived structs/enums like the CLI's dataset
//! manifests.  Plus regression cases for the readable error messages the
//! manifest loader relies on.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Strategies: arbitrary JSON value trees of bounded depth.

fn string_strategy() -> impl Strategy<Value = String> {
    // Alphabet deliberately stresses the escaper: quotes, backslashes,
    // control characters, multi-byte UTF-8 (é, 😀).
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '"', '\\', '\n', '\t', 'é', '😀', ' ', '/', '{',
    ];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..12)
        .prop_map(|ixs| ixs.into_iter().map(|i| ALPHABET[i]).collect())
}

fn number_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<u64>().prop_map(|v| Value::Number(Number::from_u64(v))),
        any::<i64>().prop_map(|v| Value::Number(Number::from_i64(v))),
        // Finite floats only: NaN/Infinity serialize as null by design.
        (-1e15f64..1e15).prop_map(|v| Value::Number(Number::from_f64(v))),
        (-1.0f64..1.0).prop_map(|v| Value::Number(Number::from_f64(v * 1e-9))),
    ]
    .boxed()
}

fn leaf_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        number_strategy(),
        string_strategy().prop_map(Value::String),
    ]
    .boxed()
}

fn value_strategy(depth: usize) -> BoxedStrategy<Value> {
    if depth == 0 {
        return leaf_strategy();
    }
    let inner = value_strategy(depth - 1);
    let arrays = proptest::collection::vec(value_strategy(depth - 1), 0..4).prop_map(Value::Array);
    let objects = proptest::collection::vec((string_strategy(), value_strategy(depth - 1)), 0..4)
        .prop_map(|entries| {
            let mut map = Map::new();
            for (k, v) in entries {
                map.insert(k, v);
            }
            Value::Object(map)
        });
    prop_oneof![3 => leaf_strategy(), 1 => inner, 1 => arrays.boxed(), 1 => objects.boxed()].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_trees_roundtrip_through_text(value in value_strategy(3)) {
        let text = value.to_string();
        let back: Value = serde_json::from_str(&text).expect(&text);
        prop_assert_eq!(back, value);
    }

    #[test]
    fn strings_roundtrip_exactly(s in string_strategy()) {
        let text = serde_json::to_string(&s).unwrap();
        let back: String = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back, s);
    }
}

// ---------------------------------------------------------------------------
// Derived round trips: a miniature of the CLI's manifest types.

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Target {
    Default,
    Ratio(f64),
    Window { low: f64, high: f64 },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Entry {
    name: String,
    dims: Vec<usize>,
    target: Option<Target>,
    enabled: bool,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Config {
    application: String,
    entries: Vec<Entry>,
    notes: BTreeMap<String, String>,
}

fn entry_strategy() -> impl Strategy<Value = Entry> {
    (
        string_strategy(),
        proptest::collection::vec(1usize..1000, 1..4),
        prop_oneof![
            Just(None),
            Just(Some(Target::Default)),
            (0.5f64..100.0).prop_map(|r| Some(Target::Ratio(r))),
            (0.5f64..10.0).prop_map(|low| Some(Target::Window {
                low,
                high: low * 2.0
            })),
        ],
        any::<bool>(),
    )
        .prop_map(|(name, dims, target, enabled)| Entry {
            name,
            dims,
            target,
            enabled,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn derived_structs_roundtrip(
        application in string_strategy(),
        entries in proptest::collection::vec(entry_strategy(), 0..5),
        notes in proptest::collection::vec((string_strategy(), string_strategy()), 0..4),
    ) {
        let config = Config {
            application,
            entries,
            notes: notes.into_iter().collect(),
        };
        let text = serde_json::to_string(&config).unwrap();
        let back: Config = serde_json::from_str(&text).expect(&text);
        prop_assert_eq!(back, config);
    }
}

// ---------------------------------------------------------------------------
// Error-message regressions: the readable failures manifests depend on.

#[test]
fn unknown_field_is_named_with_expected_set() {
    let err = serde_json::from_str::<Entry>(
        r#"{"name": "x", "dims": [1], "enabled": true, "dimms": [2]}"#,
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("unknown field `dimms` in Entry"), "{err}");
    assert!(err.contains("`dims`"), "{err}");
}

#[test]
fn missing_field_is_named() {
    let err = serde_json::from_str::<Entry>(r#"{"name": "x", "enabled": true}"#)
        .unwrap_err()
        .to_string();
    assert!(err.contains("missing field `dims` in Entry"), "{err}");
}

#[test]
fn optional_fields_may_be_absent() {
    let entry: Entry =
        serde_json::from_str(r#"{"name": "x", "dims": [4, 5], "enabled": false}"#).unwrap();
    assert_eq!(entry.target, None);
    assert_eq!(entry.dims, vec![4, 5]);
}

#[test]
fn type_mismatch_paths_point_at_the_entry() {
    let err = serde_json::from_str::<Config>(
        r#"{"application": "a", "notes": {},
            "entries": [{"name": "x", "dims": [1, "two"], "enabled": true}]}"#,
    )
    .unwrap_err()
    .to_string();
    assert!(err.contains("entries[0].dims[1]"), "{err}");
    assert!(err.contains("expected an unsigned integer"), "{err}");
}

#[test]
fn enum_variants_roundtrip_and_reject_unknowns() {
    let t: Target = serde_json::from_str("\"Default\"").unwrap();
    assert_eq!(t, Target::Default);
    let t: Target = serde_json::from_str(r#"{"Ratio": 8.5}"#).unwrap();
    assert_eq!(t, Target::Ratio(8.5));
    let t: Target = serde_json::from_str(r#"{"Window": {"low": 1.0, "high": 2.0}}"#).unwrap();
    assert_eq!(
        t,
        Target::Window {
            low: 1.0,
            high: 2.0
        }
    );

    let err = serde_json::from_str::<Target>("\"Ration\"")
        .unwrap_err()
        .to_string();
    assert!(err.contains("unknown variant `Ration` of Target"), "{err}");
    assert!(err.contains("`Ratio`"), "{err}");
}

#[test]
fn syntax_errors_name_the_location() {
    let err = serde_json::from_str::<Value>("{\n  \"a\": [1, 2,\n}")
        .unwrap_err()
        .to_string();
    assert!(err.contains("line 3"), "{err}");
}

#[test]
fn from_value_matches_from_str() {
    let entry = Entry {
        name: "CLOUDf".into(),
        dims: vec![100, 500, 500],
        target: Some(Target::Ratio(10.0)),
        enabled: true,
    };
    let value = serde_json::to_value(&entry).unwrap();
    let back: Entry = serde_json::from_value(value).unwrap();
    assert_eq!(back, entry);
}
