//! A recursive-descent JSON text parser producing the shared [`Value`]
//! model.
//!
//! Implements the full JSON grammar (RFC 8259): all escape sequences
//! including `\uXXXX` surrogate pairs, nested arrays/objects, and the three
//! number shapes of [`Number`] (unsigned, signed, float — integers
//! round-trip without a float detour, exactly as the serializer emits
//! them).  Errors carry the 1-based line and column of the offending byte,
//! so a syntax error in a hand-written config names its location.

use serde::value::{Map, Number, Value};

/// A syntax error at a position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column (in bytes) of the error.
    pub column: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting before parsing fails (matches real
/// serde_json's default recursion limit: the parser is recursive, so
/// unbounded nesting would overflow the stack instead of erroring).
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (one value plus optional whitespace).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting (arrays + objects).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        let (mut line, mut column) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected `{}`{}",
                b as char,
                match self.peek() {
                    Some(found) => format!(", found `{}`", found as char),
                    None => ", found end of input".to_string(),
                }
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(self.error(format!("expected a JSON value, found `{}`", other as char)))
            }
            None => Err(self.error("expected a JSON value, found end of input")),
        }
    }

    /// Enter one level of container nesting, or fail at the limit.
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!(
                "recursion limit exceeded ({MAX_DEPTH} nested containers)"
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uXXXX` with a low surrogate.
                            let c = if (0xD800..=0xDBFF).contains(&cp) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.error("invalid surrogate pair"))?
                                } else {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                            } else if (0xDC00..=0xDFFF).contains(&cp) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        Some(other) => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                        None => return Err(self.error("unterminated escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid; find the char at this byte offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape; advances past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.error("invalid unicode escape"))?;
        let cp =
            u32::from_str_radix(s, 16).map_err(|_| self.error("invalid unicode escape digits"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digits in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        let number = if is_float {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|e| self.error(format!("invalid number: {e}")))?,
            )
        } else if let Some(digits) = text.strip_prefix('-') {
            match digits.parse::<u64>() {
                // Negative integers that fit i64 keep the integer shape;
                // anything wider falls back to a float, like serde_json's
                // arbitrary-precision-off behaviour.
                Ok(v) if v <= i64::MAX as u64 + 1 => {
                    Number::from_i64((v as i128 as i64).wrapping_neg())
                }
                _ => Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|e| self.error(format!("invalid number: {e}")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::from_u64(v),
                Err(_) => Number::from_f64(
                    text.parse::<f64>()
                        .map_err(|e| self.error(format!("invalid number: {e}")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_shapes() {
        let v = parse(
            r#"{"s": "a\n\"b\u00e9", "n": -3, "f": 2.5e2, "b": true, "x": null,
                "arr": [1, [2], {"k": 3}], "o": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\n\"b\u{e9}"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(-3.0));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(250.0));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn integers_keep_integer_shape() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Number(Number::PosInt(u64::MAX))
        );
        assert_eq!(
            parse("-9223372036854775808").unwrap(),
            Value::Number(Number::NegInt(i64::MIN))
        );
        assert_eq!(parse("0").unwrap(), Value::Number(Number::PosInt(0)));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".to_string())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = parse("{\"a\": 1,\n  \"b\": }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Within the limit: fine.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
        // Far past it: a readable error, not a stack overflow.
        let nested = "[".repeat(100_000);
        let err = parse(&nested).unwrap_err();
        assert!(err.message.contains("recursion limit"), "{err}");
        let objects = "{\"k\":".repeat(100_000);
        let err = parse(&objects).unwrap_err();
        assert!(err.message.contains("recursion limit"), "{err}");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "nul",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "{\"a\" 1}",
            "[1] extra",
            "{'a': 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
