//! Offline stand-in for `serde_json`, over the vendored `serde` shim.
//!
//! Provides exactly what the workspace calls: [`Value`], [`to_value`] /
//! [`to_string`] on the way out, [`from_str`] / [`from_value`] on the way
//! in (a full JSON text parser lives in [`parse`]), and the [`json!`]
//! literal macro (a tt-muncher in the same style as the real crate's).
//! Output is compact single-line JSON, suitable for the `.jsonl`
//! experiment records; input is any RFC 8259 document, suitable for the
//! CLI's dataset manifests.

pub mod parse;

pub use serde::value::{Map, Number, Value};

use std::fmt;

/// Serialization or deserialization error.
///
/// The shim's [`serde::Serialize`] is infallible, so serialization never
/// produces this; deserialization errors wrap either a syntax error from
/// the [`parse`] module (with line/column) or a pathed [`serde::de::Error`]
/// (e.g. `fields[2].dims: invalid type: …`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<parse::ParseError> for Error {
    fn from(e: parse::ParseError) -> Self {
        Error(e.to_string())
    }
}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Convert any [`serde::Serialize`] value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Render any [`serde::Serialize`] value as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Parse JSON text into any [`serde::Deserialize`] type.
///
/// ```
/// let values: Vec<u32> = serde_json::from_str("[1, 2, 3]").unwrap();
/// assert_eq!(values, vec![1, 2, 3]);
/// let v: serde_json::Value = serde_json::from_str(r#"{"ratio": 10.0}"#).unwrap();
/// assert_eq!(v.get("ratio").and_then(|r| r.as_f64()), Some(10.0));
/// ```
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse::parse(input)?;
    Ok(T::from_json_value(&value)?)
}

/// Reconstruct any [`serde::Deserialize`] type from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_json_value(&value)?)
}

/// Build a [`Value`] from a JSON literal.
///
/// Supports the same surface as the real macro for the shapes used in this
/// workspace: `null`, booleans, numbers, strings, arrays, objects with
/// string-literal keys, and arbitrary `Serialize` expressions in value
/// position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        let mut array: Vec<$crate::Value> = Vec::new();
        $crate::json_internal_array!(array; $($tt)*);
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        let mut object = $crate::Map::new();
        $crate::json_internal_object!(object () ($($tt)*));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap_or($crate::Value::Null)
    };
}

/// Array-element muncher for [`json!`] — not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    ($array:ident;) => {};
    ($array:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $array.push($crate::json!([ $($inner)* ]));
        $crate::json_internal_array!($array; $($($rest)*)?);
    };
    ($array:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $array.push($crate::json!({ $($inner)* }));
        $crate::json_internal_array!($array; $($($rest)*)?);
    };
    ($array:ident; null $(, $($rest:tt)*)?) => {
        $array.push($crate::Value::Null);
        $crate::json_internal_array!($array; $($($rest)*)?);
    };
    ($array:ident; $value:expr $(, $($rest:tt)*)?) => {
        $array.push($crate::json!($value));
        $crate::json_internal_array!($array; $($($rest)*)?);
    };
}

/// Object-entry muncher for [`json!`] — not public API.
///
/// State: `(accumulated key tokens) (remaining tokens)`. Key tokens are
/// munched one tt at a time until a top-level `:` is found, then the value
/// is dispatched on its leading token.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    ($object:ident () ()) => {};
    ($object:ident ($($key:tt)+) (: [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $object.insert($($key)+, $crate::json!([ $($inner)* ]));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $object.insert($($key)+, $crate::json!({ $($inner)* }));
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $object.insert($($key)+, $crate::Value::Null);
        $crate::json_internal_object!($object () ($($($rest)*)?));
    };
    ($object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.insert($($key)+, $crate::json!($value));
        $crate::json_internal_object!($object () ($($rest)*));
    };
    ($object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.insert($($key)+, $crate::json!($value));
    };
    ($object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal_object!($object ($($key)* $tt) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_and_nesting() {
        let v = json!({
            "name": "fraz",
            "ratio": 10.0,
            "iters": 3,
            "ok": true,
            "missing": null,
            "arr": [1, 2.5, "x", null, [3]],
            "nested": {"a": 1},
        });
        assert_eq!(
            v.to_string(),
            r#"{"name":"fraz","ratio":10.0,"iters":3,"ok":true,"missing":null,"arr":[1,2.5,"x",null,[3]],"nested":{"a":1}}"#
        );
    }

    #[test]
    fn expressions_in_value_position() {
        let n = 4usize;
        let label = String::from("run");
        let v = json!({"n": n, "n2": n * 2, "label": label});
        assert_eq!(v.to_string(), r#"{"n":4,"n2":8,"label":"run"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn string_escaping() {
        let v = json!({"s": "a\"b\\c\nd"});
        assert_eq!(v.to_string(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
    }
}
