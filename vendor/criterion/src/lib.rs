//! Offline stand-in for `criterion`.
//!
//! A small wall-clock harness exposing the API surface the FRaZ benches
//! use: `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! No statistics beyond mean-of-samples, no HTML reports, no warm-up
//! model — each benchmark runs `sample_size` timed samples after one
//! untimed call and prints mean time (and derived throughput) per sample.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Re-export module mirroring `criterion::measurement` imports if needed.
pub mod measurement {}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to touch caches/allocations.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so results include throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.iterations == 0 {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = bencher.total.as_secs_f64() / bencher.iterations as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!(" ({:.1} MiB/s)", bytes as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!(" ({:.0} elem/s)", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter{} [{} samples]",
            self.name,
            id.id,
            mean * 1e3,
            rate,
            bencher.iterations,
        );
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name_owned = name.to_string();
        self.benchmark_group(name_owned).bench_function(name, f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
