//! Offline stand-in for `criterion`.
//!
//! A small wall-clock harness exposing the API surface the FRaZ benches
//! use: `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! No statistics beyond mean-of-samples, no HTML reports, no warm-up
//! model — each benchmark runs `sample_size` timed samples after one
//! untimed call and prints mean time (and derived throughput) per sample.
//!
//! One extension over upstream: when `FRAZ_BENCH_RECORD_DIR` is set, every
//! reported benchmark also appends one JSON object to
//! `$FRAZ_BENCH_RECORD_DIR/<bench-binary>.jsonl`, so baseline numbers can
//! be committed (see `baselines/`) and later perf PRs can diff against
//! them.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Re-export module mirroring `criterion::measurement` imports if needed.
pub mod measurement {}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Run `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to touch caches/allocations.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so results include throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    fn report(&mut self, id: &BenchmarkId, bencher: &Bencher) {
        if bencher.iterations == 0 {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = bencher.total.as_secs_f64() / bencher.iterations as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!(" ({:.1} MiB/s)", bytes as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!(" ({:.0} elem/s)", n as f64 / mean)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter{} [{} samples]",
            self.name,
            id.id,
            mean * 1e3,
            rate,
            bencher.iterations,
        );
        record_jsonl(
            &self.name,
            &id.id,
            mean,
            bencher.iterations,
            self.throughput,
        );
        self.criterion.benchmarks_run += 1;
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The name of the running bench binary: `argv[0]`'s file stem with the
/// cargo-appended `-<metadata hash>` suffix stripped.
fn bench_binary_name() -> String {
    let argv0 = std::env::args().next().unwrap_or_else(|| "bench".into());
    let stem = std::path::Path::new(&argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Append one benchmark result to `$FRAZ_BENCH_RECORD_DIR/<bench>.jsonl`.
/// A no-op without the env var; I/O problems are reported, never fatal.
fn record_jsonl(
    group: &str,
    id: &str,
    mean_secs: f64,
    samples: u64,
    throughput: Option<Throughput>,
) {
    let Ok(dir) = std::env::var("FRAZ_BENCH_RECORD_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let extra = match throughput {
        Some(Throughput::Bytes(bytes)) => format!(
            ",\"bytes_per_iter\":{bytes},\"mib_per_s\":{:.3}",
            bytes as f64 / mean_secs / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => format!(
            ",\"elems_per_iter\":{n},\"elems_per_s\":{:.1}",
            n as f64 / mean_secs
        ),
        None => String::new(),
    };
    // Keys are simple identifiers; only group/id need escaping, and the
    // bench code only uses quotes-free names, so escape conservatively.
    let line = format!(
        "{{\"group\":{:?},\"id\":{:?},\"mean_ns\":{:.0},\"samples\":{samples}{extra}}}",
        group,
        id,
        mean_secs * 1e9,
    );
    let path = dir.join(format!("{}.jsonl", bench_binary_name()));
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("warning: cannot write to {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot open {}: {e}", path.display()),
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name_owned = name.to_string();
        self.benchmark_group(name_owned).bench_function(name, f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
