//! Offline stand-in for the `serde` facade crate.
//!
//! The FRaZ workspace is built in environments without access to crates.io,
//! so this vendored shim provides the small serde surface the workspace
//! actually uses:
//!
//! * [`Serialize`] — converts a value into the JSON [`value::Value`] model
//!   (the only serialization format the workspace emits),
//! * [`Deserialize`] — the mirror image: reconstructs a value from the same
//!   [`value::Value`] model, with pathed, readable errors ([`de`]),
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the local
//!   `serde_derive` proc-macro shim, which generates real impls of both
//!   traits for structs, tuple structs and externally-tagged enums.
//!
//! The trait shape is intentionally simpler than real serde (no generic
//! `Serializer`/`Deserializer` visitors; everything routes through the JSON
//! value model); swapping the real crates back in only requires restoring
//! the registry dependencies, since all workspace code sticks to the derive
//! + `serde_json::{json!, to_value, to_string, from_str, from_value}`
//! surface.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{Map, Number, Value};

/// Types that can be converted into the JSON [`Value`] model.
pub trait Serialize {
    /// Convert `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Types that can be reconstructed from the JSON [`Value`] model.
///
/// The inverse of [`Serialize`]: `T::from_json_value(&t.to_json_value())`
/// round-trips for every derived type.  Errors carry the path to the
/// offending entry (see [`de::Error`]), which is what makes malformed
/// config files debuggable.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON value tree.
    fn from_json_value(value: &Value) -> Result<Self, de::Error>;

    /// The value to use when a struct field is *absent* from its object.
    ///
    /// `None` (the default) makes absence an error ("missing field");
    /// `Option<T>` overrides this to `Some(None)` so optional fields can
    /// simply be omitted.
    fn absent() -> Option<Self> {
        None
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, de::Error> {
                let expected = concat!("an unsigned integer (", stringify!($t), ")");
                let wide = de::as_u64(value, expected)?;
                <$t>::try_from(wide).map_err(|_| {
                    de::Error::new(format!("number {wide} overflows {expected}"))
                })
            }
        }
    )*};
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json_value(value: &Value) -> Result<Self, de::Error> {
                let expected = concat!("an integer (", stringify!($t), ")");
                let wide = de::as_i64(value, expected)?;
                <$t>::try_from(wide).map_err(|_| {
                    de::Error::new(format!("number {wide} overflows {expected}"))
                })
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        f64::from_json_value(value).map(|v| v as f32)
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(de::invalid_type("a number", other)),
        }
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::invalid_type("a boolean", other)),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::invalid_type("a string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    /// An absent field is simply `None` — optional config keys can be
    /// omitted entirely.
    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        let items = de::array(value, "Vec")?;
        items
            .iter()
            .enumerate()
            .map(|(i, v)| T::from_json_value(v).map_err(|e| e.in_index(i)))
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.as_ref(), v.to_json_value());
        }
        Value::Object(map)
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        let map = de::object(value, "a string-keyed map")?;
        map.iter()
            .map(|(k, v)| {
                V::from_json_value(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut entries: Vec<(&str, &V)> = self.iter().map(|(k, v)| (k.as_ref(), v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k, v.to_json_value());
        }
        Value::Object(map)
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        let map = de::object(value, "a string-keyed map")?;
        map.iter()
            .map(|(k, v)| {
                V::from_json_value(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_field(k))
            })
            .collect()
    }
}

impl Serialize for std::time::Duration {
    /// `{"secs": u64, "nanos": u32}`, matching real serde's representation.
    fn to_json_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs", Value::Number(Number::from_u64(self.as_secs())));
        map.insert(
            "nanos",
            Value::Number(Number::from_u64(self.subsec_nanos() as u64)),
        );
        Value::Object(map)
    }
}
impl Deserialize for std::time::Duration {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        let map = de::object(value, "Duration")?;
        de::deny_unknown(map, "Duration", &["secs", "nanos"])?;
        let secs: u64 = de::field(map, "Duration", "secs")?;
        let nanos: u32 = de::field(map, "Duration", "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )+};
}

serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
