//! Offline stand-in for the `serde` facade crate.
//!
//! The FRaZ workspace is built in environments without access to crates.io,
//! so this vendored shim provides the small serde surface the workspace
//! actually uses:
//!
//! * [`Serialize`] — converts a value into the JSON [`value::Value`] model
//!   (the only serialization format the workspace emits),
//! * [`Deserialize`] — a marker trait; no workspace code deserializes yet,
//!   so derived impls are markers until a real wire format is needed,
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the local
//!   `serde_derive` proc-macro shim.
//!
//! The trait shape is intentionally simpler than real serde (no generic
//! `Serializer` visitor); swapping the real crates back in only requires
//! restoring the registry dependencies, since all workspace code sticks to
//! the derive + `serde_json::{json!, to_value, to_string}` surface.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{Map, Number, Value};

/// Types that can be converted into the JSON [`Value`] model.
pub trait Serialize {
    /// Convert `self` into a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Marker for types that could be reconstructed from serialized form.
///
/// The workspace currently has no deserialization call sites; the derive
/// macro emits an empty impl so `#[derive(Deserialize)]` stays meaningful
/// as a declaration of intent (and a future upgrade point).
pub trait Deserialize {}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {}
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.as_ref(), v.to_json_value());
        }
        Value::Object(map)
    }
}
impl<K, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher.
        let mut entries: Vec<(&str, &V)> = self.iter().map(|(k, v)| (k.as_ref(), v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        let mut map = Map::new();
        for (k, v) in entries {
            map.insert(k, v.to_json_value());
        }
        Value::Object(map)
    }
}
impl<K, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}

impl Serialize for std::time::Duration {
    /// `{"secs": u64, "nanos": u32}`, matching real serde's representation.
    fn to_json_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs", Value::Number(Number::from_u64(self.as_secs())));
        map.insert(
            "nanos",
            Value::Number(Number::from_u64(self.subsec_nanos() as u64)),
        );
        Value::Object(map)
    }
}
impl Deserialize for std::time::Duration {}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )+};
}

serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
