//! Deserialization support: reconstructing Rust values from the JSON
//! [`Value`] model.
//!
//! The mirror image of [`crate::Serialize`]: a [`crate::Deserialize`] type
//! rebuilds itself from a [`Value`] tree (produced by `serde_json`'s text
//! parser or built programmatically).  Errors carry a dotted/indexed path
//! (`fields[2].dims[1]: …`) so a malformed config file names the exact
//! offending entry instead of failing wholesale.
//!
//! The free functions in this module ([`object`], [`field`],
//! [`deny_unknown`], …) are the building blocks the derived impls call;
//! they are equally usable from hand-written impls (see `DType` in
//! `fraz-data` for an example that accepts spelling variants).
//!
//! Two deliberate differences from real serde, documented here because they
//! are load-bearing for the workspace's config files:
//!
//! * derived struct impls **reject unknown fields** (real serde ignores
//!   them unless `#[serde(deny_unknown_fields)]` is given) — a typo in a
//!   manifest should be an error, not a silently ignored knob,
//! * integer targets accept integral floats (`workers = 4.0` works), since
//!   hand-written TOML/JSON configs mix the two freely.

use std::fmt;

use crate::value::{Map, Number, Value};
use crate::Deserialize;

/// A deserialization failure: a message plus the path of field names and
/// array indices leading to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Path segments from the root to the failure, outermost first.  Index
    /// segments are stored as `[i]` and join without a dot.
    path: Vec<String>,
    message: String,
}

impl Error {
    /// A new error with the given message and an empty path.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            path: Vec::new(),
            message: message.into(),
        }
    }

    /// Prepend a path segment (a field name) on the way out of a nested
    /// deserialization call.
    pub fn in_field(mut self, name: &str) -> Self {
        self.path.insert(0, name.to_string());
        self
    }

    /// Prepend an array-index path segment.
    pub fn in_index(mut self, index: usize) -> Self {
        self.path.insert(0, format!("[{index}]"));
        self
    }

    /// The bare message, without the path prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The dotted path (`fields[2].dims`), empty at the root.
    pub fn path(&self) -> String {
        let mut out = String::new();
        for seg in &self.path {
            if !out.is_empty() && !seg.starts_with('[') {
                out.push('.');
            }
            out.push_str(seg);
        }
        out
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = self.path();
        if path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{path}: {}", self.message)
        }
    }
}

impl std::error::Error for Error {}

/// A short human description of a value's type and content, for error
/// messages ("a string (\"xyz\")", "an array of 3 elements", …).
pub fn describe(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => format!("a boolean ({b})"),
        Value::Number(n) => format!("a number ({n})"),
        Value::String(s) => {
            let shown: String = s.chars().take(32).collect();
            if shown.len() < s.len() {
                format!("a string ({shown:?}…)")
            } else {
                format!("a string ({shown:?})")
            }
        }
        Value::Array(a) => format!("an array of {} elements", a.len()),
        Value::Object(m) => format!("an object with {} fields", m.len()),
    }
}

/// "invalid type: expected X, found Y" — the standard mismatch error.
pub fn invalid_type(expected: &str, found: &Value) -> Error {
    Error::new(format!(
        "invalid type: expected {expected}, found {}",
        describe(found)
    ))
}

/// View `value` as an object, or fail naming the target type.
pub fn object<'a>(value: &'a Value, ty: &str) -> Result<&'a Map, Error> {
    match value {
        Value::Object(map) => Ok(map),
        other => Err(invalid_type(&format!("an object ({ty})"), other)),
    }
}

/// View `value` as an array.
pub fn array<'a>(value: &'a Value, ty: &str) -> Result<&'a [Value], Error> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(invalid_type(&format!("an array ({ty})"), other)),
    }
}

/// View `value` as an array of exactly `len` elements (tuple shapes).
pub fn fixed_array<'a>(value: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], Error> {
    let items = array(value, ty)?;
    if items.len() != len {
        return Err(Error::new(format!(
            "expected an array of {len} elements for {ty}, found {} elements",
            items.len()
        )));
    }
    Ok(items)
}

/// Deserialize element `index` of a tuple-shaped array, with index context.
pub fn element<T: Deserialize>(items: &[Value], index: usize) -> Result<T, Error> {
    T::from_json_value(&items[index]).map_err(|e| e.in_index(index))
}

/// Fail if `map` holds a key not present in `known` — the readable
/// "unknown field" error for config typos.
pub fn deny_unknown(map: &Map, ty: &str, known: &[&str]) -> Result<(), Error> {
    for (key, _) in map.iter() {
        if !known.contains(&key.as_str()) {
            let mut expected: Vec<String> = known.iter().map(|k| format!("`{k}`")).collect();
            expected.sort();
            return Err(Error::new(format!(
                "unknown field `{key}` in {ty}, expected one of {}",
                expected.join(", ")
            )));
        }
    }
    Ok(())
}

/// Deserialize one named struct field.  A missing key is an error unless
/// the target type tolerates absence (`Option<T>` becomes `None`).
pub fn field<T: Deserialize>(map: &Map, ty: &str, name: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(value) => T::from_json_value(value).map_err(|e| e.in_field(name)),
        None => T::absent().ok_or_else(|| Error::new(format!("missing field `{name}` in {ty}"))),
    }
}

/// Split an externally-tagged enum value (`{"Variant": payload}`) into its
/// tag and payload.
pub fn variant<'a>(value: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), Error> {
    let map = match value {
        Value::Object(map) => map,
        other => {
            return Err(invalid_type(
                &format!("a {ty} variant (a string or a single-key object)"),
                other,
            ))
        }
    };
    let mut entries = map.iter();
    match (entries.next(), entries.next()) {
        (Some((tag, payload)), None) => Ok((tag.as_str(), payload)),
        _ => Err(Error::new(format!(
            "expected an object with exactly one key (a {ty} variant), found {} keys",
            map.len()
        ))),
    }
}

/// The "unknown variant" error for enums.
pub fn unknown_variant(ty: &str, found: &str, expected: &[&str]) -> Error {
    let names: Vec<String> = expected.iter().map(|v| format!("`{v}`")).collect();
    Error::new(format!(
        "unknown variant `{found}` of {ty}, expected one of {}",
        names.join(", ")
    ))
}

fn number(value: &Value, expected: &str) -> Result<Number, Error> {
    match value {
        Value::Number(n) => Ok(*n),
        other => Err(invalid_type(expected, other)),
    }
}

/// Shared u64 extraction: unsigned integers, plus integral non-negative
/// floats (TOML/JSON configs mix `4` and `4.0` freely).
pub(crate) fn as_u64(value: &Value, expected: &str) -> Result<u64, Error> {
    match number(value, expected)? {
        Number::PosInt(v) => Ok(v),
        Number::NegInt(v) => Err(Error::new(format!(
            "invalid value: expected {expected}, found the negative number {v}"
        ))),
        // The upper bound is exclusive: `u64::MAX as f64` rounds *up* to
        // 2^64, so an inclusive check would let 2^64 saturate to
        // `u64::MAX` silently instead of erroring.
        Number::Float(f) if f.fract() == 0.0 && (0.0..u64::MAX as f64).contains(&f) => Ok(f as u64),
        Number::Float(f) => Err(Error::new(format!(
            "invalid value: expected {expected}, found the non-integral or out-of-range number {f}"
        ))),
    }
}

/// Shared i64 extraction (same float tolerance as [`as_u64`]).
pub(crate) fn as_i64(value: &Value, expected: &str) -> Result<i64, Error> {
    match number(value, expected)? {
        Number::PosInt(v) => {
            i64::try_from(v).map_err(|_| Error::new(format!("number {v} overflows {expected}")))
        }
        Number::NegInt(v) => Ok(v),
        // Lower bound inclusive (`i64::MIN as f64` is exact), upper bound
        // exclusive (`i64::MAX as f64` rounds up to 2^63 — see as_u64).
        Number::Float(f) if f.fract() == 0.0 && (i64::MIN as f64..i64::MAX as f64).contains(&f) => {
            Ok(f as i64)
        }
        Number::Float(f) => Err(Error::new(format!(
            "invalid value: expected {expected}, found the non-integral or out-of-range number {f}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_paths_render_with_dots_and_indexes() {
        let e = Error::new("missing field `dims` in FieldSpec")
            .in_index(2)
            .in_field("fields");
        assert_eq!(
            e.to_string(),
            "fields[2]: missing field `dims` in FieldSpec"
        );
        let e = Error::new("boom").in_field("b").in_index(0).in_field("a");
        assert_eq!(e.to_string(), "a[0].b: boom");
        assert_eq!(Error::new("boom").to_string(), "boom");
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(describe(&Value::Null), "null");
        assert!(describe(&Value::Bool(true)).contains("boolean"));
        assert!(describe(&Value::String("x".into())).contains("\"x\""));
        assert!(describe(&Value::Array(vec![Value::Null])).contains("1 elements"));
    }

    #[test]
    fn integer_float_boundaries_error_instead_of_saturating() {
        // 2^64 and 2^63 are exactly what `u64::MAX as f64` / `i64::MAX as
        // f64` round up to; they must be rejected, not saturated.
        let two_64 = Value::Number(Number::from_f64((u64::MAX as f64) * 1.0));
        assert!(as_u64(&two_64, "u64").is_err());
        let two_63 = Value::Number(Number::from_f64(i64::MAX as f64));
        assert!(as_i64(&two_63, "i64").is_err());
        // In-range integral floats still convert.
        assert_eq!(as_u64(&Value::Number(Number::from_f64(4.0)), "u64"), Ok(4));
        assert_eq!(
            as_i64(&Value::Number(Number::from_f64(i64::MIN as f64)), "i64"),
            Ok(i64::MIN)
        );
    }

    #[test]
    fn unknown_field_message_lists_expected() {
        let mut map = Map::new();
        map.insert("blok", Value::Null);
        let err = deny_unknown(&map, "Config", &["block", "rate"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown field `blok` in Config"), "{msg}");
        assert!(msg.contains("`block`"), "{msg}");
        assert!(msg.contains("`rate`"), "{msg}");
    }
}
