//! The JSON value model shared by the `serde` and `serde_json` shims.
//!
//! Lives here (rather than in `serde_json`) so that [`crate::Serialize`] can
//! return it without a circular crate dependency; `serde_json` re-exports
//! everything.

use std::fmt;

/// A JSON number. Mirrors `serde_json::Number`'s three internal shapes so
/// integers round-trip without a float detour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite or non-finite float (non-finite prints as `null`).
    Float(f64),
}

impl Number {
    /// Wrap an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number::PosInt(v)
    }

    /// Wrap a signed integer, using the unsigned shape when non-negative.
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// Wrap a float.
    pub fn from_f64(v: f64) -> Self {
        Number::Float(v)
    }

    /// The value as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip formatting; integral floats
                    // get an explicit `.0` so they read back as floats.
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null too.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON object preserving insertion order (deterministic output for the
/// experiment `.jsonl` records).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Create an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    /// Compact JSON rendering (what `serde_json::to_string` produces).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}
