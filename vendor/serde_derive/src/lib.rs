//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by parsing
//! the item token stream directly with `proc_macro` (no `syn`/`quote`,
//! which are unavailable without a registry). Both derives generate real
//! working impls — `Serialize` builds the externally-tagged JSON value and
//! `Deserialize` rebuilds the item from it (strict about unknown fields,
//! lenient about absent `Option` fields). Supports exactly the item
//! shapes present in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize as their inner value, wider tuples
//!   as arrays),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (serde's externally-tagged
//!   representation: `"Variant"`, `{"Variant": inner}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Generic items are rejected with a compile error — none exist in the
//! workspace, and keeping the parser non-generic keeps it auditable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item the derive is attached to.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Unit struct.
    UnitStruct { name: String },
    /// Enum (any mix of variant shapes).
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) prefixes.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Split a group's tokens into top-level comma-separated chunks.
///
/// Angle brackets are not token groups, so generic arguments like
/// `BTreeMap<String, OptionValue>` must be tracked by depth to avoid
/// splitting inside them.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in tokens {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extract the field name from one named-field chunk (`[attrs] [vis] name: Ty`).
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let i = skip_attrs_and_vis(chunk, 0);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive shim does not support generic items ({name})"
            ));
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = split_commas(g.stream().into_iter().collect())
                    .iter()
                    .filter_map(|c| field_name(c))
                    .collect();
                Ok(Item::Struct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_commas(g.stream().into_iter().collect()).len();
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let mut variants = Vec::new();
                for chunk in split_commas(g.stream().into_iter().collect()) {
                    let j = skip_attrs_and_vis(&chunk, 0);
                    let vname = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => continue,
                        other => return Err(format!("bad variant in {name}: {other:?}")),
                    };
                    match chunk.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let arity = split_commas(g.stream().into_iter().collect()).len();
                            variants.push(Variant::Tuple(vname, arity));
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let fields = split_commas(g.stream().into_iter().collect())
                                .iter()
                                .filter_map(|c| field_name(c))
                                .collect();
                            variants.push(Variant::Struct(vname, fields));
                        }
                        _ => variants.push(Variant::Unit(vname)),
                    }
                }
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body for {name}: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `#[derive(Serialize)]` — emits an `impl serde::Serialize` building the
/// externally-tagged JSON representation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };

    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let mut body = String::from("let mut map = serde::value::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "map.insert({f:?}, serde::Serialize::to_json_value(&self.{f}));\n"
                ));
            }
            body.push_str("serde::value::Value::Object(map)");
            (name.clone(), body)
        }
        Item::TupleStruct { name, arity: 1 } => (
            name.clone(),
            "serde::Serialize::to_json_value(&self.0)".to_string(),
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            (
                name.clone(),
                format!("serde::value::Value::Array(vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name.clone(), "serde::value::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => serde::value::Value::String({vn:?}.to_string()),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let inner = if *arity == 1 {
                            "serde::Serialize::to_json_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut map = serde::value::Map::new();\n\
                             map.insert({vn:?}, {inner});\n\
                             serde::value::Value::Object(map)\n\
                             }}\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let mut inner = String::from("let mut inner = serde::value::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert({f:?}, serde::Serialize::to_json_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {fields} }} => {{\n\
                             {inner}\
                             let mut map = serde::value::Map::new();\n\
                             map.insert({vn:?}, serde::value::Value::Object(inner));\n\
                             serde::value::Value::Object(map)\n\
                             }}\n",
                            fields = fields.join(", "),
                        ));
                    }
                }
            }
            (name.clone(), format!("match self {{\n{arms}}}"))
        }
    };

    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_json_value(&self) -> serde::value::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// `#[derive(Deserialize)]` — emits an `impl serde::Deserialize` that
/// rebuilds the value from the externally-tagged JSON representation
/// produced by the matching `#[derive(Serialize)]`.
///
/// Generated struct impls **reject unknown fields** with a readable error
/// naming the field and the expected set (the behaviour config files
/// want); optional fields (`Option<T>`) may be absent.  Enums accept a
/// bare string for unit variants and a single-key object for payload
/// variants.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };

    // Common body for a named-fields shape (struct or struct variant):
    // check unknown keys, then build the literal field by field.  Types are
    // never named — `serde::de::field`'s return type is fixed by inference
    // from the struct literal.
    fn named_fields_body(constructor: &str, ty: &str, fields: &[String]) -> String {
        let known: Vec<String> = fields.iter().map(|f| format!("{f:?}")).collect();
        let mut body = format!(
            "serde::de::deny_unknown(map, {ty:?}, &[{}])?;\n",
            known.join(", ")
        );
        body.push_str(&format!("Ok({constructor} {{\n"));
        for f in fields {
            body.push_str(&format!("{f}: serde::de::field(map, {ty:?}, {f:?})?,\n"));
        }
        body.push_str("})");
        body
    }

    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let body = format!(
                "let map = serde::de::object(value, {name:?})?;\n{}",
                named_fields_body(name, name, fields)
            );
            (name.clone(), body)
        }
        // Newtypes are transparent, mirroring Serialize.
        Item::TupleStruct { name, arity: 1 } => (
            name.clone(),
            format!("Ok({name}(serde::Deserialize::from_json_value(value)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("serde::de::element(items, {i})?"))
                .collect();
            (
                name.clone(),
                format!(
                    "let items = serde::de::fixed_array(value, {name:?}, {arity})?;\n\
                     Ok({name}({}))",
                    items.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (
            name.clone(),
            format!(
                "match value {{\n\
                 serde::value::Value::Null => Ok({name}),\n\
                 other => Err(serde::de::invalid_type(\"null\", other)),\n\
                 }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let variant_names: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) | Variant::Tuple(vn, _) | Variant::Struct(vn, _) => {
                        format!("{vn:?}")
                    }
                })
                .collect();
            let mut body = format!(
                "const VARIANTS: &[&str] = &[{}];\n",
                variant_names.join(", ")
            );
            // Unit variants arrive as bare strings.
            body.push_str(
                "if let serde::value::Value::String(tag) = value {\nreturn match tag.as_str() {\n",
            );
            for v in variants {
                if let Variant::Unit(vn) = v {
                    body.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                }
            }
            body.push_str(&format!(
                "other => Err(serde::de::unknown_variant({name:?}, other, VARIANTS)),\n}};\n}}\n"
            ));
            // Payload variants arrive as {\"Variant\": payload}.
            body.push_str(&format!(
                "let (tag, _payload) = serde::de::variant(value, {name:?})?;\n\
                 match tag {{\n"
            ));
            for v in variants {
                match v {
                    Variant::Unit(_) => {}
                    Variant::Tuple(vn, 1) => {
                        let ty = format!("{name}::{vn}");
                        body.push_str(&format!(
                            "{vn:?} => Ok({name}::{vn}(\
                             serde::Deserialize::from_json_value(_payload)\
                             .map_err(|e| e.in_field({ty:?}))?)),\n"
                        ));
                    }
                    Variant::Tuple(vn, arity) => {
                        let ty = format!("{name}::{vn}");
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("serde::de::element(items, {i})?"))
                            .collect();
                        body.push_str(&format!(
                            "{vn:?} => {{\n\
                             let items = serde::de::fixed_array(_payload, {ty:?}, {arity})?;\n\
                             Ok({name}::{vn}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let ty = format!("{name}::{vn}");
                        body.push_str(&format!(
                            "{vn:?} => {{\n\
                             let map = serde::de::object(_payload, {ty:?})?;\n\
                             {}\n\
                             }}\n",
                            named_fields_body(&format!("{name}::{vn}"), &ty, fields)
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "other => Err(serde::de::unknown_variant({name:?}, other, VARIANTS)),\n}}"
            ));
            (name.clone(), body)
        }
    };

    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_json_value(value: &serde::value::Value) \
         -> Result<Self, serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}
