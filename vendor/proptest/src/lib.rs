//! Offline stand-in for `proptest`.
//!
//! Reimplements, without any registry dependency, the subset of proptest
//! the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//! * range strategies for the primitive numeric types, tuple strategies,
//!   [`strategy::Just`], weighted unions via [`prop_oneof!`],
//! * [`collection::vec`] with exact or ranged sizes,
//! * [`arbitrary::any`] for primitives, [`num::f32::NORMAL`],
//! * the [`proptest!`] macro, `prop_assert!`, `prop_assert_eq!`, and
//!   `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted for this
//! workspace: cases are generated from a seed derived from the test's
//! module path and name (fully deterministic run-to-run), and failing
//! inputs are **not shrunk** — the panic message reports the case number
//! so a failure can be replayed under a debugger by seed.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod num;
pub mod strategy;
pub mod test_runner;

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property test (no early-return machinery in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::WeightedUnion::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Define property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// draws `config.cases` samples and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::config::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(
                        &($strategy), &mut rng);)+
                    let run = || { $body };
                    if let Err(panic) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} failed in {}",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}
