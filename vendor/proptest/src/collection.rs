//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`]: an exact size or a size range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }

    /// Greedy halving on two axes: the length (keep either half, drop the
    /// last element) while it stays within the declared size range, then
    /// element-wise simplification (one position at a time, capped so huge
    /// vectors do not explode the candidate list).
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let n = value.len();
        if n > self.size.min {
            let half = self.size.min.max(n / 2);
            if half < n {
                out.push(value[..half].to_vec());
                out.push(value[n - half..].to_vec());
            }
            out.push(value[..n - 1].to_vec());
        }
        const ELEMENT_SHRINK_CAP: usize = 32;
        for (i, v) in value.iter().enumerate().take(ELEMENT_SHRINK_CAP) {
            for candidate in self.element.shrink(v) {
                let mut copy = value.clone();
                copy[i] = candidate;
                out.push(copy);
            }
        }
        out
    }
}

/// `vec(element, size)` — a `Vec` strategy with exact or ranged length.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
