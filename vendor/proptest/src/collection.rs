//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec()`]: an exact size or a size range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `vec(element, size)` — a `Vec` strategy with exact or ranged length.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
