//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// draws a fresh sample per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Weighted choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Build from `(weight, strategy)` arms. Panics if all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights covered above")
    }
}

macro_rules! float_range_strategy {
    ($($t:ty => $unit:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let sample = self.start + rng.$unit() * (self.end - self.start);
                // Rounding can push `start + u * span` onto the excluded
                // endpoint; clamp to preserve the half-open contract.
                if sample >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    sample
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.$unit() * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32 => unit_f32, f64 => unit_f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);
