//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no lazily-explored value tree: a strategy
/// draws a fresh sample per case, and failing values are simplified after
/// the fact through [`Strategy::shrink`] — a greedy-halving scheme where
/// each call proposes a few strictly "simpler" candidates (jump to the
/// minimum, halve toward it, step by one) and the runner keeps the first
/// candidate that still fails, repeating until none do.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose simpler candidates derived from a failing `value`, most
    /// aggressive first.  The default is no shrinking (combinators like
    /// [`Map`] cannot invert their transform).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink(value)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Weighted choice between boxed strategies ([`crate::prop_oneof!`]).
pub struct WeightedUnion<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> WeightedUnion<T> {
    /// Build from `(weight, strategy)` arms. Panics if all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strategy) in &self.arms {
            if pick < *weight as u64 {
                return strategy.new_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights covered above")
    }
}

/// Greedy-halving candidates for a float in `[lo, value)`: the range start,
/// then the midpoint toward it.
fn shrink_float_toward<T>(lo: T, value: T) -> Vec<T>
where
    T: Copy + PartialEq + PartialOrd + FromF64,
    f64: From<T>,
{
    let mut out = Vec::new();
    if value != lo {
        out.push(lo);
        let mid = T::from_f64(f64::from(lo) + (f64::from(value) - f64::from(lo)) / 2.0);
        if mid != value && mid != lo && mid >= lo {
            out.push(mid);
        }
    }
    out
}

/// Narrowing `f64 -> Self` conversion for [`shrink_float_toward`].
trait FromF64 {
    fn from_f64(v: f64) -> Self;
}
impl FromF64 for f32 {
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
}
impl FromF64 for f64 {
    fn from_f64(v: f64) -> f64 {
        v
    }
}

macro_rules! float_range_strategy {
    ($($t:ty => $unit:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let sample = self.start + rng.$unit() * (self.end - self.start);
                // Rounding can push `start + u * span` onto the excluded
                // endpoint; clamp to preserve the half-open contract.
                if sample >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    sample
                }
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float_toward(self.start, *value)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.$unit() * (hi - lo)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float_toward(*self.start(), *value)
            }
        }
    )*};
}

float_range_strategy!(f32 => unit_f32, f64 => unit_f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(self.start as i128, *value as i128)
                    .into_iter().map(|v| v as $t).collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*self.start() as i128, *value as i128)
                    .into_iter().map(|v| v as $t).collect()
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Greedy-halving candidates for an integer shrunk toward `lo`: jump to
/// `lo`, halve the distance, step by one (done in `i128` so every primitive
/// width fits without overflow; `any::<iN>()` shrinks negatives toward 0 by
/// passing `lo = 0`).
pub(crate) fn shrink_int_toward(lo: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value != lo {
        out.push(lo);
        let mid = lo + (value - lo) / 2;
        if mid != lo && mid != value {
            out.push(mid);
        }
        let step = value - (value - lo).signum();
        if step != lo && step != mid {
            out.push(step);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
