//! Numeric sub-strategies (`proptest::num::f32::NORMAL`, ...).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `f32` strategies.
pub mod f32 {
    use super::*;

    /// Strategy over normal (finite, non-zero, non-subnormal) `f32`s of
    /// either sign — proptest's `num::f32::NORMAL` class.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct NormalF32;

    /// The canonical instance, used as `proptest::num::f32::NORMAL`.
    pub const NORMAL: NormalF32 = NormalF32;

    impl Strategy for NormalF32 {
        type Value = core::primitive::f32;
        fn new_value(&self, rng: &mut TestRng) -> core::primitive::f32 {
            let bits = rng.next_u64();
            let sign = ((bits >> 63) as u32) << 31;
            // Exponent in 1..=254 (normal), mantissa arbitrary.
            let exponent = (1 + (bits >> 32) as u32 % 254) << 23;
            let mantissa = (bits as u32) & 0x007F_FFFF;
            core::primitive::f32::from_bits(sign | exponent | mantissa)
        }
        /// Shrink toward `±1.0` (zero is not a normal float): same-sign
        /// one, then halve while the halved value stays normal.
        fn shrink(&self, value: &core::primitive::f32) -> Vec<core::primitive::f32> {
            let one = 1.0f32.copysign(*value);
            let mut out = Vec::new();
            if *value != one {
                out.push(one);
                let half = value / 2.0;
                if half.is_normal() && half != one {
                    out.push(half);
                }
            }
            out
        }
    }
}

/// `f64` strategies.
pub mod f64 {
    use super::*;

    /// Strategy over normal (finite, non-zero, non-subnormal) `f64`s.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct NormalF64;

    /// The canonical instance, used as `proptest::num::f64::NORMAL`.
    pub const NORMAL: NormalF64 = NormalF64;

    impl Strategy for NormalF64 {
        type Value = core::primitive::f64;
        fn new_value(&self, rng: &mut TestRng) -> core::primitive::f64 {
            let sign = rng.next_u64() & (1 << 63);
            let exponent = 1 + rng.next_u64() % 2046;
            let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
            core::primitive::f64::from_bits(sign | (exponent << 52) | mantissa)
        }
        /// Shrink toward `±1.0` (zero is not a normal float): same-sign
        /// one, then halve while the halved value stays normal.
        fn shrink(&self, value: &core::primitive::f64) -> Vec<core::primitive::f64> {
            let one = 1.0f64.copysign(*value);
            let mut out = Vec::new();
            if *value != one {
                out.push(one);
                let half = value / 2.0;
                if half.is_normal() && half != one {
                    out.push(half);
                }
            }
            out
        }
    }
}
