//! Deterministic randomness for property-test cases.

/// A xoshiro256++ generator seeded from the test's identity and case index,
/// so every run of the suite explores the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a, to fold the test name into the seed.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl TestRng {
    /// Seed for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut sm = hash_str(name) ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
