//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Greedy-halving candidates simpler than `value` (toward the type's
    /// natural zero), most aggressive first.  Defaults to no shrinking.
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(value: &$t) -> Vec<$t> {
                crate::strategy::shrink_int_toward(0, *value as i128)
                    .into_iter().map(|v| v as $t).collect()
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f32 {
    /// Any bit pattern, NaNs and infinities included (as in real proptest's
    /// `any::<f32>()` the full domain is fair game).
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
    fn shrink(value: &f32) -> Vec<f32> {
        if *value == 0.0 {
            Vec::new()
        } else if value.is_finite() {
            vec![0.0, value / 2.0]
        } else {
            // NaN / infinities simplify straight to zero.
            vec![0.0]
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
    fn shrink(value: &f64) -> Vec<f64> {
        if *value == 0.0 {
            Vec::new()
        } else if value.is_finite() {
            vec![0.0, value / 2.0]
        } else {
            vec![0.0]
        }
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

/// Full-domain strategy for `T` (`any::<u8>()`, `any::<f32>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
