//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    /// Any bit pattern, NaNs and infinities included (as in real proptest's
    /// `any::<f32>()` the full domain is fair game).
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (`any::<u8>()`, `any::<f32>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}
