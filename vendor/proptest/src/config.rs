//! Test-runner configuration.

/// How a `proptest!` block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 because the workspace's
    /// heavier properties each run a full codec round-trip.
    fn default() -> Self {
        Self { cases: 64 }
    }
}
