//! Tests for the greedy-halving shrinkers: candidate generation per
//! strategy, convergence of the greedy loop, and the end-to-end behaviour of
//! the `proptest!` runner (a failing property must panic with the *minimal*
//! counterexample, not the randomly drawn one).

use proptest::arbitrary::any;
use proptest::collection::vec;
use proptest::num;
use proptest::prelude::*;
use proptest::strategy::Strategy;

#[test]
fn int_range_candidates_halve_toward_the_start() {
    let strategy = 0u32..100;
    assert_eq!(strategy.shrink(&77), vec![0, 38, 76]);
    assert_eq!(strategy.shrink(&1), vec![0]);
    assert_eq!(strategy.shrink(&0), Vec::<u32>::new());
    let offset = 10u32..=100;
    assert_eq!(offset.shrink(&11), vec![10]);
}

#[test]
fn any_int_shrinks_negative_values_toward_zero() {
    let strategy = any::<i64>();
    assert_eq!(strategy.shrink(&-100), vec![0, -50, -99]);
    assert_eq!(strategy.shrink(&100), vec![0, 50, 99]);
    assert_eq!(strategy.shrink(&0), Vec::<i64>::new());
}

#[test]
fn bool_and_float_candidates() {
    assert_eq!(any::<bool>().shrink(&true), vec![false]);
    assert_eq!(any::<bool>().shrink(&false), Vec::<bool>::new());
    assert_eq!(any::<f64>().shrink(&8.0), vec![0.0, 4.0]);
    assert_eq!(any::<f64>().shrink(&f64::NAN), vec![0.0]);
    // NORMAL never proposes zero or a subnormal, and keeps the sign.
    for candidate in num::f32::NORMAL.shrink(&-64.0f32) {
        assert!(candidate.is_normal() && candidate < 0.0, "{candidate}");
    }
    assert_eq!(num::f32::NORMAL.shrink(&1.0f32), Vec::<f32>::new());
}

#[test]
fn vec_candidates_respect_the_minimum_length() {
    let strategy = vec(0u8..10, 3..=8);
    let value = vec![9u8; 8];
    for candidate in strategy.shrink(&value) {
        assert!(candidate.len() >= 3, "candidate shorter than the minimum");
        assert!(candidate.len() < value.len() || candidate.iter().sum::<u8>() < 72);
    }
    // A minimum-length vector still shrinks element-wise.
    let floor = vec![5u8; 3];
    assert!(strategy
        .shrink(&floor)
        .iter()
        .all(|c| c.len() == 3 && c.iter().sum::<u8>() < 15));
    assert!(!strategy.shrink(&floor).is_empty());
}

#[test]
fn tuple_candidates_shrink_one_component_at_a_time() {
    let strategy = (0u32..100, 0u32..100);
    for (a, b) in strategy.shrink(&(40, 60)) {
        assert!(
            (a < 40 && b == 60) || (a == 40 && b < 60),
            "({a}, {b}) changed both components"
        );
    }
}

#[test]
fn greedy_loop_converges_to_the_boundary() {
    // Emulate the runner: property fails iff v >= 10; greedy halving from
    // any start must land exactly on 10.
    let strategy = 0u32..1000;
    let fails = |v: &u32| *v >= 10;
    let mut v = 977u32;
    assert!(fails(&v));
    loop {
        let Some(next) = strategy.shrink(&v).into_iter().find(&fails) else {
            break;
        };
        v = next;
    }
    assert_eq!(v, 10);
}

// A deliberately failing property (no `#[test]` attribute: the runner fn is
// invoked manually below so the suite itself stays green).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    fn fails_at_five_or_more(v in 0u32..1000) {
        assert!(v < 5, "counterexample {v}");
    }
}

#[test]
fn runner_panics_with_the_minimal_counterexample() {
    let result = std::panic::catch_unwind(fails_at_five_or_more);
    let payload = result.expect_err("property must fail");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| payload.downcast_ref::<&str>().unwrap_or(&"?").to_string());
    // Whatever value 0..1000 the seed produced, greedy halving must walk it
    // down to the smallest failing input, 5.
    assert_eq!(message, "counterexample 5");
}
