//! Offline stand-in for the `rand 0.8` API surface used by this workspace.
//!
//! Only deterministic seeded generation is supported (no OS entropy): the
//! synthetic SDRBench-like datasets must be reproducible, so every rng in
//! the workspace is constructed through [`SeedableRng::seed_from_u64`].
//!
//! The sampling helpers intentionally do **not** promise bit-compatibility
//! with upstream `rand`; the workspace only relies on determinism for a
//! fixed seed, which this shim provides.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform double in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end - self.start;
                let sample = self.start + (unit_f64(rng) as $t) * span;
                // `start + u * span` can round up to exactly `end`; keep the
                // half-open contract.
                if sample >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    sample
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

float_ranges!(f32, f64);
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` namespace with a default generator, for API familiarity.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(0u32..=4);
            assert!(j <= 4);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
