//! # FRaZ-rs
//!
//! A from-scratch Rust reproduction of **FRaZ: A Generic High-Fidelity
//! Fixed-Ratio Lossy Compression Framework for Scientific Floating-point
//! Data** (Underwood, Di, Calhoun, Cappello — IPDPS 2020).
//!
//! This umbrella crate re-exports every workspace crate under a single
//! namespace so applications can depend on `fraz` alone:
//!
//! * [`data`] — N-dimensional scientific datasets and synthetic
//!   SDRBench-like generators (Hurricane, HACC, CESM, EXAALT, NYX).
//! * [`metrics`] — PSNR, RMSE, max error, SSIM, error autocorrelation,
//!   compression ratio and bit-rate accounting.
//! * [`lossless`] — bitstream, canonical Huffman, and LZSS dictionary coding.
//! * [`sz`] — an SZ-like blockwise prediction-based error-bounded compressor.
//! * [`zfp`] — a ZFP-like block-transform compressor with fixed-accuracy and
//!   fixed-rate modes.
//! * [`mgard`] — an MGARD-like multilevel compressor.
//! * [`szx`] — an SZx-like ultra-fast blockwise-truncation compressor.
//! * [`pressio`] — the libpressio-like abstraction layer over compressors:
//!   the [`Compressor`] trait, the extensible [`Registry`] with
//!   introspectable [`CodecDescriptor`]s, and validated [`Options`].
//! * [`pool`] — the work-stealing scoped thread pool shared by the search
//!   and the orchestrator (nested, re-entrant scopes; zero per-call thread
//!   spawns).
//! * [`core`] — FRaZ itself: the fixed-ratio autotuning optimizer and the
//!   parallel orchestrator.
//! * [`store`] — the chunked array store: a self-describing container with
//!   per-chunk tuned error bounds and partial (byte-range) decode over
//!   pluggable storage backends.
//! * [`scenarios`] — the synthetic workload suite: six seed-deterministic
//!   field regimes (smooth → noise) with oracle descriptors of known
//!   ground truth, usable as zero-file `generator` manifest fields.
//! * [`serve`] — the fault-tolerant compression service: a blocking-TCP
//!   daemon with admission control, per-job deadlines, retry/degrade
//!   dependency stacks, graceful drain, and first-class chaos injection
//!   (plus the protocol client and the open-loop load generator).
//!
//! The most commonly used registry types are re-exported at the crate root
//! ([`Registry`], [`CodecDescriptor`], [`OptionDescriptor`], [`BoundKind`],
//! [`Options`], [`RegistryError`], [`Compressor`]).
//!
//! Each codec crate (and its registry backend) sits behind a cargo feature
//! of the same name — `sz`, `zfp`, `mgard`, `szx`, all on by default — so
//! slim builds can drop the compressors they do not ship.
//!
//! ## Quick start
//!
//! ```
//! use fraz::core::{FixedRatioSearch, SearchConfig};
//! use fraz::data::synthetic;
//! use fraz::pressio::registry;
//! use fraz::Options;
//!
//! // A small hurricane-like 3-D field.
//! let dataset = synthetic::hurricane(8, 16, 16, 1, 42).field("TCf", 0);
//!
//! // Codecs come from the registry: introspect before you build.
//! let descriptor = registry::describe("sz").unwrap();
//! assert!(descriptor.error_bounded, "sz is a valid FRaZ search target");
//! assert!(descriptor.option("sz:block_size").is_some());
//!
//! // Construction validates options — typos are errors, never ignored.
//! let options = Options::new().with("sz:block_size", 8u64);
//! let compressor = registry::build("sz", &options).unwrap();
//! assert!(registry::build("sz", &Options::new().with("sz:blok_size", 8u64)).is_err());
//!
//! // Ask FRaZ for a 10:1 ratio within 10%.
//! let config = SearchConfig::new(10.0, 0.1).with_regions(4).with_threads(2);
//! let outcome = FixedRatioSearch::new(compressor, config).run(&dataset);
//! let ratio = outcome.best.compression_ratio;
//! assert!(ratio > 1.0);
//! ```
//!
//! ## Plugging in your own codec
//!
//! Out-of-tree compressors join the same registry at runtime — implement
//! [`Compressor`], describe it with a [`CodecDescriptor`], register a
//! factory, and every FRaZ driver can use it; see
//! [`pressio::registry`] for a complete example.

pub use fraz_core as core;
pub use fraz_data as data;
pub use fraz_lossless as lossless;
pub use fraz_metrics as metrics;
#[cfg(feature = "mgard")]
pub use fraz_mgard as mgard;
pub use fraz_pool as pool;
pub use fraz_pressio as pressio;
pub use fraz_scenarios as scenarios;
pub use fraz_serve as serve;
pub use fraz_store as store;
#[cfg(feature = "sz")]
pub use fraz_sz as sz;
#[cfg(feature = "szx")]
pub use fraz_szx as szx;
pub use fraz_tune as tune;
#[cfg(feature = "zfp")]
pub use fraz_zfp as zfp;

pub use fraz_pressio::{
    BoundKind, CodecDescriptor, Compressor, DimRange, OptionDescriptor, OptionKind, OptionValue,
    Options, PressioError, Registry, RegistryError,
};
