//! Byte-level serialization helpers shared by the codec crates.
//!
//! The lossy codecs serialize small headers (dimensions, error bounds,
//! section lengths) as plain little-endian fields before their entropy-coded
//! payloads.  [`ByteWriter`] and [`ByteReader`] provide that plumbing with
//! explicit error handling instead of panicking slice indexing.

use crate::{CodingError, Result};

/// Append-only little-endian byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with reserved capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed (u32) byte section.
    pub fn put_section(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_bytes(bytes);
    }

    /// Append a length-prefixed (u16) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.put_u16(bytes.len().min(u16::MAX as usize) as u16);
        self.put_bytes(&bytes[..bytes.len().min(u16::MAX as usize)]);
    }
}

/// Sequential little-endian byte reader with bounds checking.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes still available.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Borrow the remaining unread bytes without consuming them.
    pub fn rest(&self) -> &'a [u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodingError::UnexpectedEof);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `f32`.
    pub fn get_f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a length-prefixed (u32) byte section.
    pub fn get_section(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed (u16) UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodingError::InvalidHeader("invalid UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(1024);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_f32(1.5);
        w.put_f64(-2.25e300);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 1024);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap(), -2.25e300);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn section_and_string_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_str("QCLOUDf.log10");
        w.put_section(&[1, 2, 3, 4, 5]);
        w.put_str("");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str().unwrap(), "QCLOUDf.log10");
        assert_eq!(r.get_section().unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(r.get_str().unwrap(), "");
    }

    #[test]
    fn eof_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
        let mut r = ByteReader::new(&[3, 0]);
        // Declares a 3-byte string but provides none.
        assert!(r.get_str().is_err());
    }

    #[test]
    fn position_tracking() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        w.put_u32(2);
        assert_eq!(w.len(), 8);
        assert!(!w.is_empty());
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u32().unwrap();
        assert_eq!(r.position(), 4);
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.rest(), &[2, 0, 0, 0]);
    }
}
