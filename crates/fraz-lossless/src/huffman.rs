//! Canonical Huffman coding over arbitrary `u32` symbol alphabets.
//!
//! The SZ-like codec entropy-codes linear-scaling quantization codes (an
//! alphabet of up to 2^16 symbols, most of which never occur), and the LZSS
//! dictionary coder entropy-codes its literal/length and distance alphabets.
//! Both use this module.
//!
//! Codes are *canonical*: only the code length of each used symbol is stored
//! in the stream; both sides reconstruct identical codes by assigning
//! consecutive codewords to symbols sorted by `(length, symbol)`.  This keeps
//! the table overhead proportional to the number of *distinct* symbols rather
//! than the alphabet size.
//!
//! # Fast paths
//!
//! The hot loops avoid hashing and per-bit work entirely:
//!
//! * frequency counting and the symbol→code map use flat arrays indexed by
//!   symbol whenever the alphabet is dense enough (the common case for both
//!   quantization codes and LZSS token alphabets), falling back to a
//!   `HashMap` only for genuinely sparse/huge alphabets;
//! * [`Decoder::decode_symbol`] is table-driven in the style of DEFLATE
//!   decoders: it peeks a fixed [`TABLE_BITS`]-wide window, resolves codes of
//!   up to that length with one load from a primary lookup table, and only
//!   chains into the canonical per-length walk for the rare longer codes.

use std::collections::BinaryHeap;
use std::collections::HashMap;

use crate::bitio::{BitReader, BitWriter};
use crate::rle;
use crate::{CodingError, Result};

/// Maximum admissible code length.  Huffman depth grows at most
/// logarithmically (base golden ratio) in the total symbol count, so 64 bits
/// covers any realistic input; we still verify it defensively.
pub const MAX_CODE_LEN: u8 = 64;

/// Width of the primary decode lookup table: codes at most this long resolve
/// with a single peek + load.
pub const TABLE_BITS: u32 = 10;

/// Largest symbol value for which the encoder keeps its symbol→code map in a
/// flat array (2^16 covers SZ quantization codes and both LZSS alphabets).
const DENSE_LIMIT: u32 = 1 << 16;

/// Encoding map: symbol → `(length, canonical code)`.
#[derive(Debug, Clone)]
enum CodeStore {
    /// Indexed directly by symbol; `len == 0` marks an uncoded symbol.
    Dense(Vec<(u8, u64)>),
    /// Fallback for sparse alphabets with huge symbol values.
    Sparse(HashMap<u32, (u8, u64)>),
}

impl Default for CodeStore {
    fn default() -> Self {
        CodeStore::Dense(Vec::new())
    }
}

impl CodeStore {
    #[inline]
    fn get(&self, symbol: u32) -> Option<(u8, u64)> {
        match self {
            CodeStore::Dense(table) => match table.get(symbol as usize) {
                Some(&(len, code)) if len != 0 => Some((len, code)),
                _ => None,
            },
            CodeStore::Sparse(map) => map.get(&symbol).copied(),
        }
    }
}

/// A canonical Huffman code book mapping symbols to `(length, code)` pairs.
#[derive(Debug, Clone, Default)]
pub struct CodeBook {
    /// `(symbol, code length)` sorted by `(length, symbol)`.
    lengths: Vec<(u32, u8)>,
    /// Encoding map: symbol -> (length, canonical code value).
    codes: CodeStore,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    /// Tie-break on creation order so the tree shape is deterministic.
    order: u32,
    idx: usize,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to get min-heap behaviour.
        other
            .weight
            .cmp(&self.weight)
            .then_with(|| other.order.cmp(&self.order))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl CodeBook {
    /// Build a code book from `(symbol, frequency)` pairs.  Zero-frequency
    /// entries are ignored.  An empty or all-zero input yields an empty book.
    pub fn from_frequencies(freqs: &[(u32, u64)]) -> Self {
        let mut used: Vec<(u32, u64)> = freqs.iter().copied().filter(|&(_, f)| f > 0).collect();
        used.sort_unstable_by_key(|&(s, _)| s);
        used.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });

        if used.is_empty() {
            return Self::default();
        }
        if used.len() == 1 {
            // A single distinct symbol still needs one bit so the stream has
            // a well-defined length.
            return Self::from_lengths(&[(used[0].0, 1)]).expect("single-symbol book");
        }

        // Standard heap-based Huffman tree construction over `used`.
        #[derive(Clone)]
        struct Node {
            children: Option<(usize, usize)>,
            symbol_slot: Option<usize>,
        }
        let mut nodes: Vec<Node> = used
            .iter()
            .enumerate()
            .map(|(i, _)| Node {
                children: None,
                symbol_slot: Some(i),
            })
            .collect();
        let mut heap = BinaryHeap::with_capacity(used.len());
        for (i, &(_, f)) in used.iter().enumerate() {
            heap.push(HeapNode {
                weight: f,
                order: i as u32,
                idx: i,
            });
        }
        let mut order = used.len() as u32;
        while heap.len() > 1 {
            let a = heap.pop().expect("heap has >=2 nodes");
            let b = heap.pop().expect("heap has >=2 nodes");
            let idx = nodes.len();
            nodes.push(Node {
                children: Some((a.idx, b.idx)),
                symbol_slot: None,
            });
            heap.push(HeapNode {
                weight: a.weight + b.weight,
                order,
                idx,
            });
            order += 1;
        }
        let root = heap.pop().expect("non-empty heap").idx;

        // Depth-first traversal to collect code lengths.
        let mut lengths = vec![0u8; used.len()];
        let mut stack = vec![(root, 0u8)];
        while let Some((idx, depth)) = stack.pop() {
            match nodes[idx].children {
                Some((l, r)) => {
                    stack.push((l, depth + 1));
                    stack.push((r, depth + 1));
                }
                None => {
                    let slot = nodes[idx].symbol_slot.expect("leaf has a symbol");
                    lengths[slot] = depth.max(1);
                }
            }
        }

        let pairs: Vec<(u32, u8)> = used
            .iter()
            .zip(lengths.iter())
            .map(|(&(s, _), &l)| (s, l))
            .collect();
        Self::from_lengths(&pairs).expect("lengths from a Huffman tree are always valid")
    }

    /// Count frequencies in `symbols` and build a code book.
    ///
    /// Counting is done into a flat array indexed by symbol when the largest
    /// symbol is small enough (the common case); the `HashMap` path only
    /// exists for sparse alphabets with huge symbol values.
    pub fn from_symbols(symbols: &[u32]) -> Self {
        if symbols.is_empty() {
            return Self::default();
        }
        let max = symbols.iter().copied().max().expect("non-empty");
        if max < DENSE_LIMIT {
            let mut counts = vec![0u64; max as usize + 1];
            for &s in symbols {
                counts[s as usize] += 1;
            }
            let freqs: Vec<(u32, u64)> = counts
                .iter()
                .enumerate()
                .filter(|&(_, &f)| f > 0)
                .map(|(s, &f)| (s as u32, f))
                .collect();
            Self::from_frequencies(&freqs)
        } else {
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for &s in symbols {
                *counts.entry(s).or_insert(0) += 1;
            }
            let freqs: Vec<(u32, u64)> = counts.into_iter().collect();
            Self::from_frequencies(&freqs)
        }
    }

    /// Build a canonical code book directly from `(symbol, code length)`
    /// pairs.  Returns an error if the lengths over-subscribe the code space
    /// (Kraft inequality violated) or exceed [`MAX_CODE_LEN`].
    pub fn from_lengths(pairs: &[(u32, u8)]) -> Result<Self> {
        let mut lengths: Vec<(u32, u8)> = pairs.iter().copied().filter(|&(_, l)| l > 0).collect();
        if lengths.iter().any(|&(_, l)| l > MAX_CODE_LEN) {
            return Err(CodingError::InvalidCodeTable(format!(
                "code length exceeds {MAX_CODE_LEN}"
            )));
        }
        lengths.sort_unstable_by_key(|&(s, l)| (l, s));

        // Kraft check (in 128-bit arithmetic to avoid overflow).
        let mut kraft: u128 = 0;
        for &(_, l) in &lengths {
            kraft += 1u128 << (MAX_CODE_LEN - l);
        }
        if kraft > 1u128 << MAX_CODE_LEN {
            return Err(CodingError::InvalidCodeTable(
                "code lengths violate the Kraft inequality".to_string(),
            ));
        }

        let max_symbol = lengths.iter().map(|&(s, _)| s).max().unwrap_or(0);
        let mut codes = if lengths.is_empty() || max_symbol < DENSE_LIMIT {
            CodeStore::Dense(vec![
                (0u8, 0u64);
                lengths.len().min(1) * (max_symbol as usize + 1)
            ])
        } else {
            CodeStore::Sparse(HashMap::with_capacity(lengths.len()))
        };
        let mut code: u64 = 0;
        let mut prev_len: u8 = 0;
        for &(sym, len) in &lengths {
            if prev_len != 0 {
                code = (code + 1) << (len - prev_len);
            } else {
                code <<= len - prev_len;
            }
            prev_len = len;
            match &mut codes {
                CodeStore::Dense(table) => table[sym as usize] = (len, code),
                CodeStore::Sparse(map) => {
                    map.insert(sym, (len, code));
                }
            }
        }

        Ok(Self { lengths, codes })
    }

    /// True if no symbol has a code (empty input).
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Number of distinct coded symbols.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// `(length, canonical code)` for `symbol`, if coded.
    #[inline]
    pub fn lookup(&self, symbol: u32) -> Option<(u8, u64)> {
        self.codes.get(symbol)
    }

    /// Code length for `symbol`, if coded.
    pub fn code_len(&self, symbol: u32) -> Option<u8> {
        self.lookup(symbol).map(|(l, _)| l)
    }

    /// Expected encoded size in bits for the given `(symbol, frequency)`
    /// histogram (excluding the table).
    pub fn expected_bits(&self, freqs: &[(u32, u64)]) -> Option<u64> {
        let mut total = 0u64;
        for &(s, f) in freqs {
            if f == 0 {
                continue;
            }
            total += f * self.code_len(s)? as u64;
        }
        Some(total)
    }

    /// Append the code for `symbol` to `w`.
    #[inline]
    pub fn encode_symbol(&self, symbol: u32, w: &mut BitWriter) -> Result<()> {
        match self.codes.get(symbol) {
            Some((len, code)) => {
                w.write_bits(code, len as u32);
                Ok(())
            }
            None => Err(CodingError::InvalidSymbol(symbol)),
        }
    }

    /// Serialize the table (distinct symbols and their code lengths).
    ///
    /// Layout: varint count, then for each entry a varint symbol delta
    /// (relative to the previous symbol in ascending-symbol order) and a
    /// 6-bit code length.
    pub fn write_table(&self, w: &mut BitWriter) {
        let mut by_symbol = self.lengths.clone();
        by_symbol.sort_unstable_by_key(|&(s, _)| s);
        rle::write_uvarint(w, by_symbol.len() as u64);
        let mut prev: u64 = 0;
        for &(sym, len) in &by_symbol {
            rle::write_uvarint(w, sym as u64 - prev);
            w.write_bits(len as u64, 6);
            prev = sym as u64;
        }
    }

    /// Deserialize a table produced by [`CodeBook::write_table`].
    pub fn read_table(r: &mut BitReader<'_>) -> Result<Self> {
        let count = rle::read_uvarint(r)? as usize;
        // Guard against absurd counts from corrupted streams.
        if count > (1 << 28) {
            return Err(CodingError::InvalidCodeTable(format!(
                "implausible symbol count {count}"
            )));
        }
        let mut pairs = Vec::with_capacity(count);
        let mut prev: u64 = 0;
        for _ in 0..count {
            let delta = rle::read_uvarint(r)?;
            let len = r.read_bits(6)? as u8;
            let sym = prev + delta;
            if sym > u32::MAX as u64 {
                return Err(CodingError::InvalidCodeTable("symbol overflow".into()));
            }
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CodingError::InvalidCodeTable(format!(
                    "invalid code length {len}"
                )));
            }
            pairs.push((sym as u32, len));
            prev = sym;
        }
        Self::from_lengths(&pairs)
    }

    /// Build a decoder for this code book.
    pub fn decoder(&self) -> Decoder {
        Decoder::new(self)
    }
}

/// Primary-table entry: the symbol and its code length, or `len == 0` for
/// windows whose prefix is either invalid or belongs to a code longer than
/// the table width.
#[derive(Debug, Clone, Copy)]
struct TableEntry {
    sym: u32,
    len: u8,
}

/// Canonical Huffman decoder: a [`TABLE_BITS`]-wide primary lookup table for
/// the short codes that dominate real streams, chained to per-length
/// first-code tables for the rare long codes.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// For each length `l`, the first canonical code of that length.
    first_code: Vec<u64>,
    /// For each length `l`, index into `symbols` of the first symbol with
    /// that length.
    first_index: Vec<usize>,
    /// Number of symbols at each length.
    count: Vec<usize>,
    /// Symbols sorted by `(length, symbol)` — canonical order.
    symbols: Vec<u32>,
    max_len: u8,
    /// Primary lookup table, `1 << table_bits` entries.
    table: Vec<TableEntry>,
    /// Actual table width: `min(max_len, TABLE_BITS)`.
    table_bits: u32,
}

impl Decoder {
    fn new(book: &CodeBook) -> Self {
        let max_len = book.lengths.iter().map(|&(_, l)| l).max().unwrap_or(0);
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0usize; max_len as usize + 2];
        let mut count = vec![0usize; max_len as usize + 2];
        let symbols: Vec<u32> = book.lengths.iter().map(|&(s, _)| s).collect();
        for &(_, l) in &book.lengths {
            count[l as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len as usize {
            code <<= 1;
            first_code[l] = code;
            first_index[l] = index;
            code += count[l] as u64;
            index += count[l];
        }

        // Primary table: every `table_bits`-wide window whose prefix is a
        // code of length <= table_bits maps straight to its symbol.
        let table_bits = (max_len as u32).min(TABLE_BITS);
        let mut table = vec![TableEntry { sym: 0, len: 0 }; 1usize << table_bits];
        let mut canon_code = 0u64;
        let mut prev_len = 0u8;
        for &(sym, len) in &book.lengths {
            if prev_len != 0 {
                canon_code = (canon_code + 1) << (len - prev_len);
            }
            prev_len = len;
            if len as u32 <= table_bits {
                let shift = table_bits - len as u32;
                let base = (canon_code << shift) as usize;
                for slot in &mut table[base..base + (1usize << shift)] {
                    *slot = TableEntry { sym, len };
                }
            }
        }

        Self {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
            table,
            table_bits,
        }
    }

    /// Decode one symbol from `r`: one peek + one table load for codes of up
    /// to [`TABLE_BITS`] bits, falling back to the canonical per-length walk
    /// for longer codes.
    #[inline]
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<u32> {
        if self.symbols.is_empty() {
            return Err(CodingError::InvalidCodeTable("empty code book".into()));
        }
        let window = r.peek_bits(self.table_bits) as usize;
        let entry = self.table[window];
        if entry.len != 0 {
            if entry.len as usize > r.bits_remaining() {
                return Err(CodingError::UnexpectedEof);
            }
            r.consume(entry.len as u32);
            return Ok(entry.sym);
        }
        self.decode_symbol_slow(r)
    }

    /// Bit-at-a-time canonical walk for codes longer than the primary table
    /// (and for invalid prefixes, which fall off the end).
    #[cold]
    fn decode_symbol_slow(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u64;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | (r.read_bit()? as u64);
            let n = self.count[len];
            if n > 0 {
                let first = self.first_code[len];
                if code < first + n as u64 && code >= first {
                    let offset = (code - first) as usize;
                    return Ok(self.symbols[self.first_index[len] + offset]);
                }
            }
        }
        Err(CodingError::InvalidCodeTable(
            "bit pattern matches no code".into(),
        ))
    }

    /// Decode exactly `n` symbols.
    pub fn decode_all(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.decode_symbol(r)?);
        }
        Ok(out)
    }
}

/// Encode a symbol sequence into a self-contained byte buffer
/// (count + table + payload).
pub fn encode_symbols(symbols: &[u32]) -> Vec<u8> {
    let book = CodeBook::from_symbols(symbols);
    let mut w = BitWriter::with_capacity(symbols.len() / 2 + 64);
    rle::write_uvarint(&mut w, symbols.len() as u64);
    book.write_table(&mut w);
    for &s in symbols {
        book.encode_symbol(s, &mut w)
            .expect("book built from these exact symbols");
    }
    w.into_bytes()
}

/// Decode a buffer produced by [`encode_symbols`].
pub fn decode_symbols(data: &[u8]) -> Result<Vec<u32>> {
    let mut r = BitReader::new(data);
    let n = rle::read_uvarint(&mut r)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let book = CodeBook::read_table(&mut r)?;
    let decoder = book.decoder();
    decoder.decode_all(&mut r, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let packed = encode_symbols(&[]);
        assert_eq!(decode_symbols(&packed).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn single_symbol_roundtrip() {
        let symbols = vec![7u32; 1000];
        let packed = encode_symbols(&symbols);
        assert!(packed.len() < 200);
        assert_eq!(decode_symbols(&packed).unwrap(), symbols);
    }

    #[test]
    fn skewed_distribution_roundtrip() {
        let mut symbols = Vec::new();
        for i in 0..5000u32 {
            // Heavily skewed toward symbol 512 (like SZ quantization codes).
            let s = match i % 100 {
                0..=79 => 512,
                80..=89 => 511,
                90..=95 => 513,
                96..=98 => 500 + (i % 30),
                _ => i % 1024,
            };
            symbols.push(s);
        }
        let packed = encode_symbols(&symbols);
        // Entropy is far below 10 bits/symbol so this must compress well
        // against the 4-byte raw representation.
        assert!(packed.len() < symbols.len());
        assert_eq!(decode_symbols(&packed).unwrap(), symbols);
    }

    #[test]
    fn large_sparse_alphabet_roundtrip() {
        let symbols: Vec<u32> = (0..3000u32).map(|i| (i * 7919) % 60000).collect();
        let packed = encode_symbols(&symbols);
        assert_eq!(decode_symbols(&packed).unwrap(), symbols);
    }

    #[test]
    fn huge_symbol_values_use_the_sparse_store() {
        // Symbols far above DENSE_LIMIT: the flat-array store would need
        // gigabytes, so the sparse fallback must kick in and still roundtrip.
        let symbols: Vec<u32> = (0..500u32)
            .map(|i| u32::MAX - (i % 37) * 1_000_000)
            .collect();
        let packed = encode_symbols(&symbols);
        assert_eq!(decode_symbols(&packed).unwrap(), symbols);
    }

    #[test]
    fn expected_bits_matches_actual_payload() {
        let symbols: Vec<u32> = (0..2048u32).map(|i| i % 17).collect();
        let book = CodeBook::from_symbols(&symbols);
        let mut freqs: HashMap<u32, u64> = HashMap::new();
        for &s in &symbols {
            *freqs.entry(s).or_insert(0) += 1;
        }
        let freqs: Vec<(u32, u64)> = freqs.into_iter().collect();
        let expected = book.expected_bits(&freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode_symbol(s, &mut w).unwrap();
        }
        assert_eq!(expected as usize, w.bit_len());
    }

    #[test]
    fn unknown_symbol_is_rejected() {
        let book = CodeBook::from_symbols(&[1, 2, 3]);
        let mut w = BitWriter::new();
        assert_eq!(
            book.encode_symbol(42, &mut w),
            Err(CodingError::InvalidSymbol(42))
        );
    }

    #[test]
    fn kraft_violation_is_rejected() {
        // Three symbols with length 1 cannot coexist.
        let res = CodeBook::from_lengths(&[(0, 1), (1, 1), (2, 1)]);
        assert!(matches!(res, Err(CodingError::InvalidCodeTable(_))));
    }

    #[test]
    fn table_roundtrip_preserves_codes() {
        let symbols: Vec<u32> = (0..500u32).map(|i| i % 37).collect();
        let book = CodeBook::from_symbols(&symbols);
        let mut w = BitWriter::new();
        book.write_table(&mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let book2 = CodeBook::read_table(&mut r).unwrap();
        assert_eq!(book.len(), book2.len());
        for s in 0..37u32 {
            assert_eq!(book.code_len(s), book2.code_len(s));
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let symbols: Vec<u32> = (0..1000u32).map(|i| i % 13).collect();
        let packed = encode_symbols(&symbols);
        let truncated = &packed[..packed.len() - 10];
        assert!(decode_symbols(truncated).is_err());
    }

    #[test]
    fn two_symbol_codes_are_one_bit() {
        let book = CodeBook::from_symbols(&[0, 0, 0, 1]);
        assert_eq!(book.code_len(0), Some(1));
        assert_eq!(book.code_len(1), Some(1));
    }

    #[test]
    fn long_codes_chain_past_the_primary_table() {
        // An exponential frequency ladder forces code lengths well beyond
        // TABLE_BITS, exercising the slow-path chaining.
        let freqs: Vec<(u32, u64)> = (0..24u32).map(|s| (s, 1u64 << s)).collect();
        let book = CodeBook::from_frequencies(&freqs);
        let max_len = (0..24u32)
            .filter_map(|s| book.code_len(s))
            .max()
            .unwrap_or(0);
        assert!(
            max_len as u32 > TABLE_BITS,
            "ladder should exceed the table width, got {max_len}"
        );
        let mut w = BitWriter::new();
        let symbols: Vec<u32> = (0..24u32).chain((0..24).rev()).collect();
        for &s in &symbols {
            book.encode_symbol(s, &mut w).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoder = book.decoder();
        for &s in &symbols {
            assert_eq!(decoder.decode_symbol(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 300).collect();
        let book = CodeBook::from_symbols(&symbols);
        let mut codes: Vec<(u8, u64)> = (0..300u32).filter_map(|s| book.lookup(s)).collect();
        codes.sort();
        for i in 0..codes.len() {
            for j in (i + 1)..codes.len() {
                let (l1, c1) = codes[i];
                let (l2, c2) = codes[j];
                if l1 == l2 {
                    assert_ne!(c1, c2);
                } else {
                    // No shorter code is a prefix of a longer one.
                    assert_ne!(c2 >> (l2 - l1), c1, "prefix violation");
                }
            }
        }
    }
}
