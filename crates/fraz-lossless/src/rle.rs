//! Variable-length integers, zig-zag mapping and run-length helpers.
//!
//! These small utilities are shared by the Huffman table serializer, the LZSS
//! container and the lossy codec crates (which store block headers and
//! unpredictable-value indices with them).

use crate::bitio::{BitReader, BitWriter};
use crate::Result;

/// Write an unsigned LEB128-style varint: 7 value bits per group, MSB-first
/// groups, each prefixed by a continuation bit.
pub fn write_uvarint(w: &mut BitWriter, mut value: u64) {
    loop {
        let group = (value & 0x7f) as u64;
        value >>= 7;
        let more = value != 0;
        w.write_bit(more);
        w.write_bits(group, 7);
        if !more {
            break;
        }
    }
}

/// Read a varint written by [`write_uvarint`].
pub fn read_uvarint(r: &mut BitReader<'_>) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let more = r.read_bit()?;
        let group = r.read_bits(7)?;
        value |= group << shift;
        shift += 7;
        if !more || shift >= 64 {
            break;
        }
    }
    Ok(value)
}

/// Map a signed integer to an unsigned one so small magnitudes stay small
/// (0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...).
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Write a signed varint (zig-zag + [`write_uvarint`]).
pub fn write_ivarint(w: &mut BitWriter, value: i64) {
    write_uvarint(w, zigzag_encode(value));
}

/// Read a signed varint written by [`write_ivarint`].
pub fn read_ivarint(r: &mut BitReader<'_>) -> Result<i64> {
    Ok(zigzag_decode(read_uvarint(r)?))
}

/// Run-length encode a `u32` sequence as `(value, run length)` pairs.
pub fn rle_encode(values: &[u32]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut iter = values.iter();
    if let Some(&first) = iter.next() {
        let mut current = first;
        let mut run = 1u32;
        for &v in iter {
            if v == current && run < u32::MAX {
                run += 1;
            } else {
                out.push((current, run));
                current = v;
                run = 1;
            }
        }
        out.push((current, run));
    }
    out
}

/// Expand `(value, run length)` pairs back into the original sequence.
pub fn rle_decode(pairs: &[(u32, u32)]) -> Vec<u32> {
    let total: usize = pairs.iter().map(|&(_, r)| r as usize).sum();
    let mut out = Vec::with_capacity(total);
    for &(v, r) in pairs {
        out.extend(std::iter::repeat(v).take(r as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut w = BitWriter::new();
        for &v in &values {
            write_uvarint(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_uvarint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn ivarint_roundtrip() {
        let values = [
            0i64,
            -1,
            1,
            -64,
            64,
            i32::MIN as i64,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ];
        let mut w = BitWriter::new();
        for &v in &values {
            write_ivarint(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(read_ivarint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_is_order_preserving_in_magnitude() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in [-1000i64, -5, 0, 5, 1000, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn small_varints_are_one_byte_group() {
        let mut w = BitWriter::new();
        write_uvarint(&mut w, 100);
        assert_eq!(w.bit_len(), 8);
    }

    #[test]
    fn rle_roundtrip() {
        let values = vec![5u32, 5, 5, 1, 2, 2, 2, 2, 9];
        let pairs = rle_encode(&values);
        assert_eq!(pairs, vec![(5, 3), (1, 1), (2, 4), (9, 1)]);
        assert_eq!(rle_decode(&pairs), values);
    }

    #[test]
    fn rle_empty() {
        assert!(rle_encode(&[]).is_empty());
        assert!(rle_decode(&[]).is_empty());
    }
}
