//! MSB-first bit-level readers and writers.
//!
//! Every entropy-coding stage in the workspace (Huffman codes in the SZ-like
//! codec, the embedded bit-plane coder in the ZFP-like codec, the dictionary
//! coder in this crate) packs variable-width fields into a byte stream.  The
//! two types here provide that plumbing with a single convention:
//! **most-significant-bit first within each byte**, bytes appended in order.

use crate::{CodingError, Result};

/// Accumulates bits MSB-first into a growable byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits still unused in the final byte of `buf` (0..=7). 0 means the last
    /// byte is full (or the buffer is empty).
    bit_pos: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with `bytes` of pre-reserved capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            bit_pos: 0,
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + (8 - self.bit_pos) as usize
        }
    }

    /// Append a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.buf.push(0);
            self.bit_pos = 8;
        }
        self.bit_pos -= 1;
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << self.bit_pos;
        }
        if self.bit_pos == 0 {
            // Byte complete; next write_bit pushes a new byte.
        }
    }

    /// Append the lowest `nbits` bits of `value`, most significant first.
    ///
    /// `nbits` may be 0 (no-op) up to 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        for i in (0..nbits).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Append `count` copies of `bit`.
    pub fn write_run(&mut self, bit: bool, count: usize) {
        for _ in 0..count {
            self.write_bit(bit);
        }
    }

    /// Align to the next byte boundary by writing zero bits.
    pub fn align_byte(&mut self) {
        if self.bit_pos != 0 {
            self.bit_pos = 0;
        }
    }

    /// Finish writing and return the backing byte vector.  Any partial final
    /// byte is zero-padded on the low (least significant) side.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far (final byte may be partial).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte to consume.
    byte_pos: usize,
    /// Bits remaining in the current byte (8 = untouched, 0 = exhausted).
    bits_left: u8,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice for bit-level reading.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            byte_pos: 0,
            bits_left: 8,
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        if self.byte_pos >= self.data.len() {
            self.data.len() * 8
        } else {
            self.byte_pos * 8 + (8 - self.bits_left) as usize
        }
    }

    /// Number of whole bits still available.
    pub fn bits_remaining(&self) -> usize {
        self.data.len() * 8 - self.bits_consumed()
    }

    /// Read one bit, returning `Err(UnexpectedEof)` past the end.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.byte_pos >= self.data.len() {
            return Err(CodingError::UnexpectedEof);
        }
        self.bits_left -= 1;
        let bit = (self.data[self.byte_pos] >> self.bits_left) & 1 == 1;
        if self.bits_left == 0 {
            self.byte_pos += 1;
            self.bits_left = 8;
        }
        Ok(bit)
    }

    /// Read `nbits` bits (MSB first) into the low bits of a `u64`.
    #[inline]
    pub fn read_bits(&mut self, nbits: u32) -> Result<u64> {
        debug_assert!(nbits <= 64);
        let mut value = 0u64;
        for _ in 0..nbits {
            value = (value << 1) | (self.read_bit()? as u64);
        }
        Ok(value)
    }

    /// Skip to the next byte boundary (no-op if already aligned).
    pub fn align_byte(&mut self) {
        if self.bits_left != 8 {
            self.byte_pos += 1;
            self.bits_left = 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [
            true, false, true, true, false, false, true, false, true, true, true,
        ];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_fields_roundtrip() {
        let fields: &[(u64, u32)] = &[
            (0, 1),
            (1, 1),
            (0b101, 3),
            (0xdead_beef, 32),
            (0x1234_5678_9abc_def0, 64),
            (0, 0),
            (7, 5),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            assert_eq!(r.read_bits(n).unwrap(), v, "field {v}:{n}");
        }
    }

    #[test]
    fn eof_is_reported() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0b1010_0000);
        assert_eq!(r.read_bit(), Err(CodingError::UnexpectedEof));
    }

    #[test]
    fn alignment() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_byte();
        w.write_bits(0xab, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xab]);
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xab);
    }

    #[test]
    fn bit_accounting() {
        let mut w = BitWriter::new();
        w.write_run(true, 13);
        assert_eq!(w.bit_len(), 13);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits_remaining(), 16);
        r.read_bits(13).unwrap();
        assert_eq!(r.bits_consumed(), 13);
        assert_eq!(r.bits_remaining(), 3);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1100_0001, 8);
        assert_eq!(w.into_bytes(), vec![0b1100_0001]);
    }
}
