//! MSB-first bit-level readers and writers.
//!
//! Every entropy-coding stage in the workspace (Huffman codes in the SZ-like
//! codec, the embedded bit-plane coder in the ZFP-like codec, the dictionary
//! coder in this crate) packs variable-width fields into a byte stream.  The
//! two types here provide that plumbing with a single convention:
//! **most-significant-bit first within each byte**, bytes appended in order.
//!
//! Both sides work a *word* at a time rather than a bit at a time.  The
//! writer keeps a 64-bit accumulator and spills whole bytes; the reader keeps
//! an absolute bit cursor and serves every request from one unaligned 8-byte
//! load, which also gives the decoder a branch-light
//! [`BitReader::peek_bits`] / [`BitReader::consume`] pair: the table-driven
//! Huffman decoder peeks a fixed-width window, looks the symbol up, and
//! consumes only the bits the code actually used.  The byte layout is
//! identical to the historical per-bit implementation, so existing payloads
//! decode unchanged.

use crate::{CodingError, Result};

/// Maximum width [`BitReader::peek_bits`] supports (one word minus the worst
/// intra-byte misalignment of 7 bits).
pub const MAX_PEEK_BITS: u32 = 57;

/// Accumulates bits MSB-first into a growable byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits: the low `nbits` bits of `acc` have been written but not
    /// yet spilled to `buf` (most significant pending bit first).  Between
    /// public calls `nbits` is at most 7.
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a writer with `bytes` of pre-reserved capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Append up to 32 bits.  `self.nbits <= 7` on entry, so the shifted
    /// accumulator never overflows 64 bits.
    #[inline]
    fn push_small(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 32 && self.nbits <= 7);
        if nbits == 0 {
            return;
        }
        let value = value & (u64::MAX >> (64 - nbits));
        self.acc = (self.acc << nbits) | value;
        self.nbits += nbits;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.buf.push((self.acc >> self.nbits) as u8);
        }
    }

    /// Append a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.push_small(bit as u64, 1);
    }

    /// Append the lowest `nbits` bits of `value`, most significant first.
    ///
    /// `nbits` may be 0 (no-op) up to 64.
    #[inline]
    pub fn write_bits(&mut self, value: u64, nbits: u32) {
        debug_assert!(nbits <= 64);
        if nbits > 32 {
            self.push_small(value >> 32, nbits - 32);
            self.push_small(value & 0xFFFF_FFFF, 32);
        } else {
            self.push_small(value, nbits);
        }
    }

    /// Append `count` copies of `bit`.
    pub fn write_run(&mut self, bit: bool, count: usize) {
        let fill = if bit { u64::MAX } else { 0 };
        let mut remaining = count;
        while remaining > 0 {
            let chunk = remaining.min(32) as u32;
            self.push_small(fill, chunk);
            remaining -= chunk as usize;
        }
    }

    /// Align to the next byte boundary by writing zero bits.
    pub fn align_byte(&mut self) {
        if self.nbits != 0 {
            self.buf.push((self.acc << (8 - self.nbits)) as u8);
            self.nbits = 0;
        }
    }

    /// Finish writing and return the backing byte vector.  Any partial final
    /// byte is zero-padded on the low (least significant) side.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.buf
    }

    /// Borrow the whole bytes spilled so far (up to 7 pending bits are still
    /// in the accumulator and not visible here).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
///
/// Sequential reads ([`read_bit`](Self::read_bit) /
/// [`read_bits`](Self::read_bits)) report [`CodingError::UnexpectedEof`] past
/// the end.  The speculative pair [`peek_bits`](Self::peek_bits) /
/// [`consume`](Self::consume) instead zero-pads past the end, which lets a
/// table decoder look at a fixed window near the end of the stream and then
/// validate the *actual* code length against
/// [`bits_remaining`](Self::bits_remaining).
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute cursor: index of the next unread bit.
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wrap a byte slice for bit-level reading.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, bit_pos: 0 }
    }

    /// Number of bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.bit_pos
    }

    /// Number of whole bits still available.
    pub fn bits_remaining(&self) -> usize {
        self.data.len() * 8 - self.bit_pos
    }

    /// The next (up to 57) bits of the stream, MSB-aligned into the *top* of
    /// the returned word; bits past the end of the data read as zero.
    #[inline]
    fn peek_word(&self) -> u64 {
        let byte = self.bit_pos >> 3;
        let word = if byte + 8 <= self.data.len() {
            u64::from_be_bytes(self.data[byte..byte + 8].try_into().expect("8-byte slice"))
        } else {
            let mut tmp = [0u8; 8];
            if byte < self.data.len() {
                tmp[..self.data.len() - byte].copy_from_slice(&self.data[byte..]);
            }
            u64::from_be_bytes(tmp)
        };
        word << (self.bit_pos & 7)
    }

    /// Look at the next `nbits` (0..=57) bits without consuming them,
    /// returned in the low bits of a `u64`.  Bits past the end of the stream
    /// read as zero — callers that may overrun must validate the consumed
    /// length against [`bits_remaining`](Self::bits_remaining).
    #[inline]
    pub fn peek_bits(&self, nbits: u32) -> u64 {
        debug_assert!(nbits <= MAX_PEEK_BITS);
        if nbits == 0 {
            return 0;
        }
        self.peek_word() >> (64 - nbits)
    }

    /// Advance the cursor by `nbits` previously peeked bits.
    #[inline]
    pub fn consume(&mut self, nbits: u32) {
        debug_assert!(nbits as usize <= self.bits_remaining());
        self.bit_pos += nbits as usize;
    }

    /// Read one bit, returning `Err(UnexpectedEof)` past the end.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.bit_pos >> 3;
        if byte >= self.data.len() {
            return Err(CodingError::UnexpectedEof);
        }
        let bit = (self.data[byte] >> (7 - (self.bit_pos & 7))) & 1 == 1;
        self.bit_pos += 1;
        Ok(bit)
    }

    /// Read `nbits` bits (MSB first) into the low bits of a `u64`.
    #[inline]
    pub fn read_bits(&mut self, nbits: u32) -> Result<u64> {
        debug_assert!(nbits <= 64);
        if nbits as usize > self.bits_remaining() {
            return Err(CodingError::UnexpectedEof);
        }
        if nbits == 0 {
            return Ok(0);
        }
        if nbits <= MAX_PEEK_BITS {
            let v = self.peek_word() >> (64 - nbits);
            self.bit_pos += nbits as usize;
            Ok(v)
        } else {
            // 58..=64 bits: split into two in-range reads.
            let hi_bits = nbits - 32;
            let hi = self.peek_word() >> (64 - hi_bits);
            self.bit_pos += hi_bits as usize;
            let lo = self.peek_word() >> 32;
            self.bit_pos += 32;
            Ok((hi << 32) | lo)
        }
    }

    /// Skip to the next byte boundary (no-op if already aligned).
    pub fn align_byte(&mut self) {
        self.bit_pos = (self.bit_pos + 7) & !7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [
            true, false, true, true, false, false, true, false, true, true, true,
        ];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_fields_roundtrip() {
        let fields: &[(u64, u32)] = &[
            (0, 1),
            (1, 1),
            (0b101, 3),
            (0xdead_beef, 32),
            (0x1234_5678_9abc_def0, 64),
            (0, 0),
            (7, 5),
            (u64::MAX, 63),
            (u64::MAX, 58),
        ];
        let mut w = BitWriter::new();
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            assert_eq!(r.read_bits(n).unwrap(), masked, "field {v}:{n}");
        }
    }

    #[test]
    fn eof_is_reported() {
        let mut w = BitWriter::new();
        w.write_bits(0b1010, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0b1010_0000);
        assert_eq!(r.read_bit(), Err(CodingError::UnexpectedEof));
    }

    #[test]
    fn alignment() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_byte();
        w.write_bits(0xab, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000, 0xab]);
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xab);
    }

    #[test]
    fn bit_accounting() {
        let mut w = BitWriter::new();
        w.write_run(true, 13);
        assert_eq!(w.bit_len(), 13);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits_remaining(), 16);
        r.read_bits(13).unwrap();
        assert_eq!(r.bits_consumed(), 13);
        assert_eq!(r.bits_remaining(), 3);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1100_0001, 8);
        assert_eq!(w.into_bytes(), vec![0b1100_0001]);
    }

    #[test]
    fn long_runs_match_per_bit_layout() {
        // write_run spills in 32-bit chunks; the byte layout must match what
        // bit-at-a-time writing would have produced.
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_run(false, 70);
        w.write_run(true, 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        for _ in 0..70 {
            assert!(!r.read_bit().unwrap());
        }
        for _ in 0..9 {
            assert!(r.read_bit().unwrap());
        }
    }

    #[test]
    fn peek_and_consume_mirror_reads() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011_0110_0101, 12);
        w.write_bits(0x3FFF, 14);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(12), 0b1011_0110_0101);
        // Peeking is idempotent.
        assert_eq!(r.peek_bits(12), 0b1011_0110_0101);
        r.consume(5);
        assert_eq!(r.peek_bits(7), 0b110_0101);
        r.consume(7);
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
    }

    #[test]
    fn peek_past_end_is_zero_padded() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(12), 0b1111_1111_0000);
        r.consume(8);
        assert_eq!(r.bits_remaining(), 0);
        assert_eq!(r.peek_bits(10), 0);
    }

    #[test]
    fn upper_bit_widths_roundtrip() {
        for n in 55..=64u32 {
            let v = 0xA5A5_A5A5_A5A5_A5A5u64 & if n == 64 { u64::MAX } else { (1 << n) - 1 };
            let mut w = BitWriter::new();
            w.write_bits(0b101, 3); // misalign
            w.write_bits(v, n);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(3).unwrap(), 0b101);
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }
}
