//! Lossless coding substrate for FRaZ-rs.
//!
//! The SZ-like and MGARD-like compressors in this workspace finish with a
//! byte-level *dictionary encoder* stage, exactly as the original codecs
//! finish with Gzip or Zstd.  This crate provides that substrate from
//! scratch:
//!
//! * [`bitio`] — MSB-first bit readers and writers used by every entropy
//!   coding stage in the workspace.
//! * [`huffman`] — canonical, length-limited Huffman coding over arbitrary
//!   `u32` symbol alphabets (used both for SZ quantization codes and for the
//!   literal/length/distance alphabets of the dictionary coder).
//! * [`lzss`] — an LZSS (LZ77 with flags) dictionary coder with hash-chain
//!   match search and lazy matching, whose token stream is entropy coded with
//!   the canonical Huffman coder.  Functionally this plays the role Zstd/Gzip
//!   play in SZ's stage 4.
//! * [`rle`] — zig-zag varints and run-length helpers shared by the codecs.
//!
//! The convenience functions [`compress`] and [`decompress`] bundle the LZSS
//! stage behind a stable framed format with a header, so callers can treat
//! this crate as a drop-in "byte squeezer".
//!
//! # Example
//!
//! ```
//! let data: Vec<u8> = (0..10_000u32).map(|i| (i % 97) as u8).collect();
//! let packed = fraz_lossless::compress(&data);
//! assert!(packed.len() < data.len());
//! let restored = fraz_lossless::decompress(&packed).unwrap();
//! assert_eq!(restored, data);
//! ```

pub mod bitio;
pub mod bytesio;
pub mod huffman;
pub mod lzss;
pub mod rle;

use std::fmt;

/// Errors produced while decoding a lossless stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The input ended before a complete symbol or header could be read.
    UnexpectedEof,
    /// A header field contained an invalid or unsupported value.
    InvalidHeader(String),
    /// A symbol outside the declared alphabet was encountered.
    InvalidSymbol(u32),
    /// A back-reference pointed before the start of the output.
    InvalidBackReference { distance: usize, produced: usize },
    /// The declared decoded length does not match what was produced.
    LengthMismatch { expected: usize, actual: usize },
    /// A Huffman code table could not be reconstructed.
    InvalidCodeTable(String),
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodingError::InvalidHeader(msg) => write!(f, "invalid header: {msg}"),
            CodingError::InvalidSymbol(sym) => write!(f, "invalid symbol {sym}"),
            CodingError::InvalidBackReference { distance, produced } => write!(
                f,
                "back-reference distance {distance} exceeds produced output {produced}"
            ),
            CodingError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "decoded length {actual} does not match declared {expected}"
                )
            }
            CodingError::InvalidCodeTable(msg) => write!(f, "invalid Huffman code table: {msg}"),
        }
    }
}

impl std::error::Error for CodingError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodingError>;

/// Magic marker for the framed LZSS container produced by [`compress`].
const FRAME_MAGIC: u32 = 0x465A_4C31; // "FZL1"

std::thread_local! {
    /// One reusable [`lzss::LzssEncoder`] per thread.  The fixed-ratio
    /// search loop calls [`compress`] once per evaluated error bound from
    /// the shared work-stealing pool, so this amounts to one hash-chain /
    /// token scratch per pool worker instead of a fresh ~160 KB allocation
    /// per compressor call.
    static FRAME_ENCODER: std::cell::RefCell<lzss::LzssEncoder> =
        std::cell::RefCell::new(lzss::LzssEncoder::new(lzss::LzssConfig::default()));
}

/// Compress an arbitrary byte slice with the LZSS + Huffman dictionary coder.
///
/// The output is self-describing (magic, original length, payload) and can be
/// restored with [`decompress`].  Incompressible data grows by a small
/// constant number of header bytes plus a bounded per-block overhead.
///
/// Uses a per-thread reusable [`lzss::LzssEncoder`], so hot loops (the FRaZ
/// search evaluates one compression per candidate error bound) pay no
/// per-call scratch allocations.
pub fn compress(data: &[u8]) -> Vec<u8> {
    FRAME_ENCODER.with(|encoder| {
        let payload = encoder.borrow_mut().compress(data);
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    })
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < 12 {
        return Err(CodingError::UnexpectedEof);
    }
    let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    if magic != FRAME_MAGIC {
        return Err(CodingError::InvalidHeader(format!(
            "bad magic 0x{magic:08x}, expected 0x{FRAME_MAGIC:08x}"
        )));
    }
    let len = u64::from_le_bytes([
        data[4], data[5], data[6], data[7], data[8], data[9], data[10], data[11],
    ]) as usize;
    let decoded = lzss::decompress(&data[12..], len)?;
    if decoded.len() != len {
        return Err(CodingError::LengthMismatch {
            expected: len,
            actual: decoded.len(),
        });
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty() {
        let packed = compress(&[]);
        assert_eq!(decompress(&packed).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_single_byte() {
        let packed = compress(&[42]);
        assert_eq!(decompress(&packed).unwrap(), vec![42]);
    }

    #[test]
    fn roundtrip_repetitive() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".repeat(100);
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 4);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut packed = compress(b"hello world hello world");
        packed[0] ^= 0xff;
        assert!(matches!(
            decompress(&packed),
            Err(CodingError::InvalidHeader(_))
        ));
    }

    #[test]
    fn rejects_truncated_stream() {
        let packed = compress(b"some reasonably long input string for truncation");
        let truncated = &packed[..packed.len() / 2];
        assert!(decompress(truncated).is_err());
    }

    #[test]
    fn rejects_too_short_input() {
        assert_eq!(decompress(&[1, 2, 3]), Err(CodingError::UnexpectedEof));
    }

    #[test]
    fn error_display_is_informative() {
        let err = CodingError::InvalidBackReference {
            distance: 10,
            produced: 5,
        };
        assert!(err.to_string().contains("back-reference"));
        assert!(CodingError::UnexpectedEof
            .to_string()
            .contains("unexpected"));
    }
}
