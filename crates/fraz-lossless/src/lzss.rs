//! LZSS dictionary coder with hash-chain match search and Huffman-coded
//! tokens.
//!
//! This module plays the role that Gzip/Zstd play as SZ's fourth stage: a
//! byte-level dictionary encoder applied to the output of the entropy stage.
//! The design follows the classic DEFLATE recipe, simplified where the full
//! generality is not needed:
//!
//! * a sliding window of [`LzssConfig::window_size`] bytes,
//! * hash-chain match search over 4-byte anchors with lazy (one-step)
//!   matching,
//! * a combined literal/length alphabet (`0..=255` literals, `256 + (len-4)`
//!   match lengths) and a log2-bucketed distance alphabet, both entropy coded
//!   with the canonical [`crate::huffman`] coder,
//! * the decoded length is carried externally (the framed container in
//!   [`crate::compress`] stores it), so no end-of-block symbol is required.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::CodeBook;
use crate::{CodingError, Result};

/// Shortest match worth emitting.
pub const MIN_MATCH: usize = 4;
/// Longest representable match.
pub const MAX_MATCH: usize = 258;
/// First symbol of the match-length range in the literal/length alphabet.
const LEN_SYMBOL_BASE: u32 = 256;

/// Tuning knobs for the LZSS encoder.
#[derive(Debug, Clone)]
pub struct LzssConfig {
    /// Sliding-window size in bytes (maximum back-reference distance).
    pub window_size: usize,
    /// Maximum number of hash-chain candidates examined per position.
    pub max_chain: usize,
    /// Enable one-step lazy matching (defer a match if the next position has
    /// a longer one).
    pub lazy: bool,
}

impl Default for LzssConfig {
    fn default() -> Self {
        Self {
            window_size: 32 * 1024,
            max_chain: 64,
            lazy: true,
        }
    }
}

impl LzssConfig {
    /// A faster, lower-ratio profile used by the codecs when throughput
    /// matters more than the last few percent of ratio.
    pub fn fast() -> Self {
        Self {
            window_size: 16 * 1024,
            max_chain: 8,
            lazy: false,
        }
    }

    /// A slower, higher-ratio profile.
    pub fn high() -> Self {
        Self {
            window_size: 64 * 1024,
            max_chain: 256,
            lazy: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { length: usize, distance: usize },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `MAX_MATCH` and at the end of `data`.
#[inline]
fn match_length(data: &[u8], a: usize, b: usize) -> usize {
    let limit = MAX_MATCH.min(data.len() - b);
    let mut len = 0;
    while len < limit && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

struct Matcher {
    head: Vec<i64>,
    prev: Vec<i64>,
    window: usize,
    max_chain: usize,
}

impl Matcher {
    fn new(len: usize, config: &LzssConfig) -> Self {
        Self {
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; len.max(1)],
            window: config.window_size,
            max_chain: config.max_chain,
        }
    }

    fn insert(&mut self, data: &[u8], pos: usize) {
        if pos + MIN_MATCH > data.len() {
            return;
        }
        let h = hash4(data, pos);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as i64;
    }

    /// Best `(length, distance)` match for position `pos`, if any reaches
    /// `MIN_MATCH`.
    fn find(&self, data: &[u8], pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        let h = hash4(data, pos);
        let mut candidate = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while candidate >= 0 && chain < self.max_chain {
            let cand = candidate as usize;
            if pos - cand > self.window {
                break;
            }
            let len = match_length(data, cand, pos);
            if len > best_len {
                best_len = len;
                best_dist = pos - cand;
                if len >= MAX_MATCH {
                    break;
                }
            }
            candidate = self.prev[cand];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

fn tokenize(data: &[u8], config: &LzssConfig) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut matcher = Matcher::new(data.len(), config);
    let mut pos = 0usize;
    while pos < data.len() {
        let found = matcher.find(data, pos);
        match found {
            Some((mut length, mut distance)) => {
                if config.lazy && pos + 1 < data.len() {
                    // Peek one position ahead; if a strictly longer match
                    // starts there, emit a literal instead and take it next
                    // iteration (classic lazy matching).
                    matcher.insert(data, pos);
                    if let Some((next_len, _)) = matcher.find(data, pos + 1) {
                        if next_len > length + 1 {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            continue;
                        }
                    }
                    // We already inserted `pos`; insert the remainder of the
                    // match below starting from pos+1.
                    length = length.min(data.len() - pos);
                    distance = distance.min(pos);
                    tokens.push(Token::Match { length, distance });
                    for p in pos + 1..pos + length {
                        matcher.insert(data, p);
                    }
                    pos += length;
                    continue;
                }
                tokens.push(Token::Match { length, distance });
                for p in pos..pos + length {
                    matcher.insert(data, p);
                }
                pos += length;
            }
            None => {
                tokens.push(Token::Literal(data[pos]));
                matcher.insert(data, pos);
                pos += 1;
            }
        }
    }
    tokens
}

#[inline]
fn distance_slot(distance: usize) -> (u32, u32, u64) {
    // slot = floor(log2(distance)); extra bits = slot; extra = distance - 2^slot
    debug_assert!(distance >= 1);
    let slot = 63 - (distance as u64).leading_zeros();
    let extra = distance as u64 - (1u64 << slot);
    (slot, slot, extra)
}

/// Compress `data` into an LZSS+Huffman payload (no framing header).
pub fn compress(data: &[u8], config: &LzssConfig) -> Vec<u8> {
    if data.is_empty() {
        return Vec::new();
    }
    let tokens = tokenize(data, config);

    // Frequency tables for the two alphabets.
    let mut litlen_freq: Vec<(u32, u64)> = Vec::new();
    let mut dist_freq: Vec<(u32, u64)> = Vec::new();
    {
        use std::collections::HashMap;
        let mut lit: HashMap<u32, u64> = HashMap::new();
        let mut dst: HashMap<u32, u64> = HashMap::new();
        for t in &tokens {
            match *t {
                Token::Literal(b) => {
                    *lit.entry(b as u32).or_insert(0) += 1;
                }
                Token::Match { length, distance } => {
                    *lit.entry(LEN_SYMBOL_BASE + (length - MIN_MATCH) as u32)
                        .or_insert(0) += 1;
                    let (slot, _, _) = distance_slot(distance);
                    *dst.entry(slot).or_insert(0) += 1;
                }
            }
        }
        litlen_freq.extend(lit);
        dist_freq.extend(dst);
    }
    let litlen_book = CodeBook::from_frequencies(&litlen_freq);
    let dist_book = CodeBook::from_frequencies(&dist_freq);

    let mut w = BitWriter::with_capacity(data.len() / 2 + 64);
    litlen_book.write_table(&mut w);
    dist_book.write_table(&mut w);
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                litlen_book
                    .encode_symbol(b as u32, &mut w)
                    .expect("literal in book");
            }
            Token::Match { length, distance } => {
                litlen_book
                    .encode_symbol(LEN_SYMBOL_BASE + (length - MIN_MATCH) as u32, &mut w)
                    .expect("length in book");
                let (slot, extra_bits, extra) = distance_slot(distance);
                dist_book.encode_symbol(slot, &mut w).expect("slot in book");
                w.write_bits(extra, extra_bits);
            }
        }
    }
    w.into_bytes()
}

/// Decompress an LZSS+Huffman payload produced by [`compress`] into exactly
/// `expected_len` bytes.
pub fn decompress(data: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    if expected_len == 0 {
        return Ok(Vec::new());
    }
    let mut r = BitReader::new(data);
    let litlen_book = CodeBook::read_table(&mut r)?;
    let dist_book = CodeBook::read_table(&mut r)?;
    let litlen_dec = litlen_book.decoder();
    let dist_dec = if dist_book.is_empty() {
        None
    } else {
        Some(dist_book.decoder())
    };

    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    while out.len() < expected_len {
        let sym = litlen_dec.decode_symbol(&mut r)?;
        if sym < LEN_SYMBOL_BASE {
            out.push(sym as u8);
        } else {
            let length = (sym - LEN_SYMBOL_BASE) as usize + MIN_MATCH;
            let dist_dec = dist_dec.as_ref().ok_or_else(|| {
                CodingError::InvalidCodeTable("match without distance table".into())
            })?;
            let slot = dist_dec.decode_symbol(&mut r)?;
            if slot > 63 {
                return Err(CodingError::InvalidSymbol(slot));
            }
            let extra = r.read_bits(slot)?;
            let distance = (1u64 << slot) + extra;
            let distance = distance as usize;
            if distance == 0 || distance > out.len() {
                return Err(CodingError::InvalidBackReference {
                    distance,
                    produced: out.len(),
                });
            }
            let start = out.len() - distance;
            for i in 0..length {
                let b = out[start + i];
                out.push(b);
                if out.len() > expected_len {
                    return Err(CodingError::LengthMismatch {
                        expected: expected_len,
                        actual: out.len(),
                    });
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], config: &LzssConfig) {
        let packed = compress(data, config);
        let restored = decompress(&packed, data.len()).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn empty_input() {
        assert!(compress(&[], &LzssConfig::default()).is_empty());
        assert_eq!(decompress(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_inputs() {
        for n in 1..=8usize {
            let data: Vec<u8> = (0..n as u8).collect();
            roundtrip(&data, &LzssConfig::default());
        }
    }

    #[test]
    fn highly_repetitive_compresses_well() {
        let data = vec![7u8; 100_000];
        let packed = compress(&data, &LzssConfig::default());
        assert!(packed.len() < 2_000, "got {} bytes", packed.len());
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn periodic_pattern() {
        let data: Vec<u8> = (0..50_000u32).map(|i| ((i * i) % 251) as u8).collect();
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn text_like_data() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(500);
        let packed = compress(&data, &LzssConfig::default());
        assert!(packed.len() < data.len() / 5);
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn overlapping_back_references() {
        // "aaaa..." forces distance-1 matches that overlap their own output.
        let mut data = vec![b'a'; 1000];
        data.extend_from_slice(b"bcd");
        data.extend(vec![b'a'; 1000]);
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn all_profiles_roundtrip() {
        let data: Vec<u8> = (0..30_000u32)
            .map(|i| ((i / 7) % 256) as u8 ^ ((i % 13) as u8))
            .collect();
        for config in [
            LzssConfig::default(),
            LzssConfig::fast(),
            LzssConfig::high(),
        ] {
            roundtrip(&data, &config);
        }
    }

    #[test]
    fn truncation_is_detected() {
        let data = b"repeat repeat repeat repeat repeat repeat repeat".repeat(20);
        let packed = compress(&data, &LzssConfig::default());
        assert!(decompress(&packed[..packed.len() / 3], data.len()).is_err());
    }

    #[test]
    fn distance_slots_are_consistent() {
        for d in [1usize, 2, 3, 4, 7, 8, 255, 256, 1023, 32768] {
            let (slot, extra_bits, extra) = distance_slot(d);
            assert_eq!((1usize << slot) + extra as usize, d);
            assert_eq!(slot, extra_bits);
        }
    }
}
