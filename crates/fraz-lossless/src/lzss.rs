//! LZSS dictionary coder with hash-chain match search and Huffman-coded
//! tokens.
//!
//! This module plays the role that Gzip/Zstd play as SZ's fourth stage: a
//! byte-level dictionary encoder applied to the output of the entropy stage.
//! The design follows the classic DEFLATE recipe, simplified where the full
//! generality is not needed:
//!
//! * a sliding window of [`LzssConfig::window_size`] bytes,
//! * hash-chain match search over 4-byte anchors with lazy (one-step)
//!   matching,
//! * a combined literal/length alphabet (`0..=255` literals, `256 + (len-4)`
//!   match lengths) and a log2-bucketed distance alphabet, both entropy coded
//!   with the canonical [`crate::huffman`] coder,
//! * the decoded length is carried externally (the framed container in
//!   [`crate::compress`] stores it), so no end-of-block symbol is required.
//!
//! # Fast paths
//!
//! The encoder lives in a reusable [`LzssEncoder`] so the FRaZ search loop —
//! which compresses the same field dozens of times while hunting an error
//! bound — pays the ~160 KB hash-chain allocation once per worker thread
//! instead of once per call.  Match lengths are measured a word at a time
//! (u64 XOR + `trailing_zeros`), candidates are rejected with a one-byte
//! probe at the current best length before any full comparison, and very
//! long matches insert only a stride of their positions into the hash chains
//! (the skipped anchors could only produce matches the emitted one already
//! covers).  The decoder copies back-references in chunks with the bounds
//! check hoisted out of the loop.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::CodeBook;
use crate::{CodingError, Result};

/// Shortest match worth emitting.
pub const MIN_MATCH: usize = 4;
/// Longest representable match.
pub const MAX_MATCH: usize = 258;
/// First symbol of the match-length range in the literal/length alphabet.
const LEN_SYMBOL_BASE: u32 = 256;
/// Size of the combined literal/length alphabet
/// (`256` literals + `MAX_MATCH - MIN_MATCH + 1` lengths).
const LITLEN_ALPHABET: usize = 256 + MAX_MATCH - MIN_MATCH + 1;
/// Matches longer than this insert only a stride of their interior positions
/// into the hash chains (DEFLATE's "too long to bother" heuristic).
const INSERT_ALL_LIMIT: usize = 64;
/// Matches at least this long are emitted without the lazy one-step
/// look-ahead: a second full chain search can no longer buy enough ratio to
/// justify its cost (zlib's `good_length` idea).
const LAZY_CUTOFF: usize = 32;

/// Tuning knobs for the LZSS encoder.
#[derive(Debug, Clone)]
pub struct LzssConfig {
    /// Sliding-window size in bytes (maximum back-reference distance).
    pub window_size: usize,
    /// Maximum number of hash-chain candidates examined per position.
    pub max_chain: usize,
    /// Enable one-step lazy matching (defer a match if the next position has
    /// a longer one).
    pub lazy: bool,
}

impl Default for LzssConfig {
    fn default() -> Self {
        Self {
            window_size: 32 * 1024,
            max_chain: 64,
            lazy: true,
        }
    }
}

impl LzssConfig {
    /// A faster, lower-ratio profile used by the codecs when throughput
    /// matters more than the last few percent of ratio.
    pub fn fast() -> Self {
        Self {
            window_size: 16 * 1024,
            max_chain: 8,
            lazy: false,
        }
    }

    /// A slower, higher-ratio profile.
    pub fn high() -> Self {
        Self {
            window_size: 64 * 1024,
            max_chain: 256,
            lazy: true,
        }
    }
}

/// Compact token: literals carry the byte, matches carry `u32`
/// length/distance (12 bytes per token keeps the scratch buffer — two full
/// passes per compress call — cache-friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { length: u32, distance: u32 },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Chain terminator / "no entry" marker in `head`/`prev`.
const NIL: i32 = -1;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]` (`a < b`),
/// capped at `MAX_MATCH` and at the end of `data`.  Compares a word at a
/// time; the first mismatching byte index falls out of the XOR's trailing
/// zero count.
#[inline]
fn match_length(data: &[u8], a: usize, b: usize) -> usize {
    debug_assert!(a < b);
    let limit = MAX_MATCH.min(data.len() - b);
    let mut len = 0;
    while len + 8 <= limit {
        let x = u64::from_le_bytes(data[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(data[b + len..b + len + 8].try_into().expect("8 bytes"));
        let xor = x ^ y;
        if xor != 0 {
            return len + (xor.trailing_zeros() >> 3) as usize;
        }
        len += 8;
    }
    while len < limit && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// A reusable LZSS compressor.
///
/// Holds the hash-chain heads, the per-position chain links, and the token
/// scratch buffer across calls, so repeated compression (the fixed-ratio
/// search loop evaluates the same dataset at dozens of error bounds) costs no
/// per-call allocations once the buffers have grown to the working-set size.
/// The framed [`crate::compress`] entry point keeps one encoder per thread,
/// which on the shared work-stealing pool means one scratch per pool worker.
#[derive(Debug, Clone)]
pub struct LzssEncoder {
    config: LzssConfig,
    /// Most recent position for each hash bucket, `NIL` when empty.
    head: Vec<i32>,
    /// Previous position with the same hash, indexed by position.
    prev: Vec<i32>,
    /// Token scratch reused between calls.
    tokens: Vec<Token>,
}

impl LzssEncoder {
    /// Create an encoder with the given configuration.
    pub fn new(config: LzssConfig) -> Self {
        Self {
            config,
            head: vec![NIL; HASH_SIZE],
            prev: Vec::new(),
            tokens: Vec::new(),
        }
    }

    /// The configuration this encoder applies.
    pub fn config(&self) -> &LzssConfig {
        &self.config
    }

    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        if pos + MIN_MATCH > data.len() {
            return;
        }
        self.insert_hashed(pos, hash4(data, pos));
    }

    /// Insert `pos` whose anchor hash is already known.
    #[inline]
    fn insert_hashed(&mut self, pos: usize, h: usize) {
        self.prev[pos] = self.head[h];
        self.head[h] = pos as i32;
    }

    /// Best `(length, distance)` match for position `pos`, if any reaches
    /// `MIN_MATCH`.
    fn find(&self, data: &[u8], pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > data.len() {
            return None;
        }
        self.find_hashed(data, pos, hash4(data, pos))
    }

    /// [`Self::find`] with the anchor hash already computed (the tokenizer
    /// hashes each position once and shares it between find and insert).
    fn find_hashed(&self, data: &[u8], pos: usize, h: usize) -> Option<(usize, usize)> {
        let window = self.config.window_size;
        let max_chain = self.config.max_chain;
        let mut candidate = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while candidate >= 0 && chain < max_chain {
            let cand = candidate as usize;
            if pos - cand > window {
                break;
            }
            // Cheap reject: to beat `best_len` the candidate must at least
            // match the byte at that offset, so probe it before paying for
            // the full word-level comparison.
            if pos + best_len < data.len() && data[cand + best_len] == data[pos + best_len] {
                let len = match_length(data, cand, pos);
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= MAX_MATCH || pos + len >= data.len() {
                        break;
                    }
                }
            }
            candidate = self.prev[cand];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }

    /// Insert positions `from..to` into the hash chains.  Interior positions
    /// of a long emitted match are strided: any match starting there would be
    /// a (shorter) suffix of content the chains already reach, so sampling
    /// them costs almost no ratio and saves the dominant insertion work on
    /// highly repetitive data.
    fn insert_range(&mut self, data: &[u8], from: usize, to: usize) {
        let span = to.saturating_sub(from);
        let step = if span > INSERT_ALL_LIMIT {
            (span / INSERT_ALL_LIMIT).max(1)
        } else {
            1
        };
        let mut p = from;
        while p < to {
            self.insert(data, p);
            p += step;
        }
    }

    /// Tokenize one segment of input, *appending* to the token scratch and
    /// counting the two alphabets' frequencies on the fly (one pass instead
    /// of a second sweep over the token buffer).  Chain state is reset per
    /// segment; positions are relative to `data`'s start.
    fn tokenize(
        &mut self,
        data: &[u8],
        litlen_freq: &mut [u64; LITLEN_ALPHABET],
        dist_freq: &mut [u64; 64],
    ) {
        debug_assert!(data.len() <= i32::MAX as usize);
        self.head.fill(NIL);
        if self.prev.len() < data.len() {
            self.prev.resize(data.len(), NIL);
        }
        let lazy = self.config.lazy;
        let mut pos = 0usize;
        while pos < data.len() {
            if pos + MIN_MATCH > data.len() {
                // Too close to the end for any match anchor: flush literals.
                for &b in &data[pos..] {
                    self.tokens.push(Token::Literal(b));
                    litlen_freq[b as usize] += 1;
                }
                break;
            }
            // One hash per position, shared between find and insert.
            let h = hash4(data, pos);
            match self.find_hashed(data, pos, h) {
                Some((mut length, mut distance)) => {
                    if lazy && length < LAZY_CUTOFF && pos + 1 < data.len() {
                        // Peek one position ahead; if a strictly longer match
                        // starts there, emit a literal instead and take it
                        // next iteration (classic lazy matching).
                        self.insert_hashed(pos, h);
                        if let Some((next_len, _)) = self.find(data, pos + 1) {
                            if next_len > length + 1 {
                                self.tokens.push(Token::Literal(data[pos]));
                                litlen_freq[data[pos] as usize] += 1;
                                pos += 1;
                                continue;
                            }
                        }
                        // We already inserted `pos`; insert the remainder of
                        // the match below starting from pos+1.
                        length = length.min(data.len() - pos);
                        distance = distance.min(pos);
                        self.tokens.push(Token::Match {
                            length: length as u32,
                            distance: distance as u32,
                        });
                        litlen_freq[LEN_SYMBOL_BASE as usize + (length - MIN_MATCH)] += 1;
                        dist_freq[distance_slot(distance).0 as usize] += 1;
                        self.insert_range(data, pos + 1, pos + length);
                        pos += length;
                        continue;
                    }
                    self.tokens.push(Token::Match {
                        length: length as u32,
                        distance: distance as u32,
                    });
                    litlen_freq[LEN_SYMBOL_BASE as usize + (length - MIN_MATCH)] += 1;
                    dist_freq[distance_slot(distance).0 as usize] += 1;
                    self.insert_range(data, pos, pos + length);
                    pos += length;
                }
                None => {
                    self.tokens.push(Token::Literal(data[pos]));
                    litlen_freq[data[pos] as usize] += 1;
                    self.insert_hashed(pos, h);
                    pos += 1;
                }
            }
        }
    }

    /// Compress `data` into an LZSS+Huffman payload (no framing header).
    ///
    /// Equivalent to the free function [`compress`] but reuses this
    /// encoder's scratch buffers.
    pub fn compress(&mut self, data: &[u8]) -> Vec<u8> {
        self.compress_segmented(data, SEGMENT_SIZE)
    }

    /// [`Self::compress`] with an explicit tokenization segment size
    /// (separated out so tests can exercise the segment boundary without a
    /// multi-hundred-megabyte input).
    fn compress_segmented(&mut self, data: &[u8], segment_size: usize) -> Vec<u8> {
        if data.is_empty() {
            return Vec::new();
        }
        // Frequency tables for the two alphabets, counted into flat arrays
        // during tokenization (the alphabets are small and dense by
        // construction).  Tokenization runs per segment so chain positions
        // always fit the `i32` tables regardless of input size; matches
        // never cross a segment boundary, which with a >=256 MiB segment and
        // a <=64 KiB window costs a vanishing fraction of the ratio.
        let mut litlen_freq = [0u64; LITLEN_ALPHABET];
        let mut dist_freq = [0u64; 64];
        self.tokens.clear();
        for segment in data.chunks(segment_size) {
            self.tokenize(segment, &mut litlen_freq, &mut dist_freq);
        }

        let collect = |freq: &[u64]| -> Vec<(u32, u64)> {
            freq.iter()
                .enumerate()
                .filter(|&(_, &f)| f > 0)
                .map(|(s, &f)| (s as u32, f))
                .collect()
        };
        let litlen_book = CodeBook::from_frequencies(&collect(&litlen_freq));
        let dist_book = CodeBook::from_frequencies(&collect(&dist_freq));

        let mut w = BitWriter::with_capacity(data.len() / 2 + 64);
        litlen_book.write_table(&mut w);
        dist_book.write_table(&mut w);
        for t in &self.tokens {
            match *t {
                Token::Literal(b) => {
                    litlen_book
                        .encode_symbol(b as u32, &mut w)
                        .expect("literal in book");
                }
                Token::Match { length, distance } => {
                    litlen_book
                        .encode_symbol(
                            LEN_SYMBOL_BASE + (length as usize - MIN_MATCH) as u32,
                            &mut w,
                        )
                        .expect("length in book");
                    let (slot, extra_bits, extra) = distance_slot(distance as usize);
                    dist_book.encode_symbol(slot, &mut w).expect("slot in book");
                    w.write_bits(extra, extra_bits);
                }
            }
        }
        self.release_oversized_scratch();
        w.into_bytes()
    }

    /// Cap the scratch retained between calls.  The buffers grow to the
    /// largest input a thread has compressed; without a cap, one huge field
    /// would pin its working set on every pool worker for the process
    /// lifetime.  Typical codec bodies are far below the caps, so steady
    /// state still reuses everything.
    fn release_oversized_scratch(&mut self) {
        const MAX_RETAINED_POSITIONS: usize = 1 << 24; // 64 MiB of i32 links
        const MAX_RETAINED_TOKENS: usize = 1 << 22; // 48 MiB of tokens
        if self.prev.capacity() > MAX_RETAINED_POSITIONS {
            self.prev.truncate(MAX_RETAINED_POSITIONS);
            self.prev.shrink_to_fit();
        }
        if self.tokens.capacity() > MAX_RETAINED_TOKENS {
            self.tokens = Vec::new();
        }
    }
}

/// Tokenization segment: chain positions are segment-relative `i32`s, so one
/// segment must stay addressable; 256 MiB also bounds the `prev` scratch
/// (one `i32` per byte) a huge input can demand.
const SEGMENT_SIZE: usize = 1 << 28;

#[inline]
fn distance_slot(distance: usize) -> (u32, u32, u64) {
    // slot = floor(log2(distance)); extra bits = slot; extra = distance - 2^slot
    debug_assert!(distance >= 1);
    let slot = 63 - (distance as u64).leading_zeros();
    let extra = distance as u64 - (1u64 << slot);
    (slot, slot, extra)
}

/// Compress `data` into an LZSS+Huffman payload (no framing header).
///
/// One-shot convenience wrapper; hot loops should hold a [`LzssEncoder`] and
/// reuse it across calls.
pub fn compress(data: &[u8], config: &LzssConfig) -> Vec<u8> {
    LzssEncoder::new(config.clone()).compress(data)
}

/// Decompress an LZSS+Huffman payload produced by [`compress`] into exactly
/// `expected_len` bytes.
pub fn decompress(data: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    if expected_len == 0 {
        return Ok(Vec::new());
    }
    let mut r = BitReader::new(data);
    let litlen_book = CodeBook::read_table(&mut r)?;
    let dist_book = CodeBook::read_table(&mut r)?;
    let litlen_dec = litlen_book.decoder();
    let dist_dec = if dist_book.is_empty() {
        None
    } else {
        Some(dist_book.decoder())
    };

    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    while out.len() < expected_len {
        let sym = litlen_dec.decode_symbol(&mut r)?;
        if sym < LEN_SYMBOL_BASE {
            out.push(sym as u8);
        } else {
            let length = (sym - LEN_SYMBOL_BASE) as usize + MIN_MATCH;
            let dist_dec = dist_dec.as_ref().ok_or_else(|| {
                CodingError::InvalidCodeTable("match without distance table".into())
            })?;
            let slot = dist_dec.decode_symbol(&mut r)?;
            if slot > 63 {
                return Err(CodingError::InvalidSymbol(slot));
            }
            let extra = r.read_bits(slot)?;
            let distance = ((1u64 << slot) + extra) as usize;
            if distance == 0 || distance > out.len() {
                return Err(CodingError::InvalidBackReference {
                    distance,
                    produced: out.len(),
                });
            }
            // Bounds check hoisted out of the copy: the whole match either
            // fits the declared length or the stream is corrupt.
            if out.len() + length > expected_len {
                return Err(CodingError::LengthMismatch {
                    expected: expected_len,
                    actual: out.len() + length,
                });
            }
            let start = out.len() - distance;
            if distance >= length {
                // Non-overlapping: one chunked copy.
                out.extend_from_within(start..start + length);
            } else {
                // Overlapping (distance < length): the output from `start`
                // is periodic with period `distance`; doubling chunk copies
                // reproduce it without a per-byte loop.
                let mut copied = 0usize;
                while copied < length {
                    let n = (out.len() - start).min(length - copied);
                    out.extend_from_within(start..start + n);
                    copied += n;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], config: &LzssConfig) {
        let packed = compress(data, config);
        let restored = decompress(&packed, data.len()).unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn empty_input() {
        assert!(compress(&[], &LzssConfig::default()).is_empty());
        assert_eq!(decompress(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn short_inputs() {
        for n in 1..=8usize {
            let data: Vec<u8> = (0..n as u8).collect();
            roundtrip(&data, &LzssConfig::default());
        }
    }

    #[test]
    fn highly_repetitive_compresses_well() {
        let data = vec![7u8; 100_000];
        let packed = compress(&data, &LzssConfig::default());
        assert!(packed.len() < 2_000, "got {} bytes", packed.len());
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn periodic_pattern() {
        let data: Vec<u8> = (0..50_000u32).map(|i| ((i * i) % 251) as u8).collect();
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn text_like_data() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(500);
        let packed = compress(&data, &LzssConfig::default());
        assert!(packed.len() < data.len() / 5);
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn overlapping_back_references() {
        // "aaaa..." forces distance-1 matches that overlap their own output.
        let mut data = vec![b'a'; 1000];
        data.extend_from_slice(b"bcd");
        data.extend(vec![b'a'; 1000]);
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn all_profiles_roundtrip() {
        let data: Vec<u8> = (0..30_000u32)
            .map(|i| ((i / 7) % 256) as u8 ^ ((i % 13) as u8))
            .collect();
        for config in [
            LzssConfig::default(),
            LzssConfig::fast(),
            LzssConfig::high(),
        ] {
            roundtrip(&data, &config);
        }
    }

    #[test]
    fn reused_encoder_matches_one_shot_compression() {
        // The scratch state (hash chains, token buffer) must be fully reset
        // between calls: a reused encoder and a fresh one must produce
        // identical payloads, in both call orders.
        let inputs: Vec<Vec<u8>> = vec![
            b"the quick brown fox jumps over the lazy dog. ".repeat(100),
            vec![42u8; 10_000],
            (0..9_000u32).map(|i| ((i * 37) % 256) as u8).collect(),
            vec![],
            b"tiny".to_vec(),
        ];
        let mut reused = LzssEncoder::new(LzssConfig::default());
        for data in &inputs {
            let from_reused = reused.compress(data);
            let from_fresh = compress(data, &LzssConfig::default());
            assert_eq!(from_reused, from_fresh);
            let restored = decompress(&from_reused, data.len()).unwrap();
            assert_eq!(&restored, data);
        }
        // And again in reverse order on the same encoder.
        for data in inputs.iter().rev() {
            assert_eq!(
                reused.compress(data),
                compress(data, &LzssConfig::default())
            );
        }
    }

    #[test]
    fn segmented_tokenization_roundtrips_across_boundaries() {
        // Force many tiny segments (the production size is 256 MiB): matches
        // must never cross a boundary, and the stream must stay decodable by
        // the ordinary decoder.
        let data = b"boundary boundary boundary boundary ".repeat(200);
        for segment in [64usize, 1000, 4096, usize::MAX] {
            let mut enc = LzssEncoder::new(LzssConfig::default());
            let packed = enc.compress_segmented(&data, segment);
            let restored = decompress(&packed, data.len()).unwrap();
            assert_eq!(restored, data, "segment size {segment}");
        }
        // Small segments lose cross-boundary matches but not much more.
        let mut enc = LzssEncoder::new(LzssConfig::default());
        let chunked = enc.compress_segmented(&data, 1000).len();
        let whole = enc.compress_segmented(&data, usize::MAX).len();
        assert!(chunked < data.len() / 4, "chunked {} bytes", chunked);
        assert!(whole <= chunked);
    }

    #[test]
    fn long_match_insertion_stride_keeps_ratio() {
        // A long run exercises the strided interior insertion; the emitted
        // stream must stay both correct and small.
        let mut data = Vec::new();
        for block in 0..8u8 {
            data.extend(vec![block; 4096]);
        }
        let packed = compress(&data, &LzssConfig::default());
        assert!(packed.len() < data.len() / 50, "got {} bytes", packed.len());
        roundtrip(&data, &LzssConfig::default());
    }

    #[test]
    fn truncation_is_detected() {
        let data = b"repeat repeat repeat repeat repeat repeat repeat".repeat(20);
        let packed = compress(&data, &LzssConfig::default());
        assert!(decompress(&packed[..packed.len() / 3], data.len()).is_err());
    }

    #[test]
    fn distance_slots_are_consistent() {
        for d in [1usize, 2, 3, 4, 7, 8, 255, 256, 1023, 32768] {
            let (slot, extra_bits, extra) = distance_slot(d);
            assert_eq!((1usize << slot) + extra as usize, d);
            assert_eq!(slot, extra_bits);
        }
    }

    #[test]
    fn match_length_agrees_with_naive_scan() {
        let mut data: Vec<u8> = (0..600u32).map(|i| ((i / 3) % 7) as u8).collect();
        data.extend_from_slice(&data.clone());
        for &(a, b) in &[(0usize, 21usize), (0, 300), (5, 599), (100, 101), (0, 596)] {
            let naive = {
                let limit = MAX_MATCH.min(data.len() - b);
                let mut l = 0;
                while l < limit && data[a + l] == data[b + l] {
                    l += 1;
                }
                l
            };
            assert_eq!(match_length(&data, a, b), naive, "a={a} b={b}");
        }
    }
}
