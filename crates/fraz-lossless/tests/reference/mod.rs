//! A deliberately naive, independent decoder for the frozen on-wire format.
//!
//! This module re-implements the bit layer, the canonical Huffman table, and
//! the LZSS token stream from the format's *specification* (MSB-first bits,
//! LEB128-in-bits varints, `(length, symbol)`-canonical codes, log2-bucketed
//! distances, `"FZL1"` framing) without sharing a line of code with the
//! optimized implementation in `src/`.  Property tests pit the production
//! encoder against this decoder: if the fast paths ever drift from the
//! format, the two sides disagree immediately.
//!
//! Everything here favours obviousness over speed: one bit at a time, one
//! byte at a time, `String` errors.

/// Reads single bits MSB-first from a byte slice.
pub struct NaiveBitReader<'a> {
    data: &'a [u8],
    bit: usize,
}

impl<'a> NaiveBitReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, bit: 0 }
    }

    fn read_bit(&mut self) -> Result<u64, String> {
        let byte = self.bit / 8;
        if byte >= self.data.len() {
            return Err("unexpected end of stream".into());
        }
        let shift = 7 - (self.bit % 8);
        self.bit += 1;
        Ok(((self.data[byte] >> shift) & 1) as u64)
    }

    fn read_bits(&mut self, n: u32) -> Result<u64, String> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()?;
        }
        Ok(v)
    }

    /// LEB128-style varint: groups of (continuation bit, 7 value bits),
    /// low group first.
    fn read_uvarint(&mut self) -> Result<u64, String> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let more = self.read_bit()? == 1;
            let group = self.read_bits(7)?;
            value |= group << shift;
            shift += 7;
            if !more || shift >= 64 {
                break;
            }
        }
        Ok(value)
    }
}

/// A canonical code book as `(symbol, length)` pairs in canonical order.
pub struct NaiveCodeBook {
    /// `(code, length, symbol)`, one entry per coded symbol.
    entries: Vec<(u64, u8, u32)>,
}

impl NaiveCodeBook {
    /// Parse the serialized table: varint entry count, then per entry a
    /// varint symbol delta (ascending symbol order) and a 6-bit code length.
    fn read(r: &mut NaiveBitReader<'_>) -> Result<Self, String> {
        let count = r.read_uvarint()? as usize;
        if count > (1 << 28) {
            return Err(format!("implausible symbol count {count}"));
        }
        let mut pairs: Vec<(u32, u8)> = Vec::with_capacity(count);
        let mut prev = 0u64;
        for _ in 0..count {
            let delta = r.read_uvarint()?;
            let len = r.read_bits(6)? as u8;
            let sym = prev + delta;
            if sym > u32::MAX as u64 || len == 0 {
                return Err("invalid table entry".into());
            }
            pairs.push((sym as u32, len));
            prev = sym;
        }
        // Canonical assignment: consecutive codes to symbols sorted by
        // (length, symbol).
        pairs.sort_by_key(|&(s, l)| (l, s));
        let mut entries = Vec::with_capacity(pairs.len());
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &(sym, len) in &pairs {
            if prev_len != 0 {
                code = (code + 1) << (len - prev_len);
            }
            prev_len = len;
            entries.push((code, len, sym));
        }
        Ok(Self { entries })
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Decode one symbol by lengthening the read prefix until it equals one
    /// of the canonical codes — the most literal reading of prefix codes.
    fn decode_symbol(&self, r: &mut NaiveBitReader<'_>) -> Result<u32, String> {
        let max_len = self.entries.iter().map(|&(_, l, _)| l).max().unwrap_or(0);
        let mut code = 0u64;
        for len in 1..=max_len {
            code = (code << 1) | r.read_bit()?;
            for &(c, l, sym) in &self.entries {
                if l == len && c == code {
                    return Ok(sym);
                }
            }
        }
        Err("bit pattern matches no code".into())
    }
}

/// Decode a self-contained `huffman::encode_symbols` buffer
/// (varint count, table, payload).
pub fn decode_huffman_symbols(data: &[u8]) -> Result<Vec<u32>, String> {
    let mut r = NaiveBitReader::new(data);
    let n = r.read_uvarint()? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let book = NaiveCodeBook::read(&mut r)?;
    (0..n).map(|_| book.decode_symbol(&mut r)).collect()
}

/// First symbol of the match-length range in the literal/length alphabet.
const LEN_SYMBOL_BASE: u32 = 256;
/// Shortest representable match.
const MIN_MATCH: usize = 4;

/// Decode a raw LZSS payload (litlen table, distance table, token stream)
/// into exactly `expected_len` bytes.
pub fn decompress_lzss(data: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    if expected_len == 0 {
        return Ok(Vec::new());
    }
    let mut r = NaiveBitReader::new(data);
    let litlen = NaiveCodeBook::read(&mut r)?;
    let dist = NaiveCodeBook::read(&mut r)?;
    let mut out = Vec::with_capacity(expected_len);
    while out.len() < expected_len {
        let sym = litlen.decode_symbol(&mut r)?;
        if sym < LEN_SYMBOL_BASE {
            out.push(sym as u8);
        } else {
            let length = (sym - LEN_SYMBOL_BASE) as usize + MIN_MATCH;
            if dist.is_empty() {
                return Err("match token without a distance table".into());
            }
            let slot = dist.decode_symbol(&mut r)?;
            if slot > 63 {
                return Err(format!("invalid distance slot {slot}"));
            }
            let extra = r.read_bits(slot)?;
            let distance = ((1u64 << slot) + extra) as usize;
            if distance == 0 || distance > out.len() {
                return Err(format!(
                    "back-reference {distance} exceeds produced {}",
                    out.len()
                ));
            }
            // Overlapping copies must read bytes produced *during* this
            // match, so re-index from the current end every iteration.
            for _ in 0..length {
                let src = out.len() - distance;
                out.push(out[src]);
                if out.len() > expected_len {
                    return Err("decoded past the declared length".into());
                }
            }
        }
    }
    Ok(out)
}

/// Decode the `"FZL1"` framed container (magic, u64 LE length, payload).
pub fn decompress_framed(data: &[u8]) -> Result<Vec<u8>, String> {
    if data.len() < 12 {
        return Err("truncated frame header".into());
    }
    let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    if magic != 0x465A_4C31 {
        return Err(format!("bad magic 0x{magic:08x}"));
    }
    let len = u64::from_le_bytes([
        data[4], data[5], data[6], data[7], data[8], data[9], data[10], data[11],
    ]) as usize;
    decompress_lzss(&data[12..], len)
}
