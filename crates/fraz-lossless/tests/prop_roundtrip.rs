//! Property-based tests for the lossless substrate: every byte sequence must
//! survive a compress/decompress roundtrip bit-exactly, under every encoder
//! profile, and the Huffman coder must roundtrip arbitrary symbol streams.

use proptest::prelude::*;

use fraz_lossless::huffman;
use fraz_lossless::lzss::{self, LzssConfig};
use fraz_lossless::rle;

mod reference;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn framed_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = fraz_lossless::compress(&data);
        let restored = fraz_lossless::decompress(&packed).unwrap();
        prop_assert_eq!(restored, data);
    }

    #[test]
    fn framed_roundtrip_low_entropy(data in proptest::collection::vec(0u8..4, 0..8192)) {
        let packed = fraz_lossless::compress(&data);
        prop_assert_eq!(fraz_lossless::decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip_all_profiles(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for config in [LzssConfig::default(), LzssConfig::fast(), LzssConfig::high()] {
            let packed = lzss::compress(&data, &config);
            let restored = lzss::decompress(&packed, data.len()).unwrap();
            prop_assert_eq!(&restored, &data);
        }
    }

    #[test]
    fn huffman_roundtrip_arbitrary_symbols(symbols in proptest::collection::vec(0u32..100_000, 0..2048)) {
        let packed = huffman::encode_symbols(&symbols);
        prop_assert_eq!(huffman::decode_symbols(&packed).unwrap(), symbols);
    }

    #[test]
    fn huffman_roundtrip_skewed_symbols(symbols in proptest::collection::vec(
        prop_oneof![9 => Just(512u32), 1 => 0u32..1024], 1..4096)) {
        let packed = huffman::encode_symbols(&symbols);
        prop_assert_eq!(huffman::decode_symbols(&packed).unwrap(), symbols);
    }

    #[test]
    fn varint_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..256)) {
        let mut w = fraz_lossless::bitio::BitWriter::new();
        for &v in &values {
            rle::write_uvarint(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = fraz_lossless::bitio::BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(rle::read_uvarint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn signed_varint_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..256)) {
        let mut w = fraz_lossless::bitio::BitWriter::new();
        for &v in &values {
            rle::write_ivarint(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = fraz_lossless::bitio::BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(rle::read_ivarint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn bitio_roundtrip(fields in proptest::collection::vec((any::<u64>(), 0u32..=64), 0..256)) {
        let mut w = fraz_lossless::bitio::BitWriter::new();
        for &(v, n) in &fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.write_bits(masked, n);
        }
        let bytes = w.into_bytes();
        let mut r = fraz_lossless::bitio::BitReader::new(&bytes);
        for &(v, n) in &fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.read_bits(n).unwrap(), masked);
        }
    }

    #[test]
    fn rle_roundtrip(values in proptest::collection::vec(0u32..8, 0..1024)) {
        let pairs = rle::rle_encode(&values);
        prop_assert_eq!(rle::rle_decode(&pairs), values);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Corrupted/arbitrary input must produce Ok or Err, never a panic.
        let _ = fraz_lossless::decompress(&data);
    }
}

// The optimized encoder against the naive reference decoder (an independent,
// bit-at-a-time implementation of the frozen wire format under
// `tests/reference/`): if the fast paths ever drift from the format, these
// disagree immediately.  Fewer cases than above — the reference decoder is
// deliberately slow.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn framed_output_decodes_with_reference_decoder(
        data in proptest::collection::vec(any::<u8>(), 0..1024)
    ) {
        let packed = fraz_lossless::compress(&data);
        prop_assert_eq!(reference::decompress_framed(&packed).unwrap(), data);
    }

    #[test]
    fn lzss_profiles_decode_with_reference_decoder(
        data in proptest::collection::vec(0u8..16, 0..1024)
    ) {
        for config in [LzssConfig::default(), LzssConfig::fast(), LzssConfig::high()] {
            let packed = lzss::compress(&data, &config);
            let restored = reference::decompress_lzss(&packed, data.len()).unwrap();
            prop_assert_eq!(&restored, &data);
        }
    }

    #[test]
    fn huffman_output_decodes_with_reference_decoder(
        symbols in proptest::collection::vec(0u32..50_000, 0..768)
    ) {
        let packed = huffman::encode_symbols(&symbols);
        prop_assert_eq!(reference::decode_huffman_symbols(&packed).unwrap(), symbols);
    }
}
