//! Negabinary conversion and embedded bit-plane coding of block
//! coefficients.
//!
//! This mirrors ZFP's `encode_ints` / `decode_ints`: transform coefficients
//! are mapped from two's complement to negabinary (so magnitude ordering is
//! monotone in the unsigned representation), then bit planes are emitted from
//! most to least significant with a group-testing scheme that spends very few
//! bits on planes where most coefficients are still insignificant.  Both the
//! per-block bit budget (`max_bits`, used by the fixed-rate mode) and the
//! per-block precision (`max_prec`, used by the fixed-accuracy mode) limit
//! how much of each block is emitted.

use fraz_lossless::bitio::{BitReader, BitWriter};
use fraz_lossless::Result;

/// Number of bit planes in the integer representation.
pub const INT_PRECISION: u32 = 64;

const NEGABINARY_MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;

/// Map a two's-complement integer to negabinary.
#[inline]
pub fn int_to_uint(x: i64) -> u64 {
    ((x as u64).wrapping_add(NEGABINARY_MASK)) ^ NEGABINARY_MASK
}

/// Inverse of [`int_to_uint`].
#[inline]
pub fn uint_to_int(x: u64) -> i64 {
    ((x ^ NEGABINARY_MASK).wrapping_sub(NEGABINARY_MASK)) as i64
}

#[inline]
fn write_bits_lsb(w: &mut BitWriter, x: u64, n: u64) {
    for i in 0..n {
        w.write_bit((x >> i) & 1 == 1);
    }
}

#[inline]
fn read_bits_lsb(r: &mut BitReader<'_>, n: u64) -> Result<u64> {
    let mut x = 0u64;
    for i in 0..n {
        if r.read_bit()? {
            x |= 1 << i;
        }
    }
    Ok(x)
}

/// Encode up to `max_prec` bit planes of `data` (negabinary coefficients in
/// sequency order), spending at most `max_bits` bits.  Returns the number of
/// bits written.
pub fn encode_ints(w: &mut BitWriter, data: &[u64], max_bits: u64, max_prec: u32) -> u64 {
    let size = data.len();
    debug_assert!(size <= 64, "blocks never exceed 4^3 coefficients");
    let kmin = if INT_PRECISION > max_prec {
        (INT_PRECISION - max_prec) as i64
    } else {
        0
    };
    let mut bits = max_bits;
    let mut n: usize = 0;
    let mut k = INT_PRECISION as i64;
    while bits > 0 && k > kmin {
        k -= 1;
        // Step 1: gather bit plane k into x (coefficient i -> bit i).
        let mut x: u64 = 0;
        for (i, &d) in data.iter().enumerate() {
            x |= ((d >> k) & 1) << i;
        }
        // Step 2: verbatim-encode the bits of coefficients already known to
        // be significant.
        let m = (n as u64).min(bits);
        bits -= m;
        write_bits_lsb(w, x, m);
        x = if m >= 64 { 0 } else { x >> m };
        // Step 3: group-test / unary encode the remainder of the plane.
        loop {
            if !(n < size && bits > 0) {
                break;
            }
            bits -= 1;
            let group = x != 0;
            w.write_bit(group);
            if !group {
                break;
            }
            // Inner loop: emit coefficient bits until the set bit is found.
            loop {
                if !(n < size - 1 && bits > 0) {
                    break;
                }
                bits -= 1;
                let bit = x & 1 == 1;
                w.write_bit(bit);
                if bit {
                    break;
                }
                x >>= 1;
                n += 1;
            }
            x >>= 1;
            n += 1;
        }
    }
    max_bits - bits
}

/// Decode the bit planes written by [`encode_ints`] with identical
/// parameters.  Returns the coefficients and the number of bits consumed.
pub fn decode_ints(
    r: &mut BitReader<'_>,
    size: usize,
    max_bits: u64,
    max_prec: u32,
) -> Result<(Vec<u64>, u64)> {
    debug_assert!(size <= 64);
    let kmin = if INT_PRECISION > max_prec {
        (INT_PRECISION - max_prec) as i64
    } else {
        0
    };
    let mut data = vec![0u64; size];
    let mut bits = max_bits;
    let mut n: usize = 0;
    let mut k = INT_PRECISION as i64;
    while bits > 0 && k > kmin {
        k -= 1;
        let m = (n as u64).min(bits);
        bits -= m;
        let mut x = read_bits_lsb(r, m)?;
        // Group-test / unary decode the remainder of the plane.
        loop {
            if !(n < size && bits > 0) {
                break;
            }
            bits -= 1;
            let group = r.read_bit()?;
            if !group {
                break;
            }
            loop {
                if !(n < size - 1 && bits > 0) {
                    break;
                }
                bits -= 1;
                let bit = r.read_bit()?;
                if bit {
                    break;
                }
                n += 1;
            }
            x |= 1u64 << n;
            n += 1;
        }
        // Deposit the plane.
        let mut plane = x;
        let mut i = 0;
        while plane != 0 {
            data[i] |= (plane & 1) << k;
            plane >>= 1;
            i += 1;
        }
    }
    Ok((data, max_bits - bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negabinary_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            2,
            -2,
            1234567,
            -987654321,
            i64::MAX / 2,
            i64::MIN / 2,
        ] {
            assert_eq!(uint_to_int(int_to_uint(v)), v);
        }
    }

    #[test]
    fn negabinary_magnitude_monotonicity() {
        // Small-magnitude integers map to small negabinary codes, which is
        // what makes dropping low bit planes a graceful degradation.
        assert!(int_to_uint(0) < int_to_uint(1000));
        assert!(int_to_uint(3).leading_zeros() > int_to_uint(1 << 40).leading_zeros());
    }

    fn roundtrip(data: &[u64], max_bits: u64, max_prec: u32) -> (Vec<u64>, u64, u64) {
        let mut w = BitWriter::new();
        let written = encode_ints(&mut w, data, max_bits, max_prec);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let (decoded, consumed) = decode_ints(&mut r, data.len(), max_bits, max_prec).unwrap();
        (decoded, written, consumed)
    }

    #[test]
    fn lossless_roundtrip_with_full_budget() {
        let data: Vec<u64> = (0..64u64)
            .map(|i| int_to_uint((i as i64 - 32) << 33))
            .collect();
        let (decoded, written, consumed) = roundtrip(&data, u64::MAX / 2, 64);
        assert_eq!(decoded, data);
        assert_eq!(written, consumed);
    }

    #[test]
    fn all_zero_block_costs_few_bits() {
        let data = vec![0u64; 64];
        let (decoded, written, _) = roundtrip(&data, u64::MAX / 2, 64);
        assert_eq!(decoded, data);
        // One group-test bit per plane.
        assert_eq!(written, 64);
    }

    #[test]
    fn truncated_precision_zeroes_low_planes() {
        let data: Vec<u64> = (0..16u64).map(|i| (i * 0x0123_4567) | 1).collect();
        let (decoded, _, _) = roundtrip(&data, u64::MAX / 2, 32);
        for (d, o) in decoded.iter().zip(data.iter()) {
            // Upper 32 planes must match exactly; lower ones are zeroed.
            assert_eq!(d >> 32, o >> 32);
            assert_eq!(d & 0xffff_ffff & !(u64::MAX << 32), d & 0xffff_ffff);
        }
    }

    #[test]
    fn bit_budget_is_respected_and_consistent() {
        let data: Vec<u64> = (0..64u64)
            .map(|i| int_to_uint(((i * i) as i64) << 40))
            .collect();
        for budget in [16u64, 64, 256, 1024] {
            let mut w = BitWriter::new();
            let written = encode_ints(&mut w, &data, budget, 64);
            assert!(written <= budget);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let (decoded, consumed) = decode_ints(&mut r, data.len(), budget, 64).unwrap();
            assert_eq!(consumed, written, "budget {budget}");
            // Reconstruction error must shrink as the budget grows.
            let err: i64 = decoded
                .iter()
                .zip(data.iter())
                .map(|(&d, &o)| (uint_to_int(d) - uint_to_int(o)).abs())
                .max()
                .unwrap();
            if budget >= 1024 {
                assert_eq!(err, 0);
            }
        }
    }

    #[test]
    fn larger_budget_never_increases_error() {
        let data: Vec<u64> = (0..64u64)
            .map(|i| int_to_uint((((i * 2654435761) as i64) % (1 << 45)) - (1 << 44)))
            .collect();
        let mut prev_err = i64::MAX;
        for budget in [32u64, 512, 8192] {
            let (decoded, _, _) = roundtrip(&data, budget, 64);
            let err: i64 = decoded
                .iter()
                .zip(data.iter())
                .map(|(&d, &o)| (uint_to_int(d) - uint_to_int(o)).abs())
                .max()
                .unwrap();
            assert!(err <= prev_err, "budget {budget}: {err} > {prev_err}");
            prev_err = err;
        }
        assert_eq!(prev_err, 0);
    }

    #[test]
    fn partial_block_sizes_roundtrip() {
        for size in [1usize, 3, 4, 15, 16, 37, 64] {
            let data: Vec<u64> = (0..size as u64)
                .map(|i| int_to_uint((i as i64 - 5) << 30))
                .collect();
            let (decoded, _, _) = roundtrip(&data, u64::MAX / 2, 64);
            assert_eq!(decoded, data, "size {size}");
        }
    }
}
