//! Block gather/scatter and block-floating-point conversion.
//!
//! ZFP partitions the grid into 4^d blocks, converts each block to a common
//! power-of-two scale (the block exponent) and represents the scaled values
//! as fixed-point integers before transforming and coding them.  Partial
//! blocks at the domain boundary are padded by edge replication; the decoder
//! simply ignores the padded lanes when scattering values back.

use crate::transform::BLOCK_EDGE;

/// Number of fraction bits in the fixed-point representation (ZFP's
/// `intprec - 2`, leaving two guard bits for transform growth).
pub const FIXED_POINT_FRACTION_BITS: i32 = 62;

/// Enumerate block origins over the active (non-degenerate) axes of a padded
/// 3-D grid, in raster order.
pub fn block_origins(dims: [usize; 3]) -> Vec<[usize; 3]> {
    let step = |len: usize| -> Vec<usize> {
        let mut starts = Vec::new();
        let mut s = 0;
        while s < len {
            starts.push(s);
            s += BLOCK_EDGE;
        }
        starts
    };
    let mut origins = Vec::new();
    for &z in &step(dims[0]) {
        for &y in &step(dims[1]) {
            for &x in &step(dims[2]) {
                origins.push([z, y, x]);
            }
        }
    }
    origins
}

/// Gather a full 4^d block starting at `origin`, replicating edge values to
/// pad partial blocks.  `block_dims` is the dataset dimensionality (1–3).
pub fn gather(values: &[f64], dims: [usize; 3], origin: [usize; 3], block_dims: usize) -> Vec<f64> {
    let n = BLOCK_EDGE.pow(block_dims as u32);
    let mut block = vec![0.0; n];
    let extent = |axis: usize| BLOCK_EDGE.min(dims[axis] - origin[axis]);
    let (ez, ey, ex) = (extent(0), extent(1), extent(2));
    for i in 0..n {
        let (lx, ly, lz) = local_coords(i, block_dims);
        // Clamp padded lanes onto the last valid sample (edge replication).
        let cz = origin[0] + lz.min(ez.saturating_sub(1));
        let cy = origin[1] + ly.min(ey.saturating_sub(1));
        let cx = origin[2] + lx.min(ex.saturating_sub(1));
        block[i] = values[(cz * dims[1] + cy) * dims[2] + cx];
    }
    block
}

/// Scatter a decoded block back into the grid, skipping padded lanes.
pub fn scatter(
    block: &[f64],
    values: &mut [f64],
    dims: [usize; 3],
    origin: [usize; 3],
    block_dims: usize,
) {
    let n = BLOCK_EDGE.pow(block_dims as u32);
    let extent = |axis: usize| BLOCK_EDGE.min(dims[axis] - origin[axis]);
    let (ez, ey, ex) = (extent(0), extent(1), extent(2));
    for i in 0..n {
        let (lx, ly, lz) = local_coords(i, block_dims);
        if lz >= ez || ly >= ey || lx >= ex {
            continue;
        }
        let idx = ((origin[0] + lz) * dims[1] + origin[1] + ly) * dims[2] + origin[2] + lx;
        values[idx] = block[i];
    }
}

/// Local `(x, y, z)` coordinates of block lane `i` for the given block
/// dimensionality (x fastest).
#[inline]
pub fn local_coords(i: usize, block_dims: usize) -> (usize, usize, usize) {
    match block_dims {
        1 => (i, 0, 0),
        2 => (i % BLOCK_EDGE, i / BLOCK_EDGE, 0),
        _ => (
            i % BLOCK_EDGE,
            (i / BLOCK_EDGE) % BLOCK_EDGE,
            i / (BLOCK_EDGE * BLOCK_EDGE),
        ),
    }
}

/// The block exponent: the smallest `e` such that every `|v| < 2^e`.
/// Returns `None` for an all-zero (or all-subnormal-zero) block.
pub fn block_exponent(block: &[f64]) -> Option<i32> {
    let max = block.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return None;
    }
    // frexp-style exponent: max = m * 2^e with 0.5 <= m < 1.
    let e = max.log2().floor() as i32 + 1;
    // Guard against log2 rounding at exact powers of two.
    let e = if max >= (2.0f64).powi(e) { e + 1 } else { e };
    let e = if max < (2.0f64).powi(e - 1) { e - 1 } else { e };
    Some(e)
}

/// Convert block values to fixed-point integers at the given block exponent.
pub fn to_ints(block: &[f64], emax: i32) -> Vec<i64> {
    let scale = (2.0f64).powi(FIXED_POINT_FRACTION_BITS - emax);
    block
        .iter()
        .map(|&v| {
            let s = v * scale;
            // Saturate defensively (cannot trigger when emax was computed
            // from this block, but keeps the conversion total).
            s.clamp(-(2.0f64.powi(62)), 2.0f64.powi(62)) as i64
        })
        .collect()
}

/// Convert fixed-point integers back to floating point.
pub fn from_ints(ints: &[i64], emax: i32) -> Vec<f64> {
    let scale = (2.0f64).powi(emax - FIXED_POINT_FRACTION_BITS);
    ints.iter().map(|&i| i as f64 * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origins_cover_partial_grids() {
        let origins = block_origins([1, 6, 9]);
        // 1 x ceil(6/4) x ceil(9/4) = 1 * 2 * 3.
        assert_eq!(origins.len(), 6);
        assert_eq!(origins[0], [0, 0, 0]);
        assert!(origins.contains(&[0, 4, 8]));
    }

    #[test]
    fn gather_scatter_roundtrip_full_blocks() {
        let dims = [4, 8, 8];
        let values: Vec<f64> = (0..dims[0] * dims[1] * dims[2]).map(|i| i as f64).collect();
        let mut restored = vec![0.0; values.len()];
        for origin in block_origins(dims) {
            let block = gather(&values, dims, origin, 3);
            scatter(&block, &mut restored, dims, origin, 3);
        }
        assert_eq!(restored, values);
    }

    #[test]
    fn gather_scatter_roundtrip_partial_blocks() {
        for dims in [[1, 1, 13], [1, 7, 9], [5, 6, 7]] {
            let block_dims = if dims[0] > 1 {
                3
            } else if dims[1] > 1 {
                2
            } else {
                1
            };
            let n = dims[0] * dims[1] * dims[2];
            let values: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let mut restored = vec![0.0; n];
            for origin in block_origins(dims) {
                let block = gather(&values, dims, origin, block_dims);
                scatter(&block, &mut restored, dims, origin, block_dims);
            }
            assert_eq!(restored, values, "dims {dims:?}");
        }
    }

    #[test]
    fn padding_replicates_edges() {
        // 1-D grid of 5 values, second block covers indices 4..8 -> lanes
        // 1..3 replicate index 4.
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let block = gather(&values, [1, 1, 5], [0, 0, 4], 1);
        assert_eq!(block, vec![5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn block_exponent_brackets_magnitude() {
        for &(v, expected) in &[
            (1.0, 1),
            (0.5, 0),
            (0.75, 0),
            (3.9, 2),
            (4.0, 3),
            (1e-3, -9),
        ] {
            let e = block_exponent(&[v, -v / 2.0, 0.0]).unwrap();
            assert_eq!(e, expected, "value {v}");
            assert!(v.abs() < (2.0f64).powi(e));
            assert!(v.abs() >= (2.0f64).powi(e - 1));
        }
        assert_eq!(block_exponent(&[0.0, 0.0]), None);
    }

    #[test]
    fn fixed_point_roundtrip_is_accurate() {
        let block: Vec<f64> = (0..64)
            .map(|i| ((i as f64) * 0.37 - 11.0).sin() * 123.456)
            .collect();
        let emax = block_exponent(&block).unwrap();
        let ints = to_ints(&block, emax);
        let back = from_ints(&ints, emax);
        for (a, b) in block.iter().zip(back.iter()) {
            // Quantization step is 2^(emax-62) — far below f64 noise here.
            assert!((a - b).abs() <= (2.0f64).powi(emax - 60), "{a} vs {b}");
        }
    }

    #[test]
    fn local_coords_are_consistent() {
        assert_eq!(local_coords(5, 1), (5, 0, 0));
        assert_eq!(local_coords(5, 2), (1, 1, 0));
        assert_eq!(local_coords(21, 3), (1, 1, 1));
        assert_eq!(local_coords(63, 3), (3, 3, 3));
    }
}
