//! The reversible decorrelating block transform used by the ZFP-like codec.
//!
//! ZFP transforms each 4^d block of integers with a separable lifting scheme
//! (a fixed-point approximation of a Gram polynomial basis).  The forward and
//! inverse lifts below are the integer-exact pair from the ZFP specification;
//! applying `inv_lift` after `fwd_lift` restores the original four integers
//! up to the scheme's intrinsic (bounded, reversible-in-structure) rounding,
//! and the full transform pair is exactly invertible at the precision the
//! coder retains.

/// Block edge length (ZFP always uses 4).
pub const BLOCK_EDGE: usize = 4;

/// Forward lifting of four coefficients (in place).
///
/// Intermediates are computed in 128-bit arithmetic: the transform's output
/// magnitudes never exceed the inputs' (the matrix rows have unit ∞-norm),
/// but individual lifting steps can transiently exceed the 64-bit range when
/// the inputs use the full 62-bit fixed-point width.
#[inline]
pub fn fwd_lift(v: &mut [i64; 4]) {
    let mut x = v[0] as i128;
    let mut y = v[1] as i128;
    let mut z = v[2] as i128;
    let mut w = v[3] as i128;
    // Non-orthogonal transform from the ZFP specification:
    //        ( 4  4  4  4) (x)
    // 1/16 * ( 5  1 -1 -5) (y)
    //        (-4  4  4 -4) (z)
    //        (-2  6 -6  2) (w)
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    *v = [x as i64, y as i64, z as i64, w as i64];
}

/// Inverse lifting of four coefficients (in place); exact inverse of
/// [`fwd_lift`] whenever the forward pass's floor divisions were exact.
#[inline]
pub fn inv_lift(v: &mut [i64; 4]) {
    let mut x = v[0] as i128;
    let mut y = v[1] as i128;
    let mut z = v[2] as i128;
    let mut w = v[3] as i128;
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    *v = [x as i64, y as i64, z as i64, w as i64];
}

/// Apply [`fwd_lift`] along one axis of a 4^d block stored in local raster
/// order (`x` fastest).  `dims` is the block dimensionality (1–3).
pub fn fwd_xform(block: &mut [i64], dims: usize) {
    match dims {
        1 => {
            let mut v = [block[0], block[1], block[2], block[3]];
            fwd_lift(&mut v);
            block[..4].copy_from_slice(&v);
        }
        2 => {
            // Along x (rows), then along y (columns).
            for y in 0..4 {
                lift_strided(block, y * 4, 1, true);
            }
            for x in 0..4 {
                lift_strided(block, x, 4, true);
            }
        }
        _ => {
            for z in 0..4 {
                for y in 0..4 {
                    lift_strided(block, (z * 4 + y) * 4, 1, true);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    lift_strided(block, z * 16 + x, 4, true);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    lift_strided(block, y * 4 + x, 16, true);
                }
            }
        }
    }
}

/// Inverse of [`fwd_xform`] (axes visited in reverse order).
pub fn inv_xform(block: &mut [i64], dims: usize) {
    match dims {
        1 => {
            let mut v = [block[0], block[1], block[2], block[3]];
            inv_lift(&mut v);
            block[..4].copy_from_slice(&v);
        }
        2 => {
            for x in 0..4 {
                lift_strided(block, x, 4, false);
            }
            for y in 0..4 {
                lift_strided(block, y * 4, 1, false);
            }
        }
        _ => {
            for y in 0..4 {
                for x in 0..4 {
                    lift_strided(block, y * 4 + x, 16, false);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    lift_strided(block, z * 16 + x, 4, false);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    lift_strided(block, (z * 4 + y) * 4, 1, false);
                }
            }
        }
    }
}

#[inline]
fn lift_strided(block: &mut [i64], base: usize, stride: usize, forward: bool) {
    let mut v = [
        block[base],
        block[base + stride],
        block[base + 2 * stride],
        block[base + 3 * stride],
    ];
    if forward {
        fwd_lift(&mut v);
    } else {
        inv_lift(&mut v);
    }
    block[base] = v[0];
    block[base + stride] = v[1];
    block[base + 2 * stride] = v[2];
    block[base + 3 * stride] = v[3];
}

/// Total-sequency permutation of block coefficients: indices of the 4^d block
/// ordered by the sum of their local coordinates (low-frequency coefficients
/// first), matching the intent of ZFP's `PERM` tables.  The same permutation
/// is used by encoder and decoder.
pub fn sequency_permutation(dims: usize) -> Vec<usize> {
    let n = BLOCK_EDGE.pow(dims as u32);
    let mut indices: Vec<usize> = (0..n).collect();
    let coords = |i: usize| -> (usize, usize, usize) {
        match dims {
            1 => (i, 0, 0),
            2 => (i % 4, i / 4, 0),
            _ => (i % 4, (i / 4) % 4, i / 16),
        }
    };
    indices.sort_by_key(|&i| {
        let (x, y, z) = coords(i);
        (x + y + z, z, y, x)
    });
    indices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lift_pair_is_exact_on_aligned_values() {
        // The lifting steps use arithmetic right shifts; when every
        // intermediate division is exact (values with enough trailing zero
        // bits) the inverse reproduces the input bit-for-bit.
        let cases: Vec<[i64; 4]> = vec![
            [0, 0, 0, 0],
            [1 << 8, 2 << 8, 3 << 8, 4 << 8],
            [-1000 << 10, 500 << 10, -250 << 10, 125 << 10],
            [
                (i32::MAX as i64) << 8,
                (i32::MIN as i64) << 8,
                7 << 8,
                -7 << 8,
            ],
            [1 << 40, -(1 << 41), 1 << 39, -(1 << 38)],
        ];
        for case in cases {
            let mut v = case;
            fwd_lift(&mut v);
            inv_lift(&mut v);
            assert_eq!(v, case, "lift roundtrip failed for {case:?}");
        }
    }

    #[test]
    fn lift_roundtrip_error_is_tiny_for_arbitrary_values() {
        // For unaligned values the floor divisions may drop low bits, exactly
        // as in ZFP; the resulting error is a few ULPs of the integer
        // representation, far below any quantization level the coder keeps.
        for a in -4i64..4 {
            for b in -4i64..4 {
                for c in -4i64..4 {
                    for d in -4i64..4 {
                        let orig = [a * 3, b * 5, c * 7, d * 11];
                        let mut v = orig;
                        fwd_lift(&mut v);
                        inv_lift(&mut v);
                        for (x, y) in v.iter().zip(orig.iter()) {
                            assert!((x - y).abs() <= 4, "{orig:?} -> {v:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn xform_roundtrip_1d_2d_3d() {
        for dims in 1..=3usize {
            let n = BLOCK_EDGE.pow(dims as u32);
            let original: Vec<i64> = (0..n as i64).map(|i| (i * 97 - 31) << 20).collect();
            let mut block = original.clone();
            fwd_xform(&mut block, dims);
            assert_ne!(
                block, original,
                "transform should change the data (d={dims})"
            );
            inv_xform(&mut block, dims);
            for (a, b) in block.iter().zip(original.iter()) {
                // Values are multiples of 2^20: the roundtrip is exact except
                // possibly for a handful of low bits introduced per axis.
                assert!((a - b).abs() <= 16, "dims={dims}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn smooth_block_energy_compacts_into_low_coefficients() {
        // A linear ramp should end up with most energy in the first
        // (low-sequency) coefficients after the transform.
        let mut block: Vec<i64> = (0..64).map(|i| (i as i64) << 30).collect();
        fwd_xform(&mut block, 3);
        let perm = sequency_permutation(3);
        let first: i64 = perm[..8].iter().map(|&i| block[i].abs()).sum();
        let last: i64 = perm[56..].iter().map(|&i| block[i].abs()).sum();
        assert!(first > last, "first={first} last={last}");
    }

    #[test]
    fn sequency_permutation_is_a_permutation() {
        for dims in 1..=3usize {
            let perm = sequency_permutation(dims);
            let n = BLOCK_EDGE.pow(dims as u32);
            assert_eq!(perm.len(), n);
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
            // The DC coefficient (index 0) always comes first.
            assert_eq!(perm[0], 0);
        }
    }
}
