//! A ZFP-like transform-based lossy compressor with fixed-accuracy and
//! fixed-rate modes.
//!
//! The codec follows the structure of ZFP 0.5 as described in the FRaZ paper
//! (§II-A2 and §III):
//!
//! 1. the grid is partitioned into 4^d blocks ([`block`]),
//! 2. each block is aligned to a common power-of-two exponent and converted
//!    to 62-bit fixed point,
//! 3. a separable integer lifting transform decorrelates the block
//!    ([`transform`]),
//! 4. coefficients are reordered by total sequency, mapped to negabinary and
//!    coded one bit plane at a time with group testing ([`coder`]).
//!
//! Two rate-control modes are provided because the FRaZ evaluation compares
//! them directly (Figs 1, 9, 10):
//!
//! * [`ZfpMode::FixedAccuracy`] — bit planes below
//!   `⌊log2(tolerance)⌋` are discarded.  The flooring makes the achievable
//!   compression ratios a step function of the tolerance, which is exactly
//!   why FRaZ sometimes cannot hit a requested ratio with ZFP (paper
//!   §VI-B3).
//! * [`ZfpMode::FixedRate`] — every block gets the same bit budget, giving
//!   precise ratio control and random access but visibly worse quality at
//!   the same ratio.
//!
//! # Example
//!
//! ```
//! use fraz_data::{Dataset, Dims};
//! use fraz_zfp::{compress, decompress, ZfpConfig, ZfpMode};
//!
//! let values: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.02).cos()).collect();
//! let original = Dataset::from_f32("demo", "wave", 0, Dims::d3(16, 16, 16), values);
//! let config = ZfpConfig { mode: ZfpMode::FixedAccuracy { tolerance: 1e-3 } };
//! let packed = compress(&original, &config).unwrap();
//! let restored = decompress(&packed).unwrap();
//! let max_err = original.values_f64().iter().zip(restored.values_f64().iter())
//!     .map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
//! assert!(max_err <= 1e-3);
//! ```

pub mod block;
pub mod coder;
pub mod transform;

use fraz_data::{DType, DataBuffer, Dataset, Dims};
use fraz_lossless::bitio::{BitReader, BitWriter};
use fraz_lossless::bytesio::{ByteReader, ByteWriter};

use transform::BLOCK_EDGE;

/// Stream magic ("FZP1").
const MAGIC: u32 = 0x465A_5031;
/// Format version.
const VERSION: u8 = 1;
/// Bits used to store a block exponent.
const EBITS: u32 = 12;
/// Bias added to block exponents before storage.
const EBIAS: i32 = 2048;
/// Effectively unlimited per-block budget for the accuracy mode.
const UNLIMITED_BITS: u64 = 1 << 40;

/// Rate-control mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Error-bounded ("accuracy") mode: absolute error at most `tolerance`.
    FixedAccuracy {
        /// Absolute error tolerance (must be positive and finite).
        tolerance: f64,
    },
    /// Fixed-rate mode: every block is coded with exactly
    /// `bits_per_value * 4^d` bits.
    FixedRate {
        /// Average number of bits per value (0.5 ..= 64).
        bits_per_value: f64,
    },
}

/// Compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    /// Rate-control mode.
    pub mode: ZfpMode,
}

impl ZfpConfig {
    /// Fixed-accuracy configuration with the given tolerance.
    pub fn accuracy(tolerance: f64) -> Self {
        Self {
            mode: ZfpMode::FixedAccuracy { tolerance },
        }
    }

    /// Fixed-rate configuration with the given bits-per-value budget.
    pub fn rate(bits_per_value: f64) -> Self {
        Self {
            mode: ZfpMode::FixedRate { bits_per_value },
        }
    }

    fn validate(&self) -> Result<(), ZfpError> {
        match self.mode {
            ZfpMode::FixedAccuracy { tolerance } => {
                if !(tolerance > 0.0 && tolerance.is_finite()) {
                    return Err(ZfpError::InvalidConfig(format!(
                        "tolerance must be positive and finite, got {tolerance}"
                    )));
                }
            }
            ZfpMode::FixedRate { bits_per_value } => {
                if !(0.1..=64.0).contains(&bits_per_value) {
                    return Err(ZfpError::InvalidConfig(format!(
                        "bits per value must be in [0.1, 64], got {bits_per_value}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Errors produced by the ZFP-like codec.
#[derive(Debug, Clone, PartialEq)]
pub enum ZfpError {
    /// The configuration is invalid.
    InvalidConfig(String),
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
}

impl std::fmt::Display for ZfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZfpError::InvalidConfig(msg) => write!(f, "invalid ZFP configuration: {msg}"),
            ZfpError::Corrupt(msg) => write!(f, "corrupt ZFP stream: {msg}"),
        }
    }
}

impl std::error::Error for ZfpError {}

impl From<fraz_lossless::CodingError> for ZfpError {
    fn from(e: fraz_lossless::CodingError) -> Self {
        ZfpError::Corrupt(e.to_string())
    }
}

fn pad_dims(dims: &Dims) -> ([usize; 3], usize) {
    let d = dims.as_slice();
    match d.len() {
        1 => ([1, 1, d[0]], 1),
        2 => ([1, d[0], d[1]], 2),
        3 => ([d[0], d[1], d[2]], 3),
        _ => {
            let lead: usize = d[..d.len() - 2].iter().product();
            ([lead, d[d.len() - 2], d[d.len() - 1]], 3)
        }
    }
}

/// Per-block precision for the accuracy mode: ZFP's
/// `min(maxprec, max(0, emax - minexp + 2·(dims+1)))` with
/// `minexp = ⌊log2 tolerance⌋` — the flooring responsible for the step-like
/// ratio behaviour.
fn accuracy_precision(emax: i32, tolerance: f64, dims: usize) -> u32 {
    let minexp = tolerance.log2().floor() as i32;
    let prec = emax - minexp + 2 * (dims as i32 + 1);
    prec.clamp(0, coder::INT_PRECISION as i32) as u32
}

fn mode_tag(mode: &ZfpMode) -> (u8, f64) {
    match *mode {
        ZfpMode::FixedAccuracy { tolerance } => (0, tolerance),
        ZfpMode::FixedRate { bits_per_value } => (1, bits_per_value),
    }
}

fn mode_from_tag(tag: u8, param: f64) -> Result<ZfpMode, ZfpError> {
    match tag {
        0 => Ok(ZfpMode::FixedAccuracy { tolerance: param }),
        1 => Ok(ZfpMode::FixedRate {
            bits_per_value: param,
        }),
        other => Err(ZfpError::Corrupt(format!("unknown mode tag {other}"))),
    }
}

/// Per-block bit budget (including the zero-flag and exponent header) for
/// the given mode.
fn block_bit_budget(mode: &ZfpMode, block_dims: usize) -> u64 {
    match *mode {
        ZfpMode::FixedAccuracy { .. } => UNLIMITED_BITS,
        ZfpMode::FixedRate { bits_per_value } => {
            let points = BLOCK_EDGE.pow(block_dims as u32) as f64;
            ((bits_per_value * points).round() as u64).max(1 + EBITS as u64)
        }
    }
}

/// Compress a dataset.
pub fn compress(dataset: &Dataset, config: &ZfpConfig) -> Result<Vec<u8>, ZfpError> {
    config.validate()?;
    let (dims3, block_dims) = pad_dims(&dataset.dims);
    let values = dataset.values_f64();
    let perm = transform::sequency_permutation(block_dims);
    let budget = block_bit_budget(&config.mode, block_dims);

    let mut header = ByteWriter::with_capacity(64);
    header.put_u32(MAGIC);
    header.put_u8(VERSION);
    header.put_u8(match dataset.dtype() {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    header.put_u8(dataset.dims.ndims() as u8);
    for &d in dataset.dims.as_slice() {
        header.put_u64(d as u64);
    }
    header.put_u64(dataset.timestep as u64);
    header.put_str(&dataset.application);
    header.put_str(&dataset.field);
    let (tag, param) = mode_tag(&config.mode);
    header.put_u8(tag);
    header.put_f64(param);

    let mut w = BitWriter::with_capacity(values.len());
    for origin in block::block_origins(dims3) {
        let start_bits = w.bit_len() as u64;
        let raw = block::gather(&values, dims3, origin, block_dims);
        match block::block_exponent(&raw) {
            None => {
                // Empty (all-zero) block.
                w.write_bit(false);
            }
            Some(emax) => {
                w.write_bit(true);
                w.write_bits((emax + EBIAS) as u64, EBITS);
                let mut ints = block::to_ints(&raw, emax);
                transform::fwd_xform(&mut ints, block_dims);
                let reordered: Vec<u64> =
                    perm.iter().map(|&i| coder::int_to_uint(ints[i])).collect();
                let max_prec = match config.mode {
                    ZfpMode::FixedAccuracy { tolerance } => {
                        accuracy_precision(emax, tolerance, block_dims)
                    }
                    ZfpMode::FixedRate { .. } => coder::INT_PRECISION,
                };
                let remaining = budget.saturating_sub(1 + EBITS as u64);
                coder::encode_ints(&mut w, &reordered, remaining, max_prec);
            }
        }
        if matches!(config.mode, ZfpMode::FixedRate { .. }) {
            // Pad so every block occupies exactly `budget` bits.
            let written = w.bit_len() as u64 - start_bits;
            if written < budget {
                w.write_run(false, (budget - written) as usize);
            }
        }
    }

    let mut out = header.into_bytes();
    out.extend_from_slice(&w.into_bytes());
    Ok(out)
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Dataset, ZfpError> {
    let mut r = ByteReader::new(data);
    let magic = r.get_u32()?;
    if magic != MAGIC {
        return Err(ZfpError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(ZfpError::Corrupt(format!("unsupported version {version}")));
    }
    let dtype = match r.get_u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(ZfpError::Corrupt(format!("unknown dtype tag {other}"))),
    };
    let ndims = r.get_u8()? as usize;
    if ndims == 0 || ndims > 4 {
        return Err(ZfpError::Corrupt(format!("invalid dimensionality {ndims}")));
    }
    let mut axes = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = r.get_u64()? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(ZfpError::Corrupt(format!("invalid axis length {d}")));
        }
        axes.push(d);
    }
    let dims = Dims::new(&axes);
    let timestep = r.get_u64()? as usize;
    let application = r.get_str()?;
    let field = r.get_str()?;
    let mode = mode_from_tag(r.get_u8()?, r.get_f64()?)?;
    let config = ZfpConfig { mode };
    config
        .validate()
        .map_err(|e| ZfpError::Corrupt(format!("invalid header parameters: {e}")))?;

    let (dims3, block_dims) = pad_dims(&dims);
    let perm = transform::sequency_permutation(block_dims);
    let budget = block_bit_budget(&mode, block_dims);
    let n = dims.len();
    let mut values = vec![0.0f64; n];
    let mut bits = BitReader::new(r.rest());

    for origin in block::block_origins(dims3) {
        let start_bits = bits.bits_consumed() as u64;
        let nonzero = bits.read_bit()?;
        if nonzero {
            let emax = bits.read_bits(EBITS)? as i64 as i32 - EBIAS;
            if !(-2000..=2000).contains(&emax) {
                return Err(ZfpError::Corrupt(format!(
                    "implausible block exponent {emax}"
                )));
            }
            let max_prec = match mode {
                ZfpMode::FixedAccuracy { tolerance } => {
                    accuracy_precision(emax, tolerance, block_dims)
                }
                ZfpMode::FixedRate { .. } => coder::INT_PRECISION,
            };
            let remaining = budget.saturating_sub(1 + EBITS as u64);
            let size = BLOCK_EDGE.pow(block_dims as u32);
            let (reordered, _) = coder::decode_ints(&mut bits, size, remaining, max_prec)?;
            let mut ints = vec![0i64; size];
            for (slot, &src) in perm.iter().enumerate() {
                ints[src] = coder::uint_to_int(reordered[slot]);
            }
            transform::inv_xform(&mut ints, block_dims);
            let raw = block::from_ints(&ints, emax);
            block::scatter(&raw, &mut values, dims3, origin, block_dims);
        }
        if matches!(mode, ZfpMode::FixedRate { .. }) {
            // Skip the block's padding so the next block starts on budget.
            let consumed = bits.bits_consumed() as u64 - start_bits;
            if consumed < budget {
                for _ in 0..(budget - consumed) {
                    bits.read_bit()?;
                }
            }
        }
    }

    // Clamp tiny fixed-point noise toward the original precision.
    let buffer = match dtype {
        DType::F32 => DataBuffer::F32(values.iter().map(|&v| v as f32).collect()),
        DType::F64 => DataBuffer::F64(values),
    };
    Ok(Dataset {
        application,
        field,
        timestep,
        dims,
        buffer,
    })
}

/// The compression ratio the fixed-rate mode will deliver for a dataset of
/// the given element type, ignoring the (constant) header.
pub fn fixed_rate_ratio(bits_per_value: f64, dtype: DType) -> f64 {
    dtype.byte_width() as f64 * 8.0 / bits_per_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::Dims;

    fn wave(dims: Dims, scale: f64) -> Dataset {
        let n = dims.len();
        let values: Vec<f32> = (0..n)
            .map(|i| {
                let x = i as f64;
                ((x * 0.021).sin() * 3.0 + (x * 0.0013).cos() * 10.0) as f32 * scale as f32
            })
            .collect();
        Dataset::from_f32("test", "wave", 0, dims, values)
    }

    fn max_error(a: &Dataset, b: &Dataset) -> f64 {
        a.values_f64()
            .iter()
            .zip(b.values_f64().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn accuracy_mode_respects_tolerance_1d_2d_3d() {
        for dims in [Dims::d1(3000), Dims::d2(50, 61), Dims::d3(13, 17, 19)] {
            let original = wave(dims, 1.0);
            for tol in [1e-1, 1e-3, 1e-6] {
                let packed = compress(&original, &ZfpConfig::accuracy(tol)).unwrap();
                let restored = decompress(&packed).unwrap();
                let err = max_error(&original, &restored);
                assert!(err <= tol, "dims {:?} tol {tol}: err {err}", original.dims);
            }
        }
    }

    #[test]
    fn accuracy_mode_compresses_smooth_data() {
        // A genuinely smooth 3-D field (smooth along every axis, unlike the
        // index-based `wave` helper) should compress well at a loose bound.
        let (nz, ny, nx) = (16usize, 32usize, 32usize);
        let mut values = Vec::with_capacity(nz * ny * nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    values.push(
                        ((x as f32 * 0.2).sin() + (y as f32 * 0.15).cos()) * 5.0 + z as f32 * 0.1,
                    );
                }
            }
        }
        let original = Dataset::from_f32("t", "smooth", 0, Dims::d3(nz, ny, nx), values);
        let packed = compress(&original, &ZfpConfig::accuracy(1e-2)).unwrap();
        let ratio = original.byte_size() as f64 / packed.len() as f64;
        assert!(ratio > 4.0, "ratio {ratio:.2}");
        let restored = decompress(&packed).unwrap();
        assert!(max_error(&original, &restored) <= 1e-2);
    }

    #[test]
    fn accuracy_ratio_is_a_step_function_of_tolerance() {
        // Tolerances within the same power of two produce identical streams
        // (the minexp flooring), which is the behaviour FRaZ has to cope
        // with.
        let original = wave(Dims::d3(12, 12, 12), 1.0);
        let a = compress(&original, &ZfpConfig::accuracy(0.010)).unwrap();
        let b = compress(&original, &ZfpConfig::accuracy(0.013)).unwrap();
        let c = compress(&original, &ZfpConfig::accuracy(0.020)).unwrap();
        assert_eq!(a.len(), b.len(), "same power of two => same size");
        assert!(c.len() <= a.len());
    }

    #[test]
    fn fixed_rate_mode_hits_its_budget_exactly() {
        let original = wave(Dims::d3(16, 16, 16), 1.0);
        for bpv in [2.0, 4.0, 8.0] {
            let packed = compress(&original, &ZfpConfig::rate(bpv)).unwrap();
            let payload_bits = (packed.len() as f64 - 60.0) * 8.0; // minus header estimate
            let expected_bits = bpv * original.len() as f64;
            let rel = (payload_bits - expected_bits).abs() / expected_bits;
            assert!(
                rel < 0.05,
                "bpv {bpv}: payload {payload_bits} vs {expected_bits}"
            );
            // And it must still decompress to the right shape.
            let restored = decompress(&packed).unwrap();
            assert_eq!(restored.len(), original.len());
        }
    }

    #[test]
    fn fixed_rate_quality_improves_with_rate() {
        let original = wave(Dims::d3(16, 16, 16), 100.0);
        let low = decompress(&compress(&original, &ZfpConfig::rate(2.0)).unwrap()).unwrap();
        let high = decompress(&compress(&original, &ZfpConfig::rate(16.0)).unwrap()).unwrap();
        assert!(max_error(&original, &high) < max_error(&original, &low));
    }

    #[test]
    fn fixed_rate_is_worse_than_accuracy_at_same_ratio() {
        // The core observation of the paper's Fig. 1: at an equal compression
        // ratio the accuracy mode reconstructs better than the rate mode.
        let original = wave(Dims::d3(16, 16, 16), 50.0);
        let accuracy_packed = compress(&original, &ZfpConfig::accuracy(0.05)).unwrap();
        let achieved_bpv = accuracy_packed.len() as f64 * 8.0 / original.len() as f64;
        let rate_packed = compress(&original, &ZfpConfig::rate(achieved_bpv)).unwrap();
        let acc_err = max_error(&original, &decompress(&accuracy_packed).unwrap());
        let rate_err = max_error(&original, &decompress(&rate_packed).unwrap());
        assert!(
            rate_err > acc_err,
            "rate-mode error {rate_err} should exceed accuracy-mode error {acc_err}"
        );
    }

    #[test]
    fn zero_field_compresses_to_almost_nothing() {
        let original = Dataset::from_f32("t", "zero", 0, Dims::d3(8, 8, 8), vec![0.0; 512]);
        let packed = compress(&original, &ZfpConfig::accuracy(1e-6)).unwrap();
        assert!(packed.len() < 80, "{}", packed.len());
        let restored = decompress(&packed).unwrap();
        assert_eq!(restored.values_f64(), vec![0.0; 512]);
    }

    #[test]
    fn f64_datasets_roundtrip() {
        let values: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.01).sin() * 1e8).collect();
        let original = Dataset::from_f64("t", "f64", 3, Dims::d1(2000), values);
        let packed = compress(&original, &ZfpConfig::accuracy(1.0)).unwrap();
        let restored = decompress(&packed).unwrap();
        assert_eq!(restored.dtype(), DType::F64);
        assert!(max_error(&original, &restored) <= 1.0);
        assert_eq!(restored.timestep, 3);
        assert_eq!(restored.field, "f64");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let original = wave(Dims::d1(64), 1.0);
        assert!(compress(&original, &ZfpConfig::accuracy(0.0)).is_err());
        assert!(compress(&original, &ZfpConfig::accuracy(f64::NAN)).is_err());
        assert!(compress(&original, &ZfpConfig::rate(0.0)).is_err());
        assert!(compress(&original, &ZfpConfig::rate(1000.0)).is_err());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let original = wave(Dims::d2(20, 20), 1.0);
        let packed = compress(&original, &ZfpConfig::accuracy(1e-3)).unwrap();
        let mut bad = packed.clone();
        bad[0] ^= 0xff;
        assert!(decompress(&bad).is_err());
        assert!(decompress(&packed[..10]).is_err());
        assert!(decompress(&[]).is_err());
    }

    #[test]
    fn fixed_rate_ratio_helper() {
        assert_eq!(fixed_rate_ratio(4.0, DType::F32), 8.0);
        assert_eq!(fixed_rate_ratio(8.0, DType::F64), 8.0);
    }
}
