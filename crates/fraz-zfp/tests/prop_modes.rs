//! Property tests for the ZFP-like codec: the fixed-accuracy mode must
//! respect its tolerance, the fixed-rate mode must hit its size budget, and
//! decompression must never panic.

use proptest::prelude::*;

use fraz_data::{Dataset, Dims};
use fraz_zfp::{compress, decompress, ZfpConfig, ZfpMode};

fn max_error(a: &Dataset, b: &Dataset) -> f64 {
    a.values_f64()
        .iter()
        .zip(b.values_f64().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn smooth3d(nz: usize, ny: usize, nx: usize, amp: f32, fx: f32, fy: f32) -> Vec<f32> {
    let mut values = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                values
                    .push(amp * ((x as f32 * fx).sin() + (y as f32 * fy).cos() + z as f32 * 0.05));
            }
        }
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn accuracy_tolerance_holds_on_smooth_fields(
        amp in 0.01f32..1e4,
        fx in 0.01f32..0.8,
        fy in 0.01f32..0.8,
        tol_exp in -6i32..2,
    ) {
        let tol = 10f64.powi(tol_exp);
        let values = smooth3d(8, 12, 12, amp, fx, fy);
        let original = Dataset::from_f32("prop", "smooth", 0, Dims::d3(8, 12, 12), values);
        let packed = compress(&original, &ZfpConfig::accuracy(tol)).unwrap();
        let restored = decompress(&packed).unwrap();
        prop_assert!(max_error(&original, &restored) <= tol,
            "tol {} err {}", tol, max_error(&original, &restored));
        prop_assert_eq!(&restored.dims, &original.dims);
    }

    #[test]
    fn accuracy_tolerance_holds_on_arbitrary_finite_data(
        values in proptest::collection::vec(proptest::num::f32::NORMAL, 64..256),
        tol_exp in -4i32..4,
    ) {
        // Clamp to a sane magnitude so the tolerance is meaningful relative
        // to the data (f32::NORMAL can produce 1e38).
        let values: Vec<f32> = values.iter().map(|v| v.clamp(-1e6, 1e6)).collect();
        let n = values.len();
        let tol = 10f64.powi(tol_exp);
        let original = Dataset::from_f32("prop", "rand", 0, Dims::d1(n), values);
        let packed = compress(&original, &ZfpConfig::accuracy(tol)).unwrap();
        let restored = decompress(&packed).unwrap();
        prop_assert!(max_error(&original, &restored) <= tol,
            "tol {} err {}", tol, max_error(&original, &restored));
    }

    #[test]
    fn fixed_rate_size_scales_with_rate(
        amp in 0.1f32..1e3,
        bpv in 1.0f64..24.0,
    ) {
        let values = smooth3d(8, 8, 8, amp, 0.3, 0.2);
        let original = Dataset::from_f32("prop", "rate", 0, Dims::d3(8, 8, 8), values);
        let packed = compress(&original, &ZfpConfig { mode: ZfpMode::FixedRate { bits_per_value: bpv } }).unwrap();
        // Payload = rate * points (within rounding and a small header).
        let expected = bpv * original.len() as f64 / 8.0;
        prop_assert!((packed.len() as f64) < expected + 128.0);
        prop_assert!((packed.len() as f64) > expected * 0.8);
        let restored = decompress(&packed).unwrap();
        prop_assert_eq!(restored.len(), original.len());
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
    }
}

#[test]
fn accuracy_mode_on_synthetic_nyx_temperature() {
    let app = fraz_data::synthetic::nyx(16, 16, 16, 2, 9);
    let original = app.field("temperature", 0);
    let stats = original.stats();
    let tol = stats.value_range() * 1e-3;
    let packed = compress(&original, &ZfpConfig::accuracy(tol)).unwrap();
    let restored = decompress(&packed).unwrap();
    assert!(max_error(&original, &restored) <= tol);
    assert!(packed.len() < original.byte_size());
}
