//! # fraz-tune — persistent cross-run search seeding
//!
//! FRaZ's search converges, the process exits, and the next run starts
//! from scratch — even on the very same field.  This crate closes that
//! loop: converged bounds are remembered in a small on-disk cache keyed by
//! *what was searched* (codec + canonical options signature + search
//! target + a content [`fingerprint()`] of the data), and the next search
//! over a matching field starts at the remembered bound.  Because every
//! hinted search verifies its probe before accepting it, a stale or
//! colliding entry costs one evaluation and falls back to the normal
//! bracketing race — the cache can make a run faster, never wrong.
//!
//! [`CachePredictor`] adapts the cache to `fraz-core`'s
//! [`BoundPredictor`] seeding API, so the orchestrator, the quality
//! search, the store writer, and the online controller can all share one
//! cache:
//!
//! ```
//! use std::sync::Arc;
//! use fraz_core::{FixedRatioSearch, SearchConfig};
//! use fraz_tune::CachePredictor;
//!
//! let dir = std::env::temp_dir().join(format!("fraz-tune-doc-{}", std::process::id()));
//! let predictor = CachePredictor::open(&dir).unwrap();
//! let dataset = fraz_data::synthetic::hurricane(6, 12, 12, 1, 7).field("TCf", 0);
//! let compressor = fraz_pressio::registry::build_default("sz").unwrap();
//! let search = FixedRatioSearch::new(compressor, SearchConfig::new(8.0, 0.2));
//!
//! let cold = search.run_with_predictor(&dataset, &predictor);
//! let warm = search.run_with_predictor(&dataset, &predictor);
//! if cold.feasible {
//!     // The second run starts from the first run's answer.
//!     assert!(warm.evaluations <= 2);
//! }
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod cache;
pub mod fingerprint;

pub use cache::{CacheStats, TuneCache, CACHE_FILE};
pub use fingerprint::fingerprint;

use std::io;
use std::path::Path;
use std::sync::Arc;

use fraz_core::{BoundPredictor, HintQuery, HintSource, SearchHint};

/// A [`BoundPredictor`] backed by a shared [`TuneCache`].
///
/// `predict` proposes the cached bound (as a converged
/// [`HintSource::TuneCache`] hint) when the query's key is present;
/// `observe` records every bound that met its objective.  Clone-cheap via
/// the inner [`Arc`]; share one instance across fields, chunks, and runs.
pub struct CachePredictor {
    cache: Arc<TuneCache>,
}

impl CachePredictor {
    /// Wrap an already opened cache.
    pub fn new(cache: Arc<TuneCache>) -> Self {
        Self { cache }
    }

    /// Open (creating if needed) the cache in directory `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(Arc::new(TuneCache::open(dir)?)))
    }

    /// The shared cache (for stats reporting and explicit flushes).
    pub fn cache(&self) -> &Arc<TuneCache> {
        &self.cache
    }

    /// The cache key for one search query: codec, canonical options
    /// signature, canonical target string, content fingerprint.
    pub fn key(query: &HintQuery<'_>) -> String {
        format!(
            "{}|{}|{}|{:016x}",
            query.codec,
            query.codec_config,
            query.target,
            fingerprint(query.dataset)
        )
    }
}

impl BoundPredictor for CachePredictor {
    fn predict(&self, query: &HintQuery<'_>) -> Option<SearchHint> {
        self.cache
            .lookup(&Self::key(query))
            .map(|bound| SearchHint::converged(bound, HintSource::TuneCache))
    }

    fn observe(&self, query: &HintQuery<'_>, bound: f64, hit: bool) {
        // Only objective-meeting bounds are worth replaying (the same rule
        // Algorithm 3 applies to its in-run prediction).
        if hit {
            self.cache.record(Self::key(query), bound);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_core::{
        FixedQualitySearch, FixedRatioSearch, QualityMetric, QualitySearchConfig, SearchConfig,
    };
    use fraz_data::synthetic;
    use fraz_pressio::registry;

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fraz-tune-lib-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn repeated_ratio_search_converges_in_at_most_two_evaluations() {
        let dir = scratch_dir("ratio");
        let dataset = synthetic::hurricane(8, 16, 16, 1, 42).field("CLOUDf", 0);
        let config = SearchConfig {
            threads: 1,
            ..SearchConfig::new(8.0, 0.2)
        };
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);

        let predictor = CachePredictor::open(&dir).unwrap();
        let cold = search.run_with_predictor(&dataset, &predictor);
        assert!(cold.feasible);
        assert!(cold.retrained && cold.evaluations > 2);
        predictor.cache().flush().unwrap();

        // A fresh process: reopen the cache from disk.
        let predictor = CachePredictor::open(&dir).unwrap();
        let warm = search.run_with_predictor(&dataset, &predictor);
        assert!(warm.feasible && !warm.retrained);
        assert!(
            warm.evaluations <= 2,
            "warm run took {} evaluations",
            warm.evaluations
        );
        assert_eq!(warm.hint.unwrap().source, HintSource::TuneCache);
        let stats = predictor.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quality_search_and_different_targets_do_not_collide() {
        let dir = scratch_dir("quality");
        let dataset = synthetic::hurricane(8, 16, 16, 1, 43).field("TCf", 0);
        let make = |psnr: f64| {
            let config = QualitySearchConfig {
                max_iterations: 20,
                ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(psnr))
            };
            FixedQualitySearch::new(registry::build_default("sz").unwrap(), config)
        };

        let predictor = CachePredictor::open(&dir).unwrap();
        let cold = make(60.0).run_with_predictor(&dataset, &predictor);
        assert!(cold.satisfiable);
        let warm = make(60.0).run_with_predictor(&dataset, &predictor);
        assert!(warm.satisfiable);
        assert_eq!(warm.evaluations, 1, "cached quality bound re-verifies");
        assert_eq!(warm.hint.unwrap().source, HintSource::TuneCache);
        assert!(warm.best.quality.as_ref().unwrap().psnr >= 60.0);

        // A different PSNR target is a different key: no false hit (the
        // analytic model seeds it instead of the cache).
        let other = make(80.0).run_with_predictor(&dataset, &predictor);
        assert!(other.satisfiable);
        if let Some(report) = &other.hint {
            assert_ne!(report.source, HintSource::TuneCache);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_codec_options_change_the_key() {
        let dataset = synthetic::hurricane(6, 12, 12, 1, 44).field("Pf", 0);
        let config = SearchConfig::new(8.0, 0.2);
        let search_a =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), config.clone())
                .with_codec_config("sz:block_size=8");
        let qa = search_a.hint_query(&dataset);
        let search_b = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config)
            .with_codec_config("sz:block_size=16");
        let qb = search_b.hint_query(&dataset);
        assert_ne!(CachePredictor::key(&qa), CachePredictor::key(&qb));
    }
}
