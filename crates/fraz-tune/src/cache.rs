//! The persistent bound cache: a JSONL file fronted by a bounded in-memory
//! map.
//!
//! One cache instance owns one `fraz-tune.jsonl` inside its directory.
//! Entries are loaded tolerantly — a corrupted or truncated line (a crash
//! mid-append, a partial copy) is skipped and counted, never a panic, so a
//! damaged cache degrades to cold searches instead of taking the run down.
//! Persistence is atomic: [`TuneCache::flush`] writes a temporary file in
//! the same directory and renames it over the old one, so readers never see
//! a half-written cache.

use std::collections::HashMap;
use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// File name of the cache inside its directory.
pub const CACHE_FILE: &str = "fraz-tune.jsonl";

/// Default capacity of the in-memory front (entries, not bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One persisted entry: a converged bound for one (codec, config, target,
/// fingerprint) key.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    key: String,
    bound: f64,
}

/// Lookup/store counters, reported in CLI summaries and run tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable bound.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Bounds recorded (inserts and updates).
    pub stores: usize,
    /// Damaged lines skipped while loading the cache file.
    pub corrupt_lines: usize,
}

struct Slots {
    /// key → (bound, recency tick) — the LRU front.
    map: HashMap<String, (f64, u64)>,
    tick: u64,
}

/// Persistent cross-run tuning cache.  Shareable across threads: lookups
/// and stores take an internal lock, counters are atomic.
pub struct TuneCache {
    path: PathBuf,
    capacity: usize,
    slots: Mutex<Slots>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stores: AtomicUsize,
    corrupt_lines: AtomicUsize,
}

impl TuneCache {
    /// Open (creating if needed) the cache stored in directory `dir`.
    ///
    /// A missing cache file is an empty cache; a damaged one loads every
    /// intact line and counts the rest in
    /// [`CacheStats::corrupt_lines`].
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with_capacity(dir, DEFAULT_CAPACITY)
    }

    /// [`TuneCache::open`] with an explicit in-memory capacity.
    pub fn open_with_capacity(dir: impl AsRef<Path>, capacity: usize) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let cache = Self {
            path: dir.join(CACHE_FILE),
            capacity: capacity.max(1),
            slots: Mutex::new(Slots {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            stores: AtomicUsize::new(0),
            corrupt_lines: AtomicUsize::new(0),
        };
        cache.load()?;
        Ok(cache)
    }

    /// Path of the backing JSONL file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn load(&self) -> io::Result<()> {
        let file = match fs::File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut corrupt = 0usize;
        let mut slots = self.slots.lock().expect("tune cache lock");
        for line in BufReader::new(file).lines() {
            // An unreadable tail (truncation, invalid UTF-8) ends the load
            // but keeps everything read so far.
            let Ok(line) = line else {
                corrupt += 1;
                break;
            };
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Entry>(&line) {
                Ok(entry) if entry.bound.is_finite() && entry.bound > 0.0 => {
                    slots.tick += 1;
                    let tick = slots.tick;
                    slots.map.insert(entry.key, (entry.bound, tick));
                }
                // A parsed line with a nonsense bound is as corrupt as an
                // unparseable one.
                _ => corrupt += 1,
            }
        }
        Self::evict_to_capacity(&mut slots, self.capacity);
        drop(slots);
        self.corrupt_lines.store(corrupt, Ordering::Relaxed);
        Ok(())
    }

    fn evict_to_capacity(slots: &mut Slots, capacity: usize) {
        while slots.map.len() > capacity {
            if let Some(oldest) = slots
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
            {
                slots.map.remove(&oldest);
            } else {
                break;
            }
        }
    }

    /// The cached bound for `key`, refreshing its recency.
    pub fn lookup(&self, key: &str) -> Option<f64> {
        let mut slots = self.slots.lock().expect("tune cache lock");
        slots.tick += 1;
        let tick = slots.tick;
        match slots.map.get_mut(key) {
            Some((bound, recency)) => {
                *recency = tick;
                let bound = *bound;
                drop(slots);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bound)
            }
            None => {
                drop(slots);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Record a converged bound for `key` (ignored unless finite and
    /// positive).
    pub fn record(&self, key: impl Into<String>, bound: f64) {
        if !(bound.is_finite() && bound > 0.0) {
            return;
        }
        let mut slots = self.slots.lock().expect("tune cache lock");
        slots.tick += 1;
        let tick = slots.tick;
        slots.map.insert(key.into(), (bound, tick));
        Self::evict_to_capacity(&mut slots, self.capacity);
        drop(slots);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("tune cache lock").map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters accumulated since this instance opened.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt_lines: self.corrupt_lines.load(Ordering::Relaxed),
        }
    }

    /// Persist every entry atomically: write a uniquely-named temporary
    /// file in the cache directory, then rename it over the cache file.
    ///
    /// The temporary name carries the process id and a per-process
    /// sequence number, so *concurrent* flushes — two processes sharing
    /// one cache directory, or two instances in one process — can never
    /// truncate each other's in-flight file; the last rename wins and the
    /// cache file is always one flusher's complete snapshot.
    pub fn flush(&self) -> io::Result<()> {
        let entries: Vec<Entry> = {
            let slots = self.slots.lock().expect("tune cache lock");
            let mut sorted: Vec<(&String, &(f64, u64))> = slots.map.iter().collect();
            // Oldest first: on reload, later lines overwrite earlier ones,
            // so the freshest entries win even if the tail is truncated.
            sorted.sort_by_key(|(_, (_, tick))| *tick);
            sorted
                .into_iter()
                .map(|(key, (bound, _))| Entry {
                    key: key.clone(),
                    bound: *bound,
                })
                .collect()
        };
        static FLUSH_SEQ: AtomicUsize = AtomicUsize::new(0);
        let tmp = self.path.with_extension(format!(
            "jsonl.tmp-{}-{}",
            std::process::id(),
            FLUSH_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            {
                let mut file = fs::File::create(&tmp)?;
                for entry in &entries {
                    let line = serde_json::to_string(entry)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    writeln!(file, "{line}")?;
                }
                file.sync_all()?;
            }
            fs::rename(&tmp, &self.path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

impl Drop for TuneCache {
    fn drop(&mut self) {
        // Best effort: an explicit flush is the reliable path, but losing
        // fresh entries on an unwind beats losing them silently every run.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fraz-tune-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_through_flush_and_reopen() {
        let dir = scratch_dir("roundtrip");
        {
            let cache = TuneCache::open(&dir).unwrap();
            assert!(cache.is_empty());
            assert_eq!(cache.lookup("a"), None);
            cache.record("a", 1e-3);
            cache.record("b", 2e-3);
            cache.record("a", 5e-4); // update wins
            assert_eq!(cache.lookup("a"), Some(5e-4));
            cache.flush().unwrap();
            let stats = cache.stats();
            assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 3));
        }
        let reopened = TuneCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.lookup("a"), Some(5e-4));
        assert_eq!(reopened.lookup("b"), Some(2e-3));
        assert_eq!(reopened.stats().corrupt_lines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_and_truncated_lines_never_panic() {
        let dir = scratch_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CACHE_FILE),
            concat!(
                "{\"key\":\"good\",\"bound\":1e-3}\n",
                "not json at all\n",
                "{\"key\":\"bad-bound\",\"bound\":-4.0}\n",
                "{\"key\":\"nan\",\"bound\":null}\n",
                "{\"key\":\"trunc", // no closing brace, no newline
            ),
        )
        .unwrap();
        let cache = TuneCache::open(&dir).unwrap();
        // The intact entry survives; everything else degrades to a miss.
        assert_eq!(cache.lookup("good"), Some(1e-3));
        assert_eq!(cache.lookup("bad-bound"), None);
        assert_eq!(cache.len(), 1);
        assert!(cache.stats().corrupt_lines >= 3);
        // A flush repairs the file in place.
        cache.flush().unwrap();
        let reopened = TuneCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.stats().corrupt_lines, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_garbage_is_an_empty_cache_not_a_crash() {
        let dir = scratch_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CACHE_FILE), [0xFFu8, 0xFE, 0x00, 0x80, 0x99]).unwrap();
        let cache = TuneCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        assert!(cache.stats().corrupt_lines >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_front_is_bounded_and_evicts_oldest() {
        let dir = scratch_dir("lru");
        let cache = TuneCache::open_with_capacity(&dir, 3).unwrap();
        cache.record("a", 1e-3);
        cache.record("b", 1e-3);
        cache.record("c", 1e-3);
        assert_eq!(cache.lookup("a"), Some(1e-3)); // refresh `a`
        cache.record("d", 1e-3); // evicts `b`, the oldest
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup("b"), None);
        assert_eq!(cache.lookup("a"), Some(1e-3));
        assert_eq!(cache.lookup("d"), Some(1e-3));
        // Nonsense bounds are never stored.
        cache.record("e", f64::NAN);
        cache.record("f", 0.0);
        assert_eq!(cache.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
