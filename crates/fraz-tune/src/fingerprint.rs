//! Content fingerprinting: the cache-key component that identifies *what
//! data* a converged bound belongs to.
//!
//! The fingerprint folds together everything the bound→ratio/quality curve
//! depends on: grid shape, element type, point count, and the raw bit
//! patterns of a stride sample of the values (at most [`MAX_SAMPLES`]
//! points, spread across the whole field), plus a coarse value-range /
//! histogram sketch of that sample.  Any permutation, scaling, or edit of
//! the sampled values changes the fingerprint; two fresh buffers holding
//! identical data always agree.  Collisions are possible in principle (the
//! sample does not cover every point) but harmless: a cache hit is only a
//! *hint*, and the search verifies the probed bound before accepting it.

use fraz_data::{DataBuffer, Dataset};

/// Largest number of values sampled from a buffer.  4096 f64 reads keep the
/// fingerprint far cheaper than a single compression pass on real fields.
pub const MAX_SAMPLES: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a, enough for a content key (not cryptographic).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// The 64-bit content fingerprint of one dataset.
pub fn fingerprint(dataset: &Dataset) -> u64 {
    let mut h = Fnv::new();

    // Shape and element type: a reshaped or retyped field is different data
    // as far as a compressor's curve is concerned.
    let dims = dataset.dims.as_slice();
    h.write_u64(dims.len() as u64);
    for &d in dims {
        h.write_u64(d as u64);
    }
    h.write_u64(dataset.dtype().byte_width() as u64);
    h.write_u64(dataset.len() as u64);

    // Stride-sampled raw bits: exact and order-sensitive, so permuted or
    // rescaled values fingerprint differently.  The stride covers the whole
    // buffer, not just a prefix.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut histogram = [0u64; 16];
    let mut fold = |v: f64, bits: u64| {
        h.write_u64(bits);
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    };
    match &dataset.buffer {
        DataBuffer::F32(values) => {
            let stride = (values.len() / MAX_SAMPLES).max(1);
            for v in values.iter().step_by(stride) {
                fold(f64::from(*v), u64::from(v.to_bits()));
            }
        }
        DataBuffer::F64(values) => {
            let stride = (values.len() / MAX_SAMPLES).max(1);
            for v in values.iter().step_by(stride) {
                fold(*v, v.to_bits());
            }
        }
    }

    // Value range plus a 16-bin histogram of the sample — the cheap
    // entropy sketch.  Redundant given the exact bits above, but it keeps
    // the key meaningful if the sampling policy ever coarsens.
    if lo.is_finite() && hi > lo {
        let span = hi - lo;
        let mut bucket = |v: f64| {
            if v.is_finite() {
                let t = (((v - lo) / span) * 16.0).clamp(0.0, 15.0) as usize;
                histogram[t] += 1;
            }
        };
        match &dataset.buffer {
            DataBuffer::F32(values) => {
                let stride = (values.len() / MAX_SAMPLES).max(1);
                for v in values.iter().step_by(stride) {
                    bucket(f64::from(*v));
                }
            }
            DataBuffer::F64(values) => {
                let stride = (values.len() / MAX_SAMPLES).max(1);
                for v in values.iter().step_by(stride) {
                    bucket(*v);
                }
            }
        }
        h.write_u64(lo.to_bits());
        h.write_u64(hi.to_bits());
        for c in histogram {
            h.write_u64(c);
        }
    }

    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::Dims;

    fn field(values: Vec<f32>) -> Dataset {
        let n = values.len();
        Dataset::from_f32("app", "f", 0, Dims::d1(n), values)
    }

    #[test]
    fn identical_data_in_fresh_buffers_agrees() {
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let a = field(values.clone());
        let mut b = field(values);
        // Metadata that does not affect the curve must not affect the key.
        b.application = "other".into();
        b.field = "g".into();
        b.timestep = 9;
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn permuted_scaled_or_edited_data_differs() {
        let values: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin()).collect();
        let base = fingerprint(&field(values.clone()));

        let mut permuted = values.clone();
        permuted.swap(1, 997);
        assert_ne!(base, fingerprint(&field(permuted)));

        let scaled: Vec<f32> = values.iter().map(|v| v * 2.0).collect();
        assert_ne!(base, fingerprint(&field(scaled)));

        let mut edited = values.clone();
        edited[500] += 1e-3;
        assert_ne!(base, fingerprint(&field(edited)));

        // Same values, different shape.
        let d1 = Dataset::from_f32("a", "f", 0, Dims::d1(16), vec![1.0; 16]);
        let d2 = Dataset::from_f32("a", "f", 0, Dims::d2(4, 4), vec![1.0; 16]);
        assert_ne!(fingerprint(&d1), fingerprint(&d2));

        // Same values, different element type.
        let f32d = Dataset::from_f32("a", "f", 0, Dims::d1(4), vec![1.0, 2.0, 3.0, 4.0]);
        let f64d = Dataset::from_f64("a", "f", 0, Dims::d1(4), vec![1.0, 2.0, 3.0, 4.0]);
        assert_ne!(fingerprint(&f32d), fingerprint(&f64d));
    }

    #[test]
    fn large_fields_sample_at_a_bounded_cost() {
        // More points than MAX_SAMPLES: the stride covers the tail, so a
        // change far past the sample cap can still flip the fingerprint
        // when it lands on a sampled index.
        let n = MAX_SAMPLES * 4;
        let values: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).cos()).collect();
        let base = fingerprint(&field(values.clone()));
        let mut tail_edit = values;
        let idx = n - 4; // stride is 4, so this index is sampled
        tail_edit[idx] += 1.0;
        assert_ne!(base, fingerprint(&field(tail_edit)));
    }
}
