//! Two *processes* flushing one cache directory must race safely.
//!
//! `TuneCache::flush` claims atomicity: a uniquely-named temporary file is
//! written, fsynced, and renamed over the cache file, so concurrent
//! flushers can never truncate each other's in-flight snapshot — the last
//! rename wins and the file is always exactly one flusher's complete map.
//! This suite pins that claim with real processes (the classic failure —
//! a *shared* temp-file name — only corrupts across process boundaries,
//! where each writer holds its own instance).
//!
//! The child processes are this same test binary re-executed with a
//! filter for [`writer_child`], which does nothing unless the driver's
//! environment variables are set.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

use fraz_tune::TuneCache;

const DIR_VAR: &str = "FRAZ_TUNE_CONCURRENT_DIR";
const ID_VAR: &str = "FRAZ_TUNE_CONCURRENT_ID";

/// Entries one writer records: enough that a torn snapshot would be
/// visibly incomplete, few enough to stay fast.
const KEYS_PER_WRITER: usize = 64;
const FLUSHES_PER_WRITER: usize = 40;

fn writer_keys(id: usize) -> BTreeSet<String> {
    (0..KEYS_PER_WRITER)
        .map(|j| format!("writer{id}/key{j}"))
        .collect()
}

/// Child-process body: hammer the shared cache directory with flushes.
/// A no-op when run as part of a normal `cargo test` sweep.
#[test]
fn writer_child() {
    let Ok(dir) = std::env::var(DIR_VAR) else {
        return;
    };
    let id: usize = std::env::var(ID_VAR).unwrap().parse().unwrap();
    let cache = TuneCache::open(&dir).unwrap();
    for key in writer_keys(id) {
        cache.record(key, 1e-3 * (id + 1) as f64);
    }
    for _ in 0..FLUSHES_PER_WRITER {
        cache.flush().unwrap();
        std::thread::yield_now();
    }
}

#[test]
fn concurrent_process_flushes_leave_one_complete_snapshot() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("fraz-tune-concurrent-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let children: Vec<_> = (0..2)
        .map(|id| {
            Command::new(&exe)
                .args(["writer_child", "--exact", "--test-threads=1"])
                .env(DIR_VAR, &dir)
                .env(ID_VAR, id.to_string())
                .spawn()
                .expect("spawn writer process")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("join writer process");
        assert!(status.success(), "writer process failed: {status}");
    }

    // Whatever interleaving happened, the surviving file must be one
    // flusher's COMPLETE snapshot: every line parses (no torn writes, no
    // mid-line truncation), and per writer the key set is all-or-nothing.
    // (A writer's map always holds its own full key set, plus possibly the
    // other writer's — loaded at open — so legal outcomes are W0, W1, or
    // W0 ∪ W1; any *partial* set means a torn or interleaved file.)
    let cache = TuneCache::open(&dir).unwrap();
    assert_eq!(
        cache.stats().corrupt_lines,
        0,
        "concurrent flushes corrupted the cache file"
    );
    let mut complete_writers = 0;
    for id in 0..2 {
        let present: BTreeSet<String> = writer_keys(id)
            .into_iter()
            .filter(|key| cache.lookup(key).is_some())
            .collect();
        assert!(
            present.is_empty() || present == writer_keys(id),
            "writer {id}'s keys are partially present ({} of {KEYS_PER_WRITER}): torn snapshot",
            present.len()
        );
        if !present.is_empty() {
            complete_writers += 1;
        }
    }
    assert!(complete_writers >= 1, "no writer's snapshot survived");

    // No abandoned temp files: every flush either renamed or cleaned up.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
