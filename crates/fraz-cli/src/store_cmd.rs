//! The `fraz store` subcommands: write manifest-described fields into a
//! chunked [`fraz_store`] container directory, inspect it, and read
//! (sub)regions back out.
//!
//! Keys follow the `<field>/t<step>` convention, one container object per
//! time-step, so a store directory holds a whole application and `info`
//! can list it without touching any payload bytes.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

use fraz_core::BoundPredictor;
use fraz_data::io::write_raw;
use fraz_data::manifest::FieldTarget;
use fraz_pressio::Options;
use fraz_scenarios::ScenarioSynthesizer;
use fraz_store::{write_array_seeded, ArrayReader, ChunkTarget, FsStore, Store, StoreWriteConfig};
use fraz_tune::CachePredictor;

use crate::config::load_manifest;

const USAGE: &str = "fraz store — chunked array store with per-chunk tuned bounds

USAGE:
    fraz store create --config <manifest> --store <DIR> [OPTIONS]
    fraz store info   --store <DIR> [--key <KEY>]
    fraz store read   --store <DIR> --key <KEY> [--region <SPEC>] [--out <PATH>]

OPTIONS (create):
    --config <PATH>       dataset manifest (TOML or JSON)
    --store <DIR>         store root directory (created if missing)
    --chunk <AxBxC>       chunk shape, e.g. 16x64x64 (default: 64 per axis)
    --compressor <NAME>   registry backend (default: manifest, then `sz`)
    --tune-cache <DIR>    persistent tuning cache: seed chunk searches from
                          bounds remembered by earlier runs
    --quiet               suppress the per-object lines

OPTIONS (read):
    --key <KEY>           object key, e.g. CLOUDf/t0
    --region <SPEC>       half-open ranges per axis, e.g. 0..4,8..24
                          (default: the whole array)
    --out <PATH>          write the decoded region as raw little-endian bytes

Fields with a `target_ratio` are tuned per chunk to that ratio; fields with
`min_psnr` are tuned per chunk to that PSNR (each chunk scored against its
own value range).  `read` fetches and decodes only the chunks intersecting
the requested region.";

fn usage_error(cmd: &str, msg: &str) -> u8 {
    eprintln!("fraz store {cmd}: {msg}\n\n{USAGE}");
    2
}

/// Parse a chunk shape like `16x64x64` (also accepts `,` separators).
fn parse_chunk(raw: &str) -> Result<Vec<usize>, String> {
    let parts: Result<Vec<usize>, _> = raw
        .split(|c| c == 'x' || c == ',')
        .map(|p| p.trim().parse::<usize>())
        .collect();
    match parts {
        Ok(axes) if !axes.is_empty() && axes.iter().all(|&a| a > 0) => Ok(axes),
        _ => Err(format!(
            "--chunk needs positive sizes like 16x64x64, got `{raw}`"
        )),
    }
}

/// Parse a region spec like `0..4,8..24` into per-axis half-open ranges.
fn parse_region(raw: &str) -> Result<Vec<Range<u64>>, String> {
    raw.split(',')
        .map(|part| {
            let (start, end) = part
                .trim()
                .split_once("..")
                .ok_or_else(|| format!("range `{part}` must look like 0..4"))?;
            let start: u64 = start
                .trim()
                .parse()
                .map_err(|_| format!("bad range start in `{part}`"))?;
            let end: u64 = end
                .trim()
                .parse()
                .map_err(|_| format!("bad range end in `{part}`"))?;
            if end <= start {
                return Err(format!("range `{part}` is empty (end <= start)"));
            }
            Ok(start..end)
        })
        .collect()
}

/// The chunk shape for one field: the requested `--chunk` when its rank
/// matches, otherwise the 64-per-axis default (a manifest mixes ranks, so
/// one spec cannot fit every field).  Returns the shape and whether the
/// request was ignored.
fn chunk_for(dims: &[usize], requested: Option<&[usize]>) -> (Vec<usize>, bool) {
    match requested {
        Some(chunk) if chunk.len() == dims.len() => (chunk.to_vec(), false),
        Some(_) => (dims.iter().map(|&d| d.min(64)).collect(), true),
        None => (dims.iter().map(|&d| d.min(64)).collect(), false),
    }
}

fn cmd_create(args: &[String]) -> u8 {
    let mut config_path = None;
    let mut store_dir = None;
    let mut chunk = None;
    let mut compressor = None;
    let mut tune_cache = None;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let step = match arg.as_str() {
            "--config" | "-c" => value_of("--config").map(|v| config_path = Some(PathBuf::from(v))),
            "--store" => value_of("--store").map(|v| store_dir = Some(PathBuf::from(v))),
            "--chunk" => value_of("--chunk").and_then(|v| parse_chunk(&v).map(|c| chunk = Some(c))),
            "--compressor" => value_of("--compressor").map(|v| compressor = Some(v)),
            "--tune-cache" => value_of("--tune-cache").map(|v| tune_cache = Some(PathBuf::from(v))),
            "--quiet" | "-q" => {
                quiet = true;
                Ok(())
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(msg) = step {
            return usage_error("create", &msg);
        }
    }
    let Some(config_path) = config_path else {
        return usage_error("create", "--config is required");
    };
    let Some(store_dir) = store_dir else {
        return usage_error("create", "--store is required");
    };

    let manifest = match load_manifest(&config_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    let dir = match config_path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let resolved = match manifest.resolve_with(&dir, Some(&ScenarioSynthesizer)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    let store = match FsStore::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    let codec = compressor.as_deref().unwrap_or(&resolved.compressor);
    let tolerance = manifest.tolerance.unwrap_or(0.1);
    let predictor: Option<Arc<CachePredictor>> = match &tune_cache {
        Some(dir) => match CachePredictor::open(dir) {
            Ok(p) => Some(Arc::new(p)),
            Err(e) => {
                eprintln!("fraz: cannot open tune cache `{}`: {e}", dir.display());
                return 1;
            }
        },
        None => None,
    };

    let mut objects = 0usize;
    let mut total_raw = 0u64;
    let mut total_stored = 0u64;
    for field in &resolved.fields {
        let target = match field.target {
            FieldTarget::Ratio(target_ratio) => ChunkTarget::Ratio {
                target_ratio,
                tolerance,
            },
            FieldTarget::MinPsnr(psnr) => ChunkTarget::MinPsnr(psnr),
        };
        for (step, dataset) in field.series.iter().enumerate() {
            let (chunk_shape, rank_mismatch) = chunk_for(dataset.dims.as_slice(), chunk.as_deref());
            if rank_mismatch && step == 0 && !quiet {
                eprintln!(
                    "fraz store create: note: --chunk rank does not match field `{}` \
                     ({}-D); using the default chunk shape for it",
                    field.name,
                    dataset.dims.len()
                );
            }
            let mut write_config = StoreWriteConfig::new(chunk_shape, codec, target.clone())
                .with_options(Options::new());
            if let Some(regions) = manifest.regions {
                write_config = write_config.with_regions(regions.max(1));
            }
            if let Some(iters) = manifest.max_iterations {
                write_config = write_config.with_max_iterations(iters.max(2));
            }
            if let Some(bound) = manifest.max_error_bound {
                write_config = write_config.with_max_error_bound(bound);
            }
            let key = format!("{}/t{step}", field.name);
            let seed = predictor.clone().map(|p| p as Arc<dyn BoundPredictor>);
            let report = match write_array_seeded(&store, &key, dataset, &write_config, None, seed)
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("fraz: {key}: {e}");
                    return 1;
                }
            };
            objects += 1;
            total_raw += report.uncompressed_bytes;
            total_stored += report.object_bytes;
            if !quiet {
                let (lo, hi) = report.bound_range();
                println!(
                    "  {key:<24} {} chunk(s)  ratio {:>6.2}  bounds {lo:.3e}..{hi:.3e}  {} eval(s)",
                    report.chunks.len(),
                    report.compression_ratio,
                    report.evaluations
                );
            }
        }
    }
    if let Some(p) = &predictor {
        if let Err(e) = p.cache().flush() {
            eprintln!("fraz: tune-cache flush failed: {e}");
        } else if !quiet {
            let stats = p.cache().stats();
            println!(
                "tune-cache {}: {} hit(s), {} miss(es), {} new bound(s)",
                p.cache().path().display(),
                stats.hits,
                stats.misses,
                stats.stores
            );
        }
    }
    if !quiet {
        println!(
            "{}: {objects} object(s), {total_raw} -> {total_stored} bytes (ratio {:.2}) in {}",
            resolved.application,
            total_raw as f64 / total_stored.max(1) as f64,
            store_dir.display()
        );
    }
    0
}

/// Shared `--store/--key/...` parsing for `info` and `read`.
struct ReadArgs {
    store_dir: PathBuf,
    key: Option<String>,
    region: Option<Vec<Range<u64>>>,
    out: Option<PathBuf>,
    quiet: bool,
}

fn parse_read_args(cmd: &str, args: &[String]) -> Result<ReadArgs, u8> {
    let mut store_dir = None;
    let mut key = None;
    let mut region = None;
    let mut out = None;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let step = match arg.as_str() {
            "--store" => value_of("--store").map(|v| store_dir = Some(PathBuf::from(v))),
            "--key" | "-k" => value_of("--key").map(|v| key = Some(v)),
            "--region" => {
                value_of("--region").and_then(|v| parse_region(&v).map(|r| region = Some(r)))
            }
            "--out" | "-o" => value_of("--out").map(|v| out = Some(PathBuf::from(v))),
            "--quiet" | "-q" => {
                quiet = true;
                Ok(())
            }
            other => Err(format!("unknown option `{other}`")),
        };
        if let Err(msg) = step {
            return Err(usage_error(cmd, &msg));
        }
    }
    let Some(store_dir) = store_dir else {
        return Err(usage_error(cmd, "--store is required"));
    };
    Ok(ReadArgs {
        store_dir,
        key,
        region,
        out,
        quiet,
    })
}

fn describe_object(store: &FsStore, key: &str) -> Result<String, String> {
    let reader = ArrayReader::open(store, key).map_err(|e| format!("{key}: {e}"))?;
    let meta = reader.meta();
    let dims: Vec<String> = meta.dims.iter().map(|d| d.to_string()).collect();
    let chunks: Vec<String> = meta.chunk_shape.iter().map(|d| d.to_string()).collect();
    let stored: u64 = meta.payload_bytes();
    Ok(format!(
        "  {key:<24} {:?} {}  chunk {}  {} chunk(s)  codec {}  ratio {:.2}",
        meta.dtype,
        dims.join("x"),
        chunks.join("x"),
        meta.index.len(),
        meta.codec,
        meta.uncompressed_bytes() as f64 / stored.max(1) as f64,
    ))
}

fn cmd_info(args: &[String]) -> u8 {
    let parsed = match parse_read_args("info", args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    if parsed.region.is_some() || parsed.out.is_some() {
        return usage_error("info", "--region/--out are `read` flags");
    }
    let store = match FsStore::open(&parsed.store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    let keys = match parsed.key {
        Some(key) => vec![key],
        None => match store.list() {
            Ok(keys) => keys,
            Err(e) => {
                eprintln!("fraz: {e}");
                return 1;
            }
        },
    };
    if keys.is_empty() {
        eprintln!("fraz: no objects in {}", parsed.store_dir.display());
        return 1;
    }
    println!(
        "{} object(s) in {}:",
        keys.len(),
        parsed.store_dir.display()
    );
    for key in &keys {
        match describe_object(&store, key) {
            Ok(line) => println!("{line}"),
            Err(msg) => {
                eprintln!("fraz: {msg}");
                return 1;
            }
        }
    }
    0
}

fn cmd_read(args: &[String]) -> u8 {
    let parsed = match parse_read_args("read", args) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let Some(key) = parsed.key else {
        return usage_error("read", "--key is required");
    };
    let store = match FsStore::open(&parsed.store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    let reader = match ArrayReader::open(&store, &key) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fraz: {key}: {e}");
            return 1;
        }
    };
    let region = parsed
        .region
        .unwrap_or_else(|| reader.meta().dims.iter().map(|&d| 0..d as u64).collect());
    let intersecting = reader.grid().chunks_intersecting(&region).map(|c| c.len());
    let dataset = match reader.read_region(&region) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fraz: {key}: {e}");
            return 1;
        }
    };
    if !parsed.quiet {
        let spec: Vec<String> = region
            .iter()
            .map(|r| format!("{}..{}", r.start, r.end))
            .collect();
        println!(
            "{key} [{}]: {} element(s), decoded {}/{} chunk(s)",
            spec.join(","),
            dataset.len(),
            intersecting.unwrap_or(reader.meta().index.len()),
            reader.meta().index.len(),
        );
    }
    if let Some(out) = parsed.out {
        if let Err(e) = write_raw(&out, &dataset) {
            eprintln!("fraz: cannot write `{}`: {e}", out.display());
            return 1;
        }
        if !parsed.quiet {
            println!("wrote {} bytes to {}", dataset.byte_size(), out.display());
        }
    }
    0
}

/// Dispatch `fraz store <sub> ...`.
pub fn run_store(args: &[String]) -> u8 {
    match args.first().map(String::as_str) {
        Some("create") => cmd_create(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("read") => cmd_read(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            0
        }
        Some(other) => usage_error("", &format!("unknown subcommand `{other}`")),
        None => {
            eprintln!("{USAGE}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_and_region_parsing() {
        assert_eq!(parse_chunk("16x64x64").unwrap(), vec![16, 64, 64]);
        assert_eq!(parse_chunk("4, 8").unwrap(), vec![4, 8]);
        assert!(parse_chunk("0x4").is_err());
        assert!(parse_chunk("abc").is_err());
        assert!(parse_chunk("").is_err());

        assert_eq!(parse_region("0..4,8..24").unwrap(), vec![0..4, 8..24]);
        assert_eq!(parse_region(" 1..2 ").unwrap(), vec![1..2]);
        assert!(parse_region("4..4").is_err());
        assert!(parse_region("5..1").is_err());
        assert!(parse_region("1-2").is_err());
        assert!(parse_region("x..y").is_err());
    }

    #[test]
    fn chunk_defaults_clamp_to_the_field() {
        assert_eq!(chunk_for(&[100, 20], None), (vec![64, 20], false));
        assert_eq!(chunk_for(&[8, 8], Some(&[4, 4])), (vec![4, 4], false));
        // Rank mismatch falls back to the default (manifests mix ranks).
        assert_eq!(chunk_for(&[8, 8, 8], Some(&[4, 4])), (vec![8, 8, 8], true));
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(run_store(&args(&[])), 2);
        assert_eq!(run_store(&args(&["frobnicate"])), 2);
        assert_eq!(run_store(&args(&["create"])), 2); // --config missing
        assert_eq!(run_store(&args(&["create", "--config", "m.toml"])), 2);
        assert_eq!(run_store(&args(&["read", "--store", "/tmp/x"])), 2); // --key missing
        assert_eq!(
            run_store(&args(&["info", "--store", "/tmp/x", "--region", "0..1"])),
            2
        );
        assert_eq!(run_store(&args(&["help"])), 0);
    }

    #[test]
    fn missing_inputs_exit_1() {
        assert_eq!(
            run_store(&args(&[
                "create",
                "--config",
                "/not/there.toml",
                "--store",
                "/tmp/fraz-store-cli-test"
            ])),
            1
        );
    }
}
