//! The `fraz` command-line interface: argument parsing and subcommand
//! dispatch, kept dependency-free (no clap in the offline workspace).
//!
//! Exit codes: `0` success, `1` configuration or runtime failure, `2` usage
//! error, `3` when `--strict` is given and some field missed its target
//! (FRaZ's infeasible-but-best-effort answer is otherwise a success, as in
//! the paper's Algorithm 2).

use std::path::{Path, PathBuf};

use fraz_data::manifest::Manifest;
use fraz_pressio::registry;
use fraz_scenarios::ScenarioSynthesizer;

use crate::config::load_manifest;
use crate::runner::{run, RunOverrides};

const USAGE: &str = "fraz — fixed-ratio lossy compression over dataset manifests

USAGE:
    fraz run --config <manifest.toml|json> [OPTIONS]
    fraz validate --config <manifest.toml|json>
    fraz store <create|info|read> [OPTIONS]   (see `fraz store help`)
    fraz serve [OPTIONS]                      (see `fraz serve --help`)
    fraz codecs
    fraz help

OPTIONS (run):
    --config <PATH>       dataset manifest (TOML or JSON)
    --out <PATH>          append per-field JSONL records to this file
    --workers <N>         worker threads (default: manifest, then all cores)
    --compressor <NAME>   registry backend (default: manifest, then `sz`)
    --tune-cache <DIR>    persistent tuning cache: seed searches from bounds
                          remembered by earlier runs, record new ones
    --strict              exit 3 if any field misses its target
    --quiet               suppress the per-field table

See ARCHITECTURE.md for the paper-to-code map and README.md for a worked
manifest example.";

/// Parsed command line for `fraz run` / `fraz validate`.
struct CommonArgs {
    config: PathBuf,
    out: Option<PathBuf>,
    overrides: RunOverrides,
    strict: bool,
    quiet: bool,
}

enum ArgError {
    Usage(String),
}

fn parse_common(args: &[String]) -> Result<CommonArgs, ArgError> {
    let mut config = None;
    let mut out = None;
    let mut overrides = RunOverrides::default();
    let mut strict = false;
    let mut quiet = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| ArgError::Usage(format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--config" | "-c" => config = Some(PathBuf::from(value_of("--config")?)),
            "--out" | "-o" => out = Some(PathBuf::from(value_of("--out")?)),
            "--workers" | "-w" => {
                let raw = value_of("--workers")?;
                let parsed: usize = raw.parse().map_err(|_| {
                    ArgError::Usage(format!(
                        "--workers needs a non-negative integer, got `{raw}`"
                    ))
                })?;
                overrides.workers = Some(parsed);
            }
            "--compressor" => overrides.compressor = Some(value_of("--compressor")?),
            "--tune-cache" => overrides.tune_cache = Some(PathBuf::from(value_of("--tune-cache")?)),
            "--strict" => strict = true,
            "--quiet" | "-q" => quiet = true,
            other => return Err(ArgError::Usage(format!("unknown option `{other}`"))),
        }
    }
    let config = config.ok_or_else(|| ArgError::Usage("--config is required".to_string()))?;
    Ok(CommonArgs {
        config,
        out,
        overrides,
        strict,
        quiet,
    })
}

/// Load a manifest and report errors on stderr (`None` means exit 1).
fn load_or_report(path: &Path) -> Option<(Manifest, PathBuf)> {
    match load_manifest(path) {
        Ok(manifest) => {
            // `parent()` of a bare file name is `Some("")`, which is not a
            // walkable directory — a bare `--config manifest.toml` means
            // "the manifest sits in the current directory".
            let dir = match path.parent() {
                Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
                _ => PathBuf::from("."),
            };
            Some((manifest, dir))
        }
        Err(e) => {
            eprintln!("fraz: {e}");
            None
        }
    }
}

fn cmd_run(args: &[String]) -> u8 {
    let parsed = match parse_common(args) {
        Ok(parsed) => parsed,
        Err(ArgError::Usage(msg)) => {
            eprintln!("fraz run: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    let Some((manifest, dir)) = load_or_report(&parsed.config) else {
        return 1;
    };
    let report = match run(&manifest, &dir, &parsed.overrides) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    if !parsed.quiet {
        println!(
            "{} · {} field(s) · {} worker(s) · {:.0} ms",
            manifest.application,
            report.rows.len(),
            report.workers,
            report.elapsed_ms
        );
        print!("{}", report.render_table());
        if let Some(cache) = &report.tune_cache {
            println!(
                "tune-cache {}: {} hit(s), {} miss(es), {} new bound(s)",
                cache.path, cache.hits, cache.misses, cache.stores
            );
            if cache.corrupt_lines > 0 {
                eprintln!(
                    "fraz: tune-cache: skipped {} damaged line(s); \
                     the flush above rewrote the file",
                    cache.corrupt_lines
                );
            }
        }
    }
    if let Some(out) = &parsed.out {
        use std::io::Write;
        let mut payload = report.jsonl_lines().join("\n");
        payload.push('\n');
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(out)
            .and_then(|mut f| f.write_all(payload.as_bytes()));
        if let Err(e) = appended {
            eprintln!("fraz: cannot write `{}`: {e}", out.display());
            return 1;
        }
        if !parsed.quiet {
            println!(
                "wrote {} JSONL record(s) to {}",
                report.rows.len(),
                out.display()
            );
        }
    }
    if parsed.strict && !report.all_feasible() {
        eprintln!("fraz: --strict: some fields missed their target");
        return 3;
    }
    0
}

fn cmd_validate(args: &[String]) -> u8 {
    let parsed = match parse_common(args) {
        Ok(parsed) => parsed,
        Err(ArgError::Usage(msg)) => {
            eprintln!("fraz validate: {msg}\n\n{USAGE}");
            return 2;
        }
    };
    // Silently ignoring run-only flags would mask a misused invocation.
    if parsed.out.is_some()
        || parsed.strict
        || parsed.quiet
        || parsed.overrides.workers.is_some()
        || parsed.overrides.tune_cache.is_some()
    {
        eprintln!(
            "fraz validate: only --config and --compressor apply \
             (--out/--strict/--quiet/--workers/--tune-cache are `run` flags)\n\n{USAGE}"
        );
        return 2;
    }
    let Some((manifest, dir)) = load_or_report(&parsed.config) else {
        return 1;
    };
    let resolved = match manifest.resolve_with(&dir, Some(&ScenarioSynthesizer)) {
        Ok(resolved) => resolved,
        Err(e) => {
            eprintln!("fraz: {e}");
            return 1;
        }
    };
    // Pre-flight the compressor name too — `validate` exists to catch
    // everything `run` would reject, and an unknown codec is exactly
    // that (the registry error carries a did-you-mean suggestion).
    let compressor_name = parsed
        .overrides
        .compressor
        .as_deref()
        .unwrap_or(&resolved.compressor);
    if let Err(e) = registry::build_arc(compressor_name, &fraz_pressio::Options::new()) {
        eprintln!("fraz: {e}");
        return 1;
    }
    println!(
        "{}: {} field(s), compressor `{compressor_name}` — manifest OK",
        resolved.application,
        resolved.fields.len(),
    );
    for field in &resolved.fields {
        let first = &field.series[0];
        println!(
            "  {:<16} {} step(s)  {} {:?}  target {}",
            field.name,
            field.series.len(),
            first.dims,
            first.dtype(),
            field.target
        );
    }
    0
}

fn cmd_codecs() -> u8 {
    println!("registered codecs (process-wide default registry):");
    for name in registry::names() {
        if let Some(desc) = registry::describe(&name) {
            let aliases = if desc.aliases.is_empty() {
                String::new()
            } else {
                format!(" (aliases: {})", desc.aliases.join(", "))
            };
            println!(
                "  {:<10} {}–{}D  {}{}{}",
                desc.name,
                desc.dims.min,
                desc.dims.max,
                desc.bound_kind.label(),
                if desc.error_bounded {
                    ""
                } else {
                    " [not searchable]"
                },
                aliases
            );
            if !desc.summary.is_empty() {
                println!("             {}", desc.summary);
            }
        }
    }
    0
}

/// Entry point: dispatch `args` (without the program name) and return the
/// process exit code.
pub fn run_cli(args: &[String]) -> u8 {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("store") => crate::store_cmd::run_store(&args[1..]),
        Some("serve") => crate::serve_cmd::run_serve(&args[1..]),
        Some("codecs") => cmd_codecs(),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            0
        }
        Some("--version") | Some("version") => {
            println!("fraz {}", env!("CARGO_PKG_VERSION"));
            0
        }
        Some(other) => {
            eprintln!("fraz: unknown command `{other}`\n\n{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(run_cli(&args(&["frobnicate"])), 2);
        assert_eq!(run_cli(&args(&["run"])), 2); // --config missing
        assert_eq!(
            run_cli(&args(&["run", "--workers", "x", "--config", "m.toml"])),
            2
        );
        assert_eq!(run_cli(&args(&[])), 2);
    }

    #[test]
    fn help_and_codecs_exit_0() {
        assert_eq!(run_cli(&args(&["help"])), 0);
        assert_eq!(run_cli(&args(&["codecs"])), 0);
        assert_eq!(run_cli(&args(&["--version"])), 0);
    }

    #[test]
    fn missing_manifest_exits_1() {
        assert_eq!(run_cli(&args(&["run", "--config", "/not/there.toml"])), 1);
        assert_eq!(
            run_cli(&args(&["validate", "--config", "/not/there.json"])),
            1
        );
    }
}
