//! Drives a resolved manifest through FRaZ: fixed-ratio fields through the
//! [`Orchestrator`] (fields in parallel, time-step prediction reuse —
//! Algorithm 3), quality-targeted fields through [`FixedQualitySearch`] —
//! every task on the one shared work-stealing pool, exactly as the paper's
//! evaluation ran whole SDRBench applications.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use fraz_core::{
    BoundPredictor, FieldTask, FixedQualitySearch, HintReport, HintSource, Orchestrator,
    OrchestratorConfig, QualityMetric, QualitySearchConfig, QualitySearchOutcome, SearchConfig,
    SeriesOutcome,
};
use fraz_data::manifest::{FieldTarget, Manifest, ManifestError, ResolvedField};
use fraz_pressio::registry::RegistryError;
use fraz_pressio::{registry, Options};
use fraz_scenarios::ScenarioSynthesizer;
use fraz_tune::CachePredictor;

use crate::report::{FieldRow, RunReport, TuneCacheSummary};

/// Command-line overrides applied on top of the manifest's settings.
#[derive(Debug, Clone, Default)]
pub struct RunOverrides {
    /// Worker threads for the shared pool (overrides the manifest).
    pub workers: Option<usize>,
    /// Compressor registry name (overrides the manifest).
    pub compressor: Option<String>,
    /// Directory of the persistent tuning cache (`--tune-cache`); searches
    /// seed from and record into it.
    pub tune_cache: Option<PathBuf>,
}

/// Errors running a manifest.
#[derive(Debug)]
pub enum RunError {
    /// The manifest failed to load, validate, or resolve.
    Manifest(ManifestError),
    /// The compressor could not be built from the registry.
    Registry(RegistryError),
    /// The `--tune-cache` directory could not be opened.
    TuneCache(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Manifest(e) => write!(f, "{e}"),
            RunError::Registry(e) => write!(f, "{e}"),
            RunError::TuneCache(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ManifestError> for RunError {
    fn from(e: ManifestError) -> Self {
        RunError::Manifest(e)
    }
}

impl From<RegistryError> for RunError {
    fn from(e: RegistryError) -> Self {
        RunError::Registry(e)
    }
}

/// The per-dataset search settings a manifest implies, before any
/// per-field target is applied.
fn base_search(manifest: &Manifest) -> SearchConfig {
    let mut search = SearchConfig::new(
        manifest.target_ratio.unwrap_or(10.0),
        manifest.tolerance.unwrap_or(0.1),
    );
    search.max_error_bound = manifest.max_error_bound;
    if let Some(regions) = manifest.regions {
        search.regions = regions.max(1);
    }
    if let Some(iters) = manifest.max_iterations {
        search.max_iterations = iters.max(1);
    }
    search
}

/// Resolve `manifest` against `manifest_dir` and run every field,
/// returning the per-field report.
pub fn run(
    manifest: &Manifest,
    manifest_dir: &Path,
    overrides: &RunOverrides,
) -> Result<RunReport, RunError> {
    let start = Instant::now();
    let mut resolved = manifest.resolve_with(manifest_dir, Some(&ScenarioSynthesizer))?;
    let compressor_name = overrides
        .compressor
        .as_deref()
        .unwrap_or(&resolved.compressor);
    let compressor = registry::build_arc(compressor_name, &Options::new())?;

    // The persistent tuning cache, when requested: one predictor shared by
    // the ratio orchestrator and every quality search.
    let predictor: Option<Arc<CachePredictor>> = match &overrides.tune_cache {
        Some(dir) => Some(Arc::new(CachePredictor::open(dir).map_err(|e| {
            RunError::TuneCache(format!("cannot open tune cache `{}`: {e}", dir.display()))
        })?)),
        None => None,
    };

    let search = base_search(manifest);
    let mut orchestrator = Orchestrator::with_compressor(
        compressor.clone(),
        OrchestratorConfig {
            search: search.clone(),
            total_workers: overrides.workers.or(manifest.workers).unwrap_or(0),
            reuse_prediction: true,
        },
    );
    if let Some(p) = &predictor {
        orchestrator = orchestrator.with_predictor(p.clone() as Arc<dyn BoundPredictor>);
    }

    // Fixed-ratio fields run as one parallel application (Algorithm 3),
    // each carrying its own target through a per-task search override.
    // The loaded series are *moved* into the tasks (row assembly below
    // only needs the field names and targets) — real SDRBench fields are
    // gigabytes, so cloning them would double peak memory.
    let ratio_tasks: Vec<FieldTask> = resolved
        .fields
        .iter_mut()
        .filter_map(|field| match field.target {
            FieldTarget::Ratio(target) => Some(
                FieldTask::new(field.name.clone(), std::mem::take(&mut field.series)).with_search(
                    SearchConfig {
                        target_ratio: target,
                        ..search.clone()
                    },
                ),
            ),
            FieldTarget::MinPsnr(_) => None,
        })
        .collect();
    let quality_fields: Vec<&ResolvedField> = resolved
        .fields
        .iter()
        .filter(|f| matches!(f.target, FieldTarget::MinPsnr(_)))
        .collect();

    // One scope, both kinds of work: the whole ratio application runs as
    // a task next to the per-field quality searches, so a quality field
    // does not wait for the ratio phase (nor vice versa) — the pool's
    // re-entrant scopes let `run_tasks` open its nested field/region
    // scopes from inside this one.
    let mut ratio_application = None;
    let mut quality_outcomes: Vec<Option<(Vec<QualitySearchOutcome>, f64)>> =
        vec![None; quality_fields.len()];
    let max_error_bound = manifest.max_error_bound;
    let max_iterations = manifest.max_iterations;
    orchestrator.pool().scope(|scope| {
        if !ratio_tasks.is_empty() {
            let orchestrator = &orchestrator;
            let ratio_tasks = &ratio_tasks;
            let slot = &mut ratio_application;
            scope.spawn(move || *slot = Some(orchestrator.run_tasks(ratio_tasks)));
        }
        for (slot, field) in quality_outcomes.iter_mut().zip(&quality_fields) {
            let compressor = compressor.clone();
            let pool = orchestrator.pool().clone();
            let predictor = predictor.clone();
            scope.spawn(move || {
                let FieldTarget::MinPsnr(min_psnr) = field.target else {
                    unreachable!("filtered above")
                };
                let mut config = QualitySearchConfig::new(QualityMetric::PsnrAtLeast(min_psnr));
                config.max_error_bound = max_error_bound;
                if let Some(iters) = max_iterations {
                    config.max_iterations = iters.max(2);
                }
                // Same shared pool as the ratio fields: the search's sweep
                // evaluations become nested tasks instead of a serial loop.
                let search = FixedQualitySearch::new(compressor, config).with_pool(pool);
                let field_start = Instant::now();
                let outcomes: Vec<QualitySearchOutcome> = field
                    .series
                    .iter()
                    .map(|ds| match &predictor {
                        Some(p) => search.run_with_predictor(ds, p.as_ref()),
                        None => search.run(ds),
                    })
                    .collect();
                *slot = Some((outcomes, field_start.elapsed().as_secs_f64() * 1e3));
            });
        }
    });
    let ratio_outcomes: Vec<SeriesOutcome> =
        ratio_application.map(|app| app.fields).unwrap_or_default();

    // Reassemble rows in manifest order.
    let cache_enabled = predictor.is_some();
    let mut rows = Vec::with_capacity(resolved.fields.len());
    for field in &resolved.fields {
        let row = match field.target {
            FieldTarget::Ratio(_) => {
                let outcome = ratio_outcomes
                    .iter()
                    .find(|o| o.field == field.name)
                    .expect("every ratio task produces an outcome");
                ratio_row(
                    &resolved.application,
                    compressor.name(),
                    field,
                    outcome,
                    cache_enabled,
                )
            }
            FieldTarget::MinPsnr(_) => {
                let index = quality_fields
                    .iter()
                    .position(|f| f.name == field.name)
                    .expect("filtered from the same list");
                let (outcomes, elapsed_ms) = quality_outcomes[index]
                    .as_ref()
                    .expect("every quality task produces an outcome");
                quality_row(
                    &resolved.application,
                    compressor.name(),
                    field,
                    outcomes,
                    *elapsed_ms,
                    cache_enabled,
                )
            }
        };
        rows.push(row);
    }

    // Persist what this run learned; failing to write the cache must not
    // discard the run's results, so the summary carries the counters and
    // the flush is best-effort (the caller can inspect the path).
    let tune_cache = predictor.map(|p| {
        let _ = p.cache().flush();
        let stats = p.cache().stats();
        TuneCacheSummary {
            path: p.cache().path().display().to_string(),
            hits: stats.hits,
            misses: stats.misses,
            stores: stats.stores,
            corrupt_lines: stats.corrupt_lines,
        }
    });

    Ok(RunReport {
        rows,
        workers: orchestrator.pool().threads(),
        elapsed_ms: start.elapsed().as_secs_f64() * 1e3,
        tune_cache,
    })
}

/// Count the steps a `--tune-cache` run seeded straight from the cache
/// (`None`/`None` when the cache was off, so the table shows `-`).
fn cache_columns<'a>(
    enabled: bool,
    hints: impl Iterator<Item = Option<&'a HintReport>>,
    steps: usize,
) -> (Option<usize>, Option<usize>) {
    if !enabled {
        return (None, None);
    }
    let hits = hints
        .filter(|h| h.is_some_and(|h| h.source == HintSource::TuneCache && h.hit))
        .count();
    (Some(hits), Some(steps - hits))
}

fn mean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

fn ratio_row(
    application: &str,
    compressor: &str,
    field: &ResolvedField,
    outcome: &SeriesOutcome,
    cache_enabled: bool,
) -> FieldRow {
    let steps = &outcome.steps;
    let (cache_hits, cache_misses) = cache_columns(
        cache_enabled,
        steps.iter().map(|s| s.hint.as_ref()),
        steps.len(),
    );
    FieldRow {
        application: application.to_string(),
        field: field.name.clone(),
        compressor: compressor.to_string(),
        target: field.target.to_string(),
        steps: steps.len(),
        error_bound: steps.last().map_or(0.0, |s| s.error_bound),
        ratio: mean(steps.iter().map(|s| s.best.compression_ratio)).unwrap_or(0.0),
        bit_rate: mean(steps.iter().map(|s| s.best.bit_rate)).unwrap_or(0.0),
        psnr: mean(
            steps
                .iter()
                .filter_map(|s| s.best.quality.as_ref())
                .map(|q| q.psnr),
        ),
        max_abs_error: steps
            .iter()
            .filter_map(|s| s.best.quality.as_ref())
            .map(|q| q.max_abs_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e)))),
        feasible_steps: steps.iter().filter(|s| s.feasible).count(),
        retrained_steps: outcome.retrain_steps.len(),
        evaluations: outcome.total_evaluations(),
        cache_hits,
        cache_misses,
        elapsed_ms: outcome.elapsed.as_secs_f64() * 1e3,
    }
}

fn quality_row(
    application: &str,
    compressor: &str,
    field: &ResolvedField,
    outcomes: &[QualitySearchOutcome],
    elapsed_ms: f64,
    cache_enabled: bool,
) -> FieldRow {
    let (cache_hits, cache_misses) = cache_columns(
        cache_enabled,
        outcomes.iter().map(|o| o.hint.as_ref()),
        outcomes.len(),
    );
    FieldRow {
        application: application.to_string(),
        field: field.name.clone(),
        compressor: compressor.to_string(),
        target: field.target.to_string(),
        steps: outcomes.len(),
        error_bound: outcomes.last().map_or(0.0, |o| o.error_bound),
        ratio: mean(outcomes.iter().map(|o| o.best.compression_ratio)).unwrap_or(0.0),
        bit_rate: mean(outcomes.iter().map(|o| o.best.bit_rate)).unwrap_or(0.0),
        psnr: mean(
            outcomes
                .iter()
                .filter_map(|o| o.best.quality.as_ref())
                .map(|q| q.psnr),
        ),
        max_abs_error: outcomes
            .iter()
            .filter_map(|o| o.best.quality.as_ref())
            .map(|q| q.max_abs_error)
            .fold(None, |acc, e| Some(acc.map_or(e, |a: f64| a.max(e)))),
        feasible_steps: outcomes.iter().filter(|o| o.satisfiable).count(),
        // Quality searches have no prediction reuse: every step trains.
        retrained_steps: outcomes.len(),
        evaluations: outcomes.iter().map(|o| o.evaluations).sum(),
        cache_hits,
        cache_misses,
        elapsed_ms,
    }
}
