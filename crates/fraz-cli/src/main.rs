//! Thin binary wrapper: all logic lives in the `fraz_cli` library so the
//! integration tests can drive it in-process.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(fraz_cli::run_cli(&args))
}
