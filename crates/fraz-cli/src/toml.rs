//! A TOML frontend for the manifest loader: parses the TOML subset dataset
//! manifests use into a [`serde_json::Value`] tree, which then deserializes
//! through the workspace's derived [`serde::Deserialize`] impls — the TOML
//! and JSON paths share every manifest type and every validation rule.
//!
//! Supported TOML (the practical config subset): comments, `[table]` and
//! `[[array-of-tables]]` headers with dotted/quoted paths, dotted keys,
//! basic and literal strings (with `\uXXXX`/`\UXXXXXXXX` escapes),
//! integers with `_` separators, floats, booleans, possibly-multiline
//! arrays, and inline tables.  Not supported (rejected with a clear
//! error): dates/times, multi-line strings, and hex/octal/binary integer
//! prefixes — none of which a dataset manifest needs.

use std::collections::BTreeMap;

use serde_json::{Map, Number, Value};

/// A TOML syntax or structure error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending character.
    pub line: usize,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at line {}", self.message, self.line)
    }
}

impl std::error::Error for TomlError {}

/// Intermediate tree: like [`Value`] but with mutable nested tables, which
/// the flat shared [`Map`] type does not offer.
#[derive(Debug, Clone)]
enum Item {
    Table(BTreeMap<String, Item>),
    /// `[[name]]` array of tables.
    TableArray(Vec<BTreeMap<String, Item>>),
    Array(Vec<Item>),
    Scalar(Value),
}

impl Item {
    fn into_value(self) -> Value {
        match self {
            Item::Table(entries) => Value::Object(table_to_map(entries)),
            Item::TableArray(tables) => Value::Array(
                tables
                    .into_iter()
                    .map(|t| Value::Object(table_to_map(t)))
                    .collect(),
            ),
            Item::Array(items) => Value::Array(items.into_iter().map(Item::into_value).collect()),
            Item::Scalar(v) => v,
        }
    }
}

fn table_to_map(entries: BTreeMap<String, Item>) -> Map {
    let mut map = Map::new();
    for (k, v) in entries {
        map.insert(k, v.into_value());
    }
    map
}

/// Parse a TOML document into a JSON value tree (the root table becomes the
/// root object).
pub fn parse(input: &str) -> Result<Value, TomlError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let mut root: BTreeMap<String, Item> = BTreeMap::new();
    // Path of the table the current `key = value` lines land in.
    let mut current_path: Vec<String> = Vec::new();

    loop {
        parser.skip_trivia();
        match parser.peek() {
            None => break,
            Some(b'[') => {
                parser.pos += 1;
                let array_of_tables = parser.peek() == Some(b'[');
                if array_of_tables {
                    parser.pos += 1;
                }
                let path = parser.key_path()?;
                parser.expect(b']')?;
                if array_of_tables {
                    parser.expect(b']')?;
                }
                // Structure checks happen *before* the newline is
                // consumed, so their errors name the statement's own line.
                if array_of_tables {
                    let parent =
                        navigate(&mut root, &path[..path.len() - 1]).map_err(|m| parser.err(m))?;
                    let leaf = path.last().expect("key paths are non-empty");
                    match parent
                        .entry(leaf.clone())
                        .or_insert_with(|| Item::TableArray(Vec::new()))
                    {
                        Item::TableArray(tables) => tables.push(BTreeMap::new()),
                        _ => {
                            return Err(parser.err(format!(
                                "`[[{leaf}]]` conflicts with an earlier non-array definition"
                            )))
                        }
                    }
                } else {
                    // Materialize the table (and fail on redefinition of a
                    // scalar/array with the same name).
                    navigate(&mut root, &path).map_err(|m| parser.err(m))?;
                }
                parser.end_of_line()?;
                current_path = path;
            }
            Some(_) => {
                let path = parser.key_path()?;
                parser.expect(b'=')?;
                parser.skip_spaces();
                let value = parser.value()?;
                let mut full = current_path.clone();
                full.extend(path.iter().cloned());
                let parent =
                    navigate(&mut root, &full[..full.len() - 1]).map_err(|m| parser.err(m))?;
                let leaf = full.last().expect("key paths are non-empty");
                if parent.contains_key(leaf) {
                    return Err(parser.err(format!("duplicate key `{leaf}`")));
                }
                parent.insert(leaf.clone(), value);
                parser.end_of_line()?;
            }
        }
    }
    Ok(Item::Table(root).into_value())
}

/// Walk (creating as needed) to the table at `path`, descending into the
/// last element of any `[[array-of-tables]]` on the way — standard TOML
/// header resolution.
fn navigate<'a>(
    root: &'a mut BTreeMap<String, Item>,
    path: &[String],
) -> Result<&'a mut BTreeMap<String, Item>, String> {
    let mut table = root;
    for segment in path {
        let entry = table
            .entry(segment.clone())
            .or_insert_with(|| Item::Table(BTreeMap::new()));
        table = match entry {
            Item::Table(t) => t,
            Item::TableArray(tables) => tables
                .last_mut()
                .ok_or_else(|| format!("`[[{segment}]]` has no elements yet"))?,
            _ => return Err(format!("key `{segment}` is not a table")),
        };
    }
    Ok(table)
}

/// Maximum value nesting (arrays + inline tables) before parsing fails —
/// the value parser is recursive, so unbounded nesting would overflow the
/// stack instead of returning an error.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current value-nesting depth.
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> TomlError {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        TomlError {
            message: message.into(),
            line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, newlines and comments — between statements and
    /// inside arrays.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TomlError> {
        self.skip_spaces();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`{}",
                b as char,
                match self.peek() {
                    Some(found) if found != b'\n' => format!(", found `{}`", found as char),
                    Some(_) => ", found end of line".into(),
                    None => ", found end of input".into(),
                }
            )))
        }
    }

    /// A statement must end here: optional spaces, optional comment, then
    /// newline or EOF.
    fn end_of_line(&mut self) -> Result<(), TomlError> {
        self.skip_spaces();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.pos += 1;
                Ok(())
            }
            Some(b'\r') if self.bytes.get(self.pos + 1) == Some(&b'\n') => {
                self.pos += 2;
                Ok(())
            }
            Some(other) => {
                Err(self.err(format!("expected end of line, found `{}`", other as char)))
            }
        }
    }

    /// A dotted key path: `a.b."quoted c"`.
    fn key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut path = Vec::new();
        loop {
            self.skip_spaces();
            path.push(self.key_segment()?);
            self.skip_spaces();
            if self.peek() == Some(b'.') {
                self.pos += 1;
            } else {
                return Ok(path);
            }
        }
    }

    fn key_segment(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some(b'"') => self.basic_string(),
            Some(b'\'') => self.literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.pos += 1;
                }
                Ok(std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("ASCII checked")
                    .to_string())
            }
            _ => Err(self.err("expected a key")),
        }
    }

    fn value(&mut self) -> Result<Item, TomlError> {
        match self.peek() {
            Some(b'"') => self.basic_string().map(|s| Item::Scalar(Value::String(s))),
            Some(b'\'') => self
                .literal_string()
                .map(|s| Item::Scalar(Value::String(s))),
            Some(b'[') => self.array(),
            Some(b'{') => self.inline_table(),
            Some(b't') | Some(b'f') => {
                for (word, val) in [("true", true), ("false", false)] {
                    if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                        self.pos += word.len();
                        return Ok(Item::Scalar(Value::Bool(val)));
                    }
                }
                Err(self.err("invalid literal, expected `true` or `false`"))
            }
            Some(b'0'..=b'9' | b'-' | b'+' | b'.') => self.number(),
            Some(other) => Err(self.err(format!("expected a value, found `{}`", other as char))),
            None => Err(self.err("expected a value, found end of input")),
        }
    }

    /// Enter one level of value nesting, or fail at the limit.
    fn descend(&mut self) -> Result<(), TomlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!(
                "recursion limit exceeded ({MAX_DEPTH} nested values)"
            )));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Item, TomlError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(b']') {
                self.pos += 1;
                self.depth -= 1;
                return Ok(Item::Array(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Item::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Item, TomlError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut table = BTreeMap::new();
        self.skip_spaces();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Item::Table(table));
        }
        loop {
            self.skip_spaces();
            let path = self.key_path()?;
            self.expect(b'=')?;
            self.skip_spaces();
            let value = self.value()?;
            let parent = navigate(&mut table, &path[..path.len() - 1]).map_err(|m| self.err(m))?;
            let leaf = path.last().expect("key paths are non-empty");
            if parent.contains_key(leaf) {
                return Err(self.err(format!("duplicate key `{leaf}`")));
            }
            parent.insert(leaf.clone(), value);
            self.skip_spaces();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Item::Table(table));
                }
                _ => return Err(self.err("expected `,` or `}` in inline table")),
            }
        }
    }

    fn basic_string(&mut self) -> Result<String, TomlError> {
        self.pos += 1; // opening quote, checked by the caller
        if self.bytes[self.pos..].starts_with(b"\"\"") {
            return Err(self.err("multi-line strings are not supported in manifests"));
        }
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => out.push(self.unicode_escape(4)?),
                        Some(b'U') => out.push(self.unicode_escape(8)?),
                        Some(other) => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                        None => return Err(self.err("unterminated escape")),
                    }
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, TomlError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + digits)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += digits;
        char::from_u32(cp).ok_or_else(|| self.err("invalid unicode code point"))
    }

    fn literal_string(&mut self) -> Result<String, TomlError> {
        self.pos += 1; // opening quote, checked by the caller
        let start = self.pos;
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated literal string")),
                Some(b'\'') => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<Item, TomlError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'+' | b'-' | b'.' | b'e' | b'E' | b'_')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII subset");
        if raw.contains("--") || raw.ends_with('_') || raw.starts_with('_') {
            return Err(self.err(format!("invalid number `{raw}`")));
        }
        let text: String = raw.chars().filter(|&c| c != '_').collect();
        // Reject the TOML shapes we deliberately do not support, with a
        // pointed message (dates contain `-` after digits, e.g. 2020-05-27).
        if text.len() > 4
            && text[1..].contains('-')
            && !text[1..].contains('e')
            && !text[1..].contains('E')
        {
            return Err(self.err(format!(
                "`{text}` looks like a date — dates are not supported in manifests"
            )));
        }
        if !valid_toml_number(&text) {
            return Err(self.err(format!("invalid number `{text}`")));
        }
        let number = if text.contains('.') || text.contains('e') || text.contains('E') {
            Number::from_f64(
                text.parse::<f64>()
                    .map_err(|_| self.err(format!("invalid float `{text}`")))?,
            )
        } else if let Ok(u) = text.trim_start_matches('+').parse::<u64>() {
            Number::from_u64(u)
        } else {
            Number::from_i64(
                text.parse::<i64>()
                    .map_err(|_| self.err(format!("invalid integer `{text}`")))?,
            )
        };
        Ok(Item::Scalar(Value::Number(number)))
    }
}

/// TOML number grammar (post-underscore-stripping): one optional sign, a
/// no-leading-zero integer part, optional `.digits` fraction, optional
/// signed exponent.  Rust's `f64::from_str` is more lenient (`.5`, `1.`,
/// `++4` via sign trimming), so the shape is checked explicitly.
fn valid_toml_number(text: &str) -> bool {
    let unsigned = text.strip_prefix(['+', '-']).unwrap_or(text);
    let (mantissa, exponent) = match unsigned.split_once(['e', 'E']) {
        Some((m, e)) => (m, Some(e)),
        None => (unsigned, None),
    };
    if let Some(exp) = exponent {
        let digits = exp.strip_prefix(['+', '-']).unwrap_or(exp);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
    }
    let (integer, fraction) = match mantissa.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (mantissa, None),
    };
    if integer.is_empty() || !integer.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    // TOML forbids leading zeros on the integer part (`04`, `0123`).
    if integer.len() > 1 && integer.starts_with('0') {
        return false;
    }
    match fraction {
        Some(f) => !f.is_empty() && f.bytes().all(|b| b.is_ascii_digit()),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_scalars() {
        let v = parse(
            r#"
# A manifest-shaped document.
application = "hurricane"
target_ratio = 10.0
workers = 4
strict = false

[defaults]
tolerance = 0.1

[[fields]]
name = "CLOUDf"
dims = [100, 500, 500]

[[fields]]
name = "PRECIPf"
dims = [ 100,
         500, # trailing comment
         500 ]
target_ratio = 16.0
"#,
        )
        .unwrap();
        assert_eq!(
            v.get("application").and_then(Value::as_str),
            Some("hurricane")
        );
        assert_eq!(v.get("target_ratio").and_then(Value::as_f64), Some(10.0));
        assert_eq!(v.get("workers").and_then(Value::as_f64), Some(4.0));
        let fields = match v.get("fields") {
            Some(Value::Array(a)) => a,
            other => panic!("fields should be an array, got {other:?}"),
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(
            fields[1].get("name").and_then(Value::as_str),
            Some("PRECIPf")
        );
        assert_eq!(
            fields[1].get("dims"),
            Some(&serde_json::json!([100, 500, 500]))
        );
        assert_eq!(
            v.get("defaults")
                .and_then(|d| d.get("tolerance"))
                .and_then(Value::as_f64),
            Some(0.1)
        );
    }

    #[test]
    fn dotted_keys_and_inline_tables() {
        let v = parse("a.b = 1\nc = { d = 2, e.f = \"x\" }\n").unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.get("b")).and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("e"))
                .and_then(|e| e.get("f"))
                .and_then(Value::as_str),
            Some("x")
        );
    }

    #[test]
    fn strings_escapes_and_literals() {
        let v = parse(r#"a = "new\nline \u00e9" "#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_str), Some("new\nline é"));
        let v = parse(r"b = 'C:\raw\path*'").unwrap();
        assert_eq!(v.get("b").and_then(Value::as_str), Some(r"C:\raw\path*"));
    }

    #[test]
    fn numbers_with_underscores_and_signs() {
        let v = parse("a = 1_000\nb = -3\nc = +2.5e2\n").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1000.0));
        assert_eq!(v.get("b").and_then(Value::as_f64), Some(-3.0));
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(250.0));
    }

    #[test]
    fn invalid_number_shapes_are_rejected() {
        for bad in [
            "a = ++4\n",
            "a = .5\n",
            "a = 1.\n",
            "a = 04\n",
            "a = 1e\n",
            "a = 1.2.3\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.to_string().contains("invalid"), "{bad:?}: {err}");
        }
        // Exponent leading zeros are legal TOML; plain zero stays valid.
        assert!(parse("a = 1e07\nb = 0\nc = 0.5\n").is_ok());
    }

    #[test]
    fn errors_are_located_and_readable() {
        let err = parse("a = 1\nb = \n").unwrap_err();
        assert_eq!(err.line, 2);

        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate key `a`"), "{err}");
        assert_eq!(err.line, 2, "duplicate-key errors name the key's own line");

        let err = parse("d = 2020-05-27\n").unwrap_err();
        assert!(err.to_string().contains("date"), "{err}");

        let err = parse("s = \"\"\"x\"\"\"\n").unwrap_err();
        assert!(err.to_string().contains("multi-line"), "{err}");

        let err = parse("x = 1 y = 2\n").unwrap_err();
        assert!(err.to_string().contains("end of line"), "{err}");
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let ok = format!("a = {}0{}\n", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
        let nested = format!("a = {}\n", "[".repeat(100_000));
        let err = parse(&nested).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
        let tables = format!("a = {}\n", "{ k = ".repeat(100_000));
        let err = parse(&tables).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
    }

    #[test]
    fn array_of_tables_conflict_is_rejected() {
        let err = parse("fields = 1\n[[fields]]\n").unwrap_err();
        assert!(err.to_string().contains("conflicts"), "{err}");
    }
}
