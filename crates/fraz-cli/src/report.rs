//! Per-field run reports: the aligned console table the paper-style
//! evaluation prints (compare Tables IV–VI of Underwood et al.) and the
//! JSONL records that land next to the committed bench baselines under
//! `baselines/`.

use serde::Serialize;

/// Everything the run learned about one field, aggregated over its
/// time-step series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FieldRow {
    /// Application name from the manifest.
    pub application: String,
    /// Field name.
    pub field: String,
    /// Compressor registry name.
    pub compressor: String,
    /// The objective, in display form (`ratio 10` / `psnr>=60dB`).
    pub target: String,
    /// Number of time-steps tuned.
    pub steps: usize,
    /// Error-bound setting recommended for the final time-step.
    pub error_bound: f64,
    /// Mean achieved compression ratio over the series.
    pub ratio: f64,
    /// Mean bits per value over the series.
    pub bit_rate: f64,
    /// Mean PSNR (dB) over the series; `None` when quality was not
    /// measured.
    pub psnr: Option<f64>,
    /// Largest pointwise absolute error observed across the series.
    pub max_abs_error: Option<f64>,
    /// Steps whose objective was met (ratio in window / constraint
    /// satisfied).
    pub feasible_steps: usize,
    /// Steps that required full (re)training rather than reusing the
    /// previous step's bound.
    pub retrained_steps: usize,
    /// Total compressor invocations spent by the searches.
    pub evaluations: usize,
    /// Steps seeded straight from the persistent tuning cache; `None` when
    /// the run had no `--tune-cache`.
    pub cache_hits: Option<usize>,
    /// Steps the tuning cache could not seed (cold or stale entries);
    /// `None` when the run had no `--tune-cache`.
    pub cache_misses: Option<usize>,
    /// Wall-clock time spent on this field, in milliseconds.
    pub elapsed_ms: f64,
}

impl FieldRow {
    /// True when every step met its objective.
    pub fn all_feasible(&self) -> bool {
        self.feasible_steps == self.steps
    }

    fn status(&self) -> &'static str {
        if self.all_feasible() {
            "ok"
        } else if self.feasible_steps > 0 {
            "partial"
        } else {
            "miss"
        }
    }
}

/// What the persistent tuning cache did over one run (`--tune-cache`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TuneCacheSummary {
    /// The backing JSONL file.
    pub path: String,
    /// Lookups that found a usable bound.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Bounds recorded for future runs.
    pub stores: usize,
    /// Damaged lines skipped while loading the cache file.
    pub corrupt_lines: usize,
}

/// The whole run: one row per field plus run-level totals.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Per-field rows, in manifest order.
    pub rows: Vec<FieldRow>,
    /// Worker threads the shared pool ran with.
    pub workers: usize,
    /// Wall-clock time of the whole run, in milliseconds.
    pub elapsed_ms: f64,
    /// Tuning-cache counters; `None` when the run had no `--tune-cache`.
    pub tune_cache: Option<TuneCacheSummary>,
}

impl RunReport {
    /// True when every field met its objective on every step.
    pub fn all_feasible(&self) -> bool {
        self.rows.iter().all(FieldRow::all_feasible)
    }

    /// Render the aligned per-field console table.
    pub fn render_table(&self) -> String {
        let header = [
            "field", "steps", "target", "bound", "ratio", "psnr", "evals", "hit", "miss",
            "retrain", "ms", "status",
        ];
        let count = |c: Option<usize>| c.map_or_else(|| "-".into(), |n| n.to_string());
        let mut rows: Vec<Vec<String>> = vec![header.iter().map(|s| s.to_string()).collect()];
        for row in &self.rows {
            rows.push(vec![
                row.field.clone(),
                row.steps.to_string(),
                row.target.clone(),
                format!("{:.3e}", row.error_bound),
                format!("{:.2}", row.ratio),
                row.psnr.map_or_else(|| "-".into(), |p| format!("{p:.1}")),
                row.evaluations.to_string(),
                count(row.cache_hits),
                count(row.cache_misses),
                row.retrained_steps.to_string(),
                format!("{:.0}", row.elapsed_ms),
                row.status().to_string(),
            ]);
        }
        let cols = header.len();
        let mut widths = vec![0usize; cols];
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (r, row) in rows.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the name column, right-align the numbers.
                if i == 0 {
                    out.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    out.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            out.push('\n');
            if r == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }

    /// One compact JSON record per field (the `.jsonl` format used under
    /// `baselines/`), tagged with an experiment name mirroring the bench
    /// records' shape.
    pub fn jsonl_lines(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| serde_json::json!({"experiment": "fraz_cli_run", "row": row}).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(feasible: usize) -> FieldRow {
        FieldRow {
            application: "app".into(),
            field: "CLOUDf".into(),
            compressor: "sz".into(),
            target: "ratio 10".into(),
            steps: 2,
            error_bound: 1.25e-3,
            ratio: 9.8,
            bit_rate: 3.2,
            psnr: Some(41.7),
            max_abs_error: Some(2e-3),
            feasible_steps: feasible,
            retrained_steps: 1,
            evaluations: 40,
            cache_hits: None,
            cache_misses: None,
            elapsed_ms: 12.5,
        }
    }

    #[test]
    fn table_is_aligned_and_labelled() {
        let report = RunReport {
            rows: vec![sample_row(2), sample_row(0)],
            workers: 4,
            elapsed_ms: 25.0,
            tune_cache: None,
        };
        let table = report.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "{table}");
        assert!(lines[0].contains("ratio"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("ok"), "{table}");
        assert!(lines[3].ends_with("miss"), "{table}");
        // Columns align: every body line has the same width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(!report.all_feasible());
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let report = RunReport {
            rows: vec![sample_row(2)],
            workers: 4,
            elapsed_ms: 25.0,
            tune_cache: None,
        };
        let lines = report.jsonl_lines();
        assert_eq!(lines.len(), 1);
        let v: serde_json::Value = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(
            v.get("experiment").and_then(|e| e.as_str()),
            Some("fraz_cli_run")
        );
        let row = v.get("row").unwrap();
        assert_eq!(row.get("field").and_then(|f| f.as_str()), Some("CLOUDf"));
        assert_eq!(row.get("ratio").and_then(|r| r.as_f64()), Some(9.8));
    }
}
