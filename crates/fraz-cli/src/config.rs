//! Manifest file loading: format detection (TOML vs JSON by extension) in
//! front of the shared [`Manifest`] deserialization path.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use fraz_data::manifest::{Manifest, ManifestError};

use crate::toml::{self, TomlError};

/// Errors loading a manifest file.
#[derive(Debug)]
pub enum ConfigError {
    /// The file could not be read.
    Io(String, io::Error),
    /// The extension is neither `.toml` nor `.json`.
    UnknownFormat(String),
    /// TOML syntax error.
    Toml(TomlError),
    /// The document parsed but is not a valid manifest.
    Manifest(ManifestError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Io(path, e) => write!(f, "cannot read `{path}`: {e}"),
            ConfigError::UnknownFormat(path) => write!(
                f,
                "`{path}`: unknown manifest format — use a `.toml` or `.json` extension"
            ),
            ConfigError::Toml(e) => write!(f, "manifest TOML error: {e}"),
            ConfigError::Manifest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ManifestError> for ConfigError {
    fn from(e: ManifestError) -> Self {
        ConfigError::Manifest(e)
    }
}

/// Load and validate the manifest at `path`, dispatching on its extension.
pub fn load_manifest(path: &Path) -> Result<Manifest, ConfigError> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase());
    let read =
        || fs::read_to_string(path).map_err(|e| ConfigError::Io(path.display().to_string(), e));
    match ext.as_deref() {
        Some("toml") => {
            let value = toml::parse(&read()?).map_err(ConfigError::Toml)?;
            Ok(Manifest::from_value(value)?)
        }
        Some("json") => Ok(Manifest::from_json_str(&read()?)?),
        _ => Err(ConfigError::UnknownFormat(path.display().to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write_temp(name: &str, contents: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("fraz_cli_config_{}_{name}", std::process::id()));
        fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn toml_and_json_manifests_parse_identically() {
        let toml_path = write_temp(
            "m.toml",
            concat!(
                "application = \"t\"\ntarget_ratio = 8.0\n\n",
                "[[fields]]\nname = \"a\"\ndtype = \"f32\"\ndims = [4, 5]\nfile = \"a.f32\"\n"
            ),
        );
        let json_path = write_temp(
            "m.json",
            r#"{"application": "t", "target_ratio": 8.0,
                "fields": [{"name": "a", "dtype": "f32", "dims": [4, 5], "file": "a.f32"}]}"#,
        );
        let from_toml = load_manifest(&toml_path).unwrap();
        let from_json = load_manifest(&json_path).unwrap();
        assert_eq!(from_toml, from_json);
        fs::remove_file(toml_path).ok();
        fs::remove_file(json_path).ok();
    }

    #[test]
    fn unknown_extension_is_rejected() {
        let err = load_manifest(Path::new("manifest.yaml")).unwrap_err();
        assert!(err.to_string().contains("`.toml` or `.json`"), "{err}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_manifest(Path::new("/definitely/missing.toml")).unwrap_err();
        assert!(matches!(err, ConfigError::Io(..)), "{err}");
    }

    #[test]
    fn manifest_errors_pass_through_with_context() {
        let path = write_temp("bad.toml", "application = \"t\"\nfields = []\n");
        let err = load_manifest(&path).unwrap_err().to_string();
        assert!(err.contains("no fields declared"), "{err}");
        fs::remove_file(path).ok();
    }
}
