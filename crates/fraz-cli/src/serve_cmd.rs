//! The `fraz serve` subcommand: run the compression service until a
//! termination signal, then drain gracefully.
//!
//! The process prints one `listening on <addr>` line (so wrappers and the
//! drain integration test can discover the bound port), serves until
//! SIGTERM/SIGINT, and then runs the full drain sequence — stop admitting,
//! finish in-flight jobs under the drain deadline, cancel stragglers,
//! flush the tune cache — before exiting.  Exit code `0` means the drain
//! completed inside its deadline with a clean cache flush; `1` means the
//! service had to cancel work or could not flush.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use fraz_serve::server::{start, ServeConfig};
use fraz_store::FaultConfig;

const USAGE: &str = "fraz serve — run the compression service until SIGTERM, then drain

USAGE:
    fraz serve [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>         bind address (default 127.0.0.1:0 = free port)
    --workers <N>              search pool threads (default: cores, capped at 8)
    --store-dir <DIR>          durable object store root (default: in-memory)
    --tune-cache <DIR>         persistent tuning cache (default: cold searches)
    --max-inflight <N>         admission job budget (default 64)
    --deadline-ms <MS>         default per-job deadline, 0 = none (default 0)
    --drain-deadline-ms <MS>   drain window before cancelling jobs (default 5000)
    --chaos <RATE>             inject transient store faults (testing)

On SIGTERM or SIGINT the service stops accepting, drains in-flight jobs,
flushes the tune cache, prints a drain report, and exits.";

/// Signal plumbing without a libc dependency: the C `signal` entry point
/// is declared by hand and the handler just flips an atomic the main loop
/// polls.  Anything fancier (channels, allocation) is not async-signal-safe.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERMINATE: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn requested() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false // no signals: serve until the process is killed
    }
}

struct ServeArgs {
    config: ServeConfig,
}

fn parse(args: &[String]) -> Result<ServeArgs, String> {
    let mut config = ServeConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value_of("--addr")?,
            "--workers" => config.workers = parse_num(&value_of("--workers")?, "--workers")?,
            "--store-dir" => {
                config.store_dir = Some(PathBuf::from(value_of("--store-dir")?));
            }
            "--tune-cache" => {
                config.tune_cache_dir = Some(PathBuf::from(value_of("--tune-cache")?));
            }
            "--max-inflight" => {
                config.admission.max_jobs =
                    parse_num(&value_of("--max-inflight")?, "--max-inflight")?;
            }
            "--deadline-ms" => {
                config.default_deadline_ms =
                    parse_num(&value_of("--deadline-ms")?, "--deadline-ms")?;
            }
            "--drain-deadline-ms" => {
                let ms: u64 = parse_num(&value_of("--drain-deadline-ms")?, "--drain-deadline-ms")?;
                config.drain_deadline = Duration::from_millis(ms);
            }
            "--chaos" => {
                let rate: f64 = parse_num(&value_of("--chaos")?, "--chaos")?;
                config.store_faults = Some(FaultConfig::transient(rate, 20200118));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Err(String::new()); // handled: caller exits 0 via code below
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(ServeArgs { config })
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse `{raw}`"))
}

/// Entry point for `fraz serve`; returns the process exit code.
pub fn run_serve(args: &[String]) -> u8 {
    let parsed = match parse(args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => return 0, // --help
        Err(msg) => {
            eprintln!("fraz serve: {msg}\n\n{USAGE}");
            return 2;
        }
    };

    sig::install();
    let handle = match start(parsed.config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("fraz serve: cannot start: {e}");
            return 1;
        }
    };
    // The discovery line wrappers parse; flushed so a piped reader sees it
    // before the first job arrives.
    println!("fraz serve: listening on {}", handle.local_addr());
    let _ = std::io::stdout().flush();

    while !sig::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("fraz serve: signal received, draining");
    let report = handle.join();
    println!(
        "fraz serve: drained in {:.0} ms ({}, {} cancelled, tune cache {})",
        report.drain_elapsed.as_secs_f64() * 1e3,
        if report.drained_within_deadline {
            "within deadline"
        } else {
            "deadline overrun"
        },
        report.cancelled_jobs,
        if report.tune_cache_flushed {
            "flushed"
        } else {
            "flush FAILED"
        },
    );
    println!(
        "fraz serve: jobs ok {} · shed {} · deadline {} · rejected {} · failed {}",
        report.status.jobs_ok,
        report.status.jobs_shed,
        report.status.jobs_deadline,
        report.status.jobs_rejected,
        report.status.jobs_failed,
    );
    if report.drained_within_deadline && report.tune_cache_flushed {
        0
    } else {
        1
    }
}
