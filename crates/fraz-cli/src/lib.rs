//! The `fraz` command-line tool: FRaZ over real SDRBench-style directories.
//!
//! The paper's evaluation (§V of Underwood et al., IPDPS 2020) runs the
//! fixed-ratio search over whole application directories — Hurricane, NYX,
//! CESM — and reports per-field ratio/PSNR tables.  This crate is that
//! workflow as a binary: a TOML or JSON *dataset manifest* describes each
//! field (name, file(s), dtype, dims, target ratio or minimum PSNR), and
//! `fraz run` drives every field through the shared-pool
//! [`Orchestrator`](fraz_core::Orchestrator), printing an aligned per-field
//! table and appending JSONL records suitable for `baselines/`.
//!
//! Module map:
//!
//! * [`toml`] — a TOML-subset parser producing [`serde_json::Value`] trees,
//!   so TOML and JSON manifests share one derived-`Deserialize` path,
//! * [`config`] — extension-dispatched manifest loading,
//! * [`runner`] — manifest → orchestrator/quality-search execution,
//! * [`report`] — per-field rows, the aligned table, JSONL records,
//! * [`store_cmd`] — the `store create`/`info`/`read` subcommands over
//!   [`fraz_store`] container directories,
//! * [`serve_cmd`] — the `serve` subcommand: the long-running
//!   [`fraz_serve`] service with signal-driven graceful drain,
//! * [`cli`] — argument parsing and the `run`/`validate`/`codecs`/`store`/
//!   `serve` subcommands.
//!
//! The manifest schema itself lives in [`fraz_data::manifest`] so library
//! users can load the same files without the CLI.

pub mod cli;
pub mod config;
pub mod report;
pub mod runner;
pub mod serve_cmd;
pub mod store_cmd;
pub mod toml;

pub use cli::run_cli;
pub use config::load_manifest;
pub use report::{FieldRow, RunReport};
pub use runner::{run, RunError, RunOverrides};
