//! End-to-end tests for zero-file scenario manifests: a manifest whose
//! fields all say `generator = "<regime>"` runs through the full CLI path
//! — validate, the runner, and the actual binary — without a single data
//! file on disk.

use std::path::{Path, PathBuf};
use std::process::Command;

use fraz_cli::runner::{run, RunOverrides};
use fraz_data::manifest::FieldTarget;
use fraz_scenarios::ScenarioSynthesizer;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/scenarios")
}

#[test]
fn scenario_manifest_resolves_without_any_files() {
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let resolved = manifest
        .resolve_with(&fixture_dir(), Some(&ScenarioSynthesizer))
        .unwrap();
    assert_eq!(resolved.fields.len(), 4);
    for field in &resolved.fields {
        assert!(
            field.paths.is_empty(),
            "{}: generated, no files",
            field.name
        );
        assert_eq!(field.series[0].application, "scenarios");
    }
    assert_eq!(resolved.fields[0].series.len(), 2, "smooth2d has two steps");
    assert_eq!(resolved.fields[2].target, FieldTarget::MinPsnr(60.0));
    assert_eq!(resolved.fields[3].target, FieldTarget::Ratio(12.0));

    // Zero-file means zero-file: the fixture directory holds only the
    // manifest itself.
    let on_disk: Vec<_> = std::fs::read_dir(fixture_dir())
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(on_disk, vec!["manifest.toml"], "{on_disk:?}");
}

#[test]
fn runner_executes_the_scenario_manifest_end_to_end() {
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let report = run(
        &manifest,
        &fixture_dir(),
        &RunOverrides {
            workers: Some(4),
            ..RunOverrides::default()
        },
    )
    .unwrap();
    assert_eq!(report.rows.len(), 4);
    for row in &report.rows {
        assert!(row.evaluations >= 1, "{}: no evaluations", row.field);
        assert!(row.error_bound > 0.0, "{}: no bound", row.field);
        assert!(row.ratio > 1.0, "{}: did not compress", row.field);
    }
    // The ratio targets are comfortably inside each regime's achievable
    // range for sz, so the searches must land feasible.
    for name in ["smooth2d", "turbulence1d", "sparse3d"] {
        let row = report.rows.iter().find(|r| r.field == name).unwrap();
        assert_eq!(row.steps, row.feasible_steps, "{name} missed its target");
    }
    let shock = report.rows.iter().find(|r| r.field == "shock1d").unwrap();
    assert!(shock.psnr.unwrap() >= 60.0, "psnr {:?}", shock.psnr);
}

#[test]
fn binary_validates_and_runs_the_scenario_manifest() {
    let config = fixture_dir().join("manifest.toml");
    let validate = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args(["validate", "--config", config.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&validate.stdout);
    assert!(
        validate.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&validate.stderr)
    );
    assert!(stdout.contains("manifest OK"), "{stdout}");
    assert!(stdout.contains("smooth2d"), "{stdout}");

    let run = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args([
            "run",
            "--config",
            config.to_str().unwrap(),
            "--workers",
            "4",
            "--strict",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        run.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(stdout.contains("turbulence1d"), "{stdout}");
}

#[test]
fn mixing_file_and_generator_fails_with_did_you_mean() {
    let dir = std::env::temp_dir().join(format!("fraz_scenario_mix_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let config = dir.join("manifest.toml");
    std::fs::write(
        &config,
        r#"application = "bad"
target_ratio = 8.0

[[fields]]
name = "x"
dtype = "f32"
dims = [64]
file = "x.f32"
generator = "smooth"
"#,
    )
    .unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args(["validate", "--config", config.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("did you mean"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn misspelled_generator_fails_with_suggestion() {
    let dir = std::env::temp_dir().join(format!("fraz_scenario_typo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let config = dir.join("manifest.toml");
    std::fs::write(
        &config,
        r#"application = "bad"
target_ratio = 8.0

[[fields]]
name = "x"
dtype = "f32"
dims = [64]
generator = "turbulance"
"#,
    )
    .unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args(["validate", "--config", config.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("did you mean `turbulence`?"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
