//! End-to-end tests for the `fraz` CLI against the committed
//! `tests/fixtures/mini_app` dataset: TOML and JSON manifests resolve to
//! the same run, the runner produces sane per-field rows, and the actual
//! binary smoke-runs with table + JSONL output.

use std::path::{Path, PathBuf};
use std::process::Command;

use fraz_cli::runner::{run, RunOverrides};
use fraz_data::manifest::FieldTarget;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/mini_app")
}

#[test]
fn toml_and_json_manifests_are_equivalent() {
    let toml = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let json = fraz_cli::load_manifest(&fixture_dir().join("manifest.json")).unwrap();
    assert_eq!(toml, json);
    assert_eq!(toml.fields.len(), 4);
}

#[test]
fn fixture_manifest_resolves_all_series() {
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let resolved = manifest.resolve(&fixture_dir()).unwrap();
    assert_eq!(resolved.fields.len(), 4);
    // The glob and the explicit list find the same two time-steps (the
    // datasets differ only in the field name they were loaded under).
    assert_eq!(resolved.fields[0].series.len(), 2);
    assert_eq!(resolved.fields[1].series.len(), 2);
    for (a, b) in resolved.fields[0]
        .series
        .iter()
        .zip(&resolved.fields[1].series)
    {
        assert_eq!(a.buffer, b.buffer);
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.timestep, b.timestep);
    }
    assert_eq!(resolved.fields[2].series[0].dims.as_slice(), &[48, 48]);
    assert_eq!(resolved.fields[3].target, FieldTarget::MinPsnr(60.0));
}

#[test]
fn runner_produces_per_field_rows_with_metrics() {
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let report = run(
        &manifest,
        &fixture_dir(),
        &RunOverrides {
            workers: Some(4),
            ..RunOverrides::default()
        },
    )
    .unwrap();

    assert_eq!(report.workers, 4);
    assert_eq!(report.rows.len(), 4);
    let by_name = |name: &str| {
        report
            .rows
            .iter()
            .find(|r| r.field == name)
            .unwrap_or_else(|| panic!("row {name} missing"))
    };

    // Ratio fields: feasible, near their (per-field) targets, quality
    // measured on the final pass.
    for (name, target) in [("temp", 8.0), ("temp_explicit", 6.0), ("pressure", 8.0)] {
        let row = by_name(name);
        assert_eq!(row.steps, row.feasible_steps, "{name} missed its target");
        let deviation = (row.ratio - target).abs() / target;
        assert!(
            deviation <= 0.15 + 0.02,
            "{name}: mean ratio {} too far from {target}",
            row.ratio
        );
        assert!(row.psnr.unwrap_or(0.0) > 10.0, "{name}: no plausible PSNR");
        assert!(row.evaluations >= 1);
        assert!(row.error_bound > 0.0);
    }
    // The two-step series reused the first step's bound (≤ 2 retrains,
    // and the second run of identical data should predict successfully).
    assert!(by_name("temp").retrained_steps <= 2);

    // The quality field met its PSNR floor while still compressing.
    let energy = by_name("energy");
    assert_eq!(energy.target, "psnr>=60dB");
    assert_eq!(energy.feasible_steps, 1);
    assert!(energy.psnr.unwrap() >= 60.0, "psnr {:?}", energy.psnr);
    assert!(energy.ratio > 1.0, "quality search should still compress");

    // JSONL rows parse back and carry the field names.
    let lines = report.jsonl_lines();
    assert_eq!(lines.len(), 4);
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(
            v.get("experiment").and_then(|e| e.as_str()),
            Some("fraz_cli_run")
        );
        assert!(v.get("row").and_then(|r| r.get("field")).is_some());
    }

    // The table renders one aligned line per field.
    let table = report.render_table();
    assert_eq!(table.lines().count(), 2 + 4, "{table}");
    assert!(table.contains("temp_explicit"), "{table}");
}

#[test]
fn compressor_override_and_unknown_compressor_error() {
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.json")).unwrap();
    let report = run(
        &manifest,
        &fixture_dir(),
        &RunOverrides {
            workers: Some(2),
            compressor: Some("zfp".to_string()),
            ..RunOverrides::default()
        },
    )
    .unwrap();
    assert!(report.rows.iter().all(|r| r.compressor == "zfp"));

    let err = run(
        &manifest,
        &fixture_dir(),
        &RunOverrides {
            workers: Some(2),
            compressor: Some("szz".to_string()),
            ..RunOverrides::default()
        },
    )
    .unwrap_err()
    .to_string();
    // The registry's did-you-mean suggestion survives to the CLI surface.
    assert!(err.contains("szz"), "{err}");
}

#[test]
fn szx_override_runs_the_fixture_end_to_end() {
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let report = run(
        &manifest,
        &fixture_dir(),
        &RunOverrides {
            workers: Some(2),
            compressor: Some("szx".to_string()),
            ..RunOverrides::default()
        },
    )
    .unwrap();

    assert_eq!(report.rows.len(), 4);
    assert!(report.rows.iter().all(|r| r.compressor == "szx"));
    for row in &report.rows {
        // SZx's achievable ratios are a coarse step function (paper §VI-B3
        // applies even more strongly than for ZFP), so the 8:1 ratio targets
        // may be infeasible on this fixture — but every search must still
        // run, recommend a usable bound, and actually compress.
        assert!(row.evaluations >= 1, "{}: no evaluations", row.field);
        assert!(row.error_bound > 0.0, "{}: no bound", row.field);
        assert!(row.ratio > 1.0, "{}: did not compress", row.field);
    }

    // The quality target is bound-monotone, so szx must satisfy it outright.
    let energy = report.rows.iter().find(|r| r.field == "energy").unwrap();
    assert_eq!(energy.feasible_steps, 1);
    assert!(energy.psnr.unwrap() >= 60.0, "psnr {:?}", energy.psnr);
}

#[test]
fn binary_smoke_run_writes_table_and_jsonl() {
    let out = std::env::temp_dir().join(format!("fraz_cli_smoke_{}.jsonl", std::process::id()));
    std::fs::remove_file(&out).ok();
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args([
            "run",
            "--config",
            fixture_dir().join("manifest.toml").to_str().unwrap(),
            "--workers",
            "4",
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("field"), "{stdout}");
    assert!(stdout.contains("energy"), "{stdout}");

    let jsonl = std::fs::read_to_string(&out).unwrap();
    assert_eq!(jsonl.lines().count(), 4, "{jsonl}");
    for line in jsonl.lines() {
        serde_json::from_str::<serde_json::Value>(line).unwrap();
    }
    std::fs::remove_file(&out).ok();

    // validate exercises resolution without running.
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args([
            "validate",
            "--config",
            fixture_dir().join("manifest.json").to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("manifest OK"), "{stdout}");
}

#[test]
fn tune_cache_second_run_halves_evaluations() {
    let dir = std::env::temp_dir().join(format!("fraz_cli_tune_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let manifest = fraz_cli::load_manifest(&fixture_dir().join("manifest.toml")).unwrap();
    let overrides = RunOverrides {
        workers: Some(2),
        tune_cache: Some(dir.clone()),
        ..RunOverrides::default()
    };

    let cold = run(&manifest, &fixture_dir(), &overrides).unwrap();
    let cold_evals: usize = cold.rows.iter().map(|r| r.evaluations).sum();
    let cold_cache = cold.tune_cache.as_ref().expect("cache summary present");
    assert!(cold_cache.stores > 0, "cold run records bounds");

    // Second process over the same data: every search seeds from the cache.
    let warm = run(&manifest, &fixture_dir(), &overrides).unwrap();
    let warm_evals: usize = warm.rows.iter().map(|r| r.evaluations).sum();
    let warm_cache = warm.tune_cache.as_ref().unwrap();
    assert!(warm_cache.hits > 0, "warm run hits the cache");
    assert!(
        (warm_evals as f64) <= cold_evals as f64 * 0.5,
        "warm run spent {warm_evals} evaluations vs {cold_evals} cold"
    );
    // Warm rows report their hits; every hit step costs a single probe.
    for row in &warm.rows {
        assert!(row.cache_hits.unwrap() >= 1, "{}: no cache hit", row.field);
    }
    // The quality metrics are unchanged: seeding only changes how fast the
    // searches land, not where.
    for (c, w) in cold.rows.iter().zip(&warm.rows) {
        assert_eq!(c.feasible_steps, w.feasible_steps, "{}", c.field);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_manifest_is_reported_readably() {
    let dir = std::env::temp_dir().join(format!("fraz_cli_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.toml");
    std::fs::write(
        &bad,
        "application = \"x\"\ntarget_ratio = 8.0\n[[fields]]\nname = \"a\"\ndtype = \"f32\"\ndims = [1, 2, 3, 4, 5]\nfile = \"a.f32\"\n",
    )
    .unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args(["run", "--config", bad.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("1 to 4 axes"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_create_info_read_round_trip() {
    let dir = std::env::temp_dir().join(format!("fraz_cli_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store_dir = dir.join("store");
    let manifest = fixture_dir().join("manifest.toml");

    // create: every field/time-step becomes one container object.
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args([
            "store",
            "create",
            "--config",
            manifest.to_str().unwrap(),
            "--store",
            store_dir.to_str().unwrap(),
            "--chunk",
            "3x8x8",
            "--compressor",
            "szx",
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    // --chunk is 3-D and applies to the rank-3 fields; the 2-D/1-D fields
    // fall back to the default chunk shape (noted on stderr).
    assert!(stdout.contains("temp/t0"), "{stdout}");
    assert!(stdout.contains("pressure/t0"), "{stdout}");
    assert!(stdout.contains("energy/t0"), "{stdout}");
    let note = String::from_utf8_lossy(&output.stderr);
    assert!(note.contains("rank does not match"), "{note}");

    // info lists every object without decoding payloads.
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args(["store", "info", "--store", store_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("temp/t1"), "{stdout}");

    // read a subregion out as raw bytes.
    let out = dir.join("slab.f32");
    let output = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .args([
            "store",
            "read",
            "--store",
            store_dir.to_str().unwrap(),
            "--key",
            "temp/t0",
            "--region",
            "0..3,4..12,0..16",
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let bytes = std::fs::read(&out).unwrap();
    assert_eq!(bytes.len(), 3 * 8 * 16 * 4, "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
