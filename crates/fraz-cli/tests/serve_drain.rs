//! Graceful-drain acceptance test against the *real* `fraz serve` binary:
//! spawn the process, put it under load, send SIGTERM mid-flight, and
//! assert it drains within its deadline, flushes the tune cache, and
//! exits 0.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use fraz_data::{DType, Dims};
use fraz_scenarios::{Regime, ScenarioConfig};
use fraz_serve::proto::Response;
use fraz_serve::Client;

struct ServeProcess {
    child: Child,
    addr: String,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_serve(extra: &[&str]) -> ServeProcess {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fraz"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "2"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("fraz serve spawns");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("discovery line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("line ends with the address")
        .to_string();
    assert!(
        line.contains("listening on") && addr.contains(':'),
        "unexpected discovery line: {line:?}"
    );
    ServeProcess {
        child,
        addr,
        stdout,
    }
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
}

fn wait_with_timeout(mut child: Child, timeout: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > timeout {
            let _ = child.kill();
            panic!("fraz serve did not exit within {timeout:?} after SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_mid_load_drains_flushes_and_exits_zero() {
    let cache_dir = std::env::temp_dir().join(format!("fraz-serve-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::create_dir_all(&cache_dir).unwrap();

    let mut serve = spawn_serve(&["--tune-cache", cache_dir.to_str().unwrap()]);

    // Put the server under real load: compress jobs whose searched bounds
    // populate the tune cache.
    let dataset = ScenarioConfig::new(Regime::Smooth)
        .with_seed(11)
        .generate(&Dims::d2(32, 32), DType::F32, 0)
        .dataset;
    let mut client = Client::connect(&serve.addr).expect("connect to the spawned server");
    client
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    for _ in 0..3 {
        match client
            .compress("sz", &dataset, 6.0, 0.5, 0)
            .expect("typed reply")
        {
            Response::Compressed { .. } => {}
            other => panic!("warm-up compress answered {:?}", other.kind()),
        }
    }

    // Fire one more job and signal while it is (plausibly) in flight.
    let job = std::thread::spawn({
        let addr = serve.addr.clone();
        let dataset = dataset.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect");
            client
                .set_reply_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            // Whatever the race: a typed reply or a clean close, no hang.
            let _ = client.compress("sz", &dataset, 6.0, 0.5, 0);
        }
    });
    sigterm(&serve.child);
    job.join()
        .expect("in-flight client neither hangs nor panics");

    let status = wait_with_timeout(serve.child, Duration::from_secs(30));
    let mut rest = String::new();
    serve
        .stdout
        .read_to_string(&mut rest)
        .expect("drain report");
    assert!(status.success(), "exit {status:?}; drain output:\n{rest}");
    assert!(
        rest.contains("drained in") && rest.contains("within deadline"),
        "missing drain report: {rest:?}"
    );
    assert!(
        rest.contains("tune cache flushed"),
        "missing flush confirmation: {rest:?}"
    );

    // The flush is real: the cache file exists and carries the warm-up
    // searches' bounds.
    let cache_file = cache_dir.join(fraz_tune::CACHE_FILE);
    let contents = std::fs::read_to_string(&cache_file)
        .unwrap_or_else(|e| panic!("flushed cache missing at {}: {e}", cache_file.display()));
    assert!(
        !contents.trim().is_empty(),
        "flushed cache must carry the warmed bounds"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn sigterm_on_an_idle_server_exits_zero_promptly() {
    let serve = spawn_serve(&[]);
    let started = Instant::now();
    sigterm(&serve.child);
    let status = wait_with_timeout(serve.child, Duration::from_secs(15));
    assert!(status.success(), "idle drain must exit 0, got {status:?}");
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "idle drain must be prompt"
    );
}
