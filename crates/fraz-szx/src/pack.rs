//! Dense fixed-width bit packing for the truncation payload.
//!
//! The kept width is constant across a block, so the hot loops here are
//! branch-light by construction: the writer keeps a 64-bit accumulator and
//! spills whole little-endian words, the reader serves every read from one
//! (occasionally two) unaligned 8-byte loads off an absolute bit cursor.
//! Bits are packed LSB-first; widths of 0 and 64 are both valid.
//!
//! The reader performs **no per-value bounds checks** — callers must
//! validate the payload length against the total bit count up front (the
//! decoder does exactly that), after which reads can only touch the final
//! zero-padded byte.

/// LSB-first bit writer spilling whole 64-bit words.
pub struct PackWriter {
    buf: Vec<u8>,
    acc: u64,
    /// Valid low bits of `acc`, always < 64 between calls.
    nbits: u32,
}

impl PackWriter {
    /// Writer with room for `bits` bits reserved.
    pub fn with_bit_capacity(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits / 8 + 8),
            acc: 0,
            nbits: 0,
        }
    }

    /// Append the low `width` bits of `value` (`width` ≤ 64; the unused high
    /// bits of `value` must be zero).
    #[inline]
    pub fn push(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(width == 64 || value >> width == 0);
        self.acc |= value << self.nbits;
        self.nbits += width;
        if self.nbits >= 64 {
            self.buf.extend_from_slice(&self.acc.to_le_bytes());
            self.nbits -= 64;
            let spilled = width - self.nbits;
            self.acc = if spilled >= 64 { 0 } else { value >> spilled };
        }
    }

    /// Total bits pushed so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Finish and return the packed bytes (final partial byte zero-padded
    /// on the high side).
    pub fn into_bytes(mut self) -> Vec<u8> {
        while self.nbits > 0 {
            self.buf.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits = self.nbits.saturating_sub(8);
        }
        self.buf
    }
}

/// LSB-first bit reader over a length-validated payload.
pub struct PackReader<'a> {
    data: &'a [u8],
    bit_pos: usize,
}

impl<'a> PackReader<'a> {
    /// Wrap a payload slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, bit_pos: 0 }
    }

    /// Unaligned little-endian 8-byte load, zero-padded past the end.
    #[inline]
    fn load(&self, byte: usize) -> u64 {
        if byte + 8 <= self.data.len() {
            u64::from_le_bytes(self.data[byte..byte + 8].try_into().expect("8-byte slice"))
        } else {
            let mut tmp = [0u8; 8];
            if byte < self.data.len() {
                tmp[..self.data.len() - byte].copy_from_slice(&self.data[byte..]);
            }
            u64::from_le_bytes(tmp)
        }
    }

    /// Read the next `width` bits (`width` ≤ 64) into the low bits of a
    /// `u64`.  The caller guarantees the payload holds them (see module
    /// docs).
    #[inline]
    pub fn read(&mut self, width: u32) -> u64 {
        debug_assert!(width <= 64);
        let byte = self.bit_pos >> 3;
        let shift = (self.bit_pos & 7) as u32;
        self.bit_pos += width as usize;
        let lo = self.load(byte) >> shift;
        let avail = 64 - shift;
        let value = if width <= avail {
            lo
        } else {
            lo | (self.load(byte + 8) << avail)
        };
        if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        }
    }

    /// Bits consumed so far.
    pub fn bits_consumed(&self) -> usize {
        self.bit_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state
    }

    #[test]
    fn mixed_width_roundtrip() {
        let mut state = 0xFEED_5EED_u64;
        let fields: Vec<(u64, u32)> = (0..10_000)
            .map(|_| {
                let r = lcg(&mut state);
                let width = (r >> 58) as u32; // 0..=63
                let value = if width == 0 {
                    0
                } else {
                    lcg(&mut state) & ((1u64 << width) - 1)
                };
                (value, width)
            })
            .collect();
        let mut w = PackWriter::with_bit_capacity(0);
        for &(v, n) in &fields {
            w.push(v, n);
        }
        let total: usize = fields.iter().map(|&(_, n)| n as usize).sum();
        assert_eq!(w.bit_len(), total);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), total.div_ceil(8));
        let mut r = PackReader::new(&bytes);
        for &(v, n) in &fields {
            assert_eq!(r.read(n), v, "width {n}");
        }
        assert_eq!(r.bits_consumed(), total);
    }

    #[test]
    fn full_width_values_roundtrip() {
        let values = [0u64, u64::MAX, 0x0123_4567_89AB_CDEF, 1 << 63];
        let mut w = PackWriter::with_bit_capacity(256);
        // Offset by 3 bits so the 64-bit reads straddle words.
        w.push(0b101, 3);
        for &v in &values {
            w.push(v, 64);
        }
        let bytes = w.into_bytes();
        let mut r = PackReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        for &v in &values {
            assert_eq!(r.read(64), v);
        }
    }

    #[test]
    fn tail_reads_are_zero_padded_not_panics() {
        let mut w = PackWriter::with_bit_capacity(16);
        w.push(0x3FF, 10);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = PackReader::new(&bytes);
        assert_eq!(r.read(10), 0x3FF);
    }
}
