//! An SZx-like **ultra-fast** error-bounded lossy compressor for scientific
//! floating-point data.
//!
//! SZ-style codecs pay for their ratios with prediction chains and an entropy
//! stage; SZx (Yu, Di et al., see PAPERS.md) showed that a far simpler design
//! recovers an order of magnitude of throughput while keeping the hard
//! absolute-error guarantee.  This crate implements that tier:
//!
//! 1. **Blockwise classification** — the field is split into fixed-size
//!    blocks ([`SzxConfig::block_size`], default 128 values).  A block whose
//!    value spread fits inside the error bound is *constant*: it costs one
//!    flag bit plus a single midrange value.  Everything else is
//!    *unpredictable*.
//! 2. **Bitwise truncation** — an unpredictable block stores each value's
//!    IEEE-754 bit pattern truncated to the precision the absolute bound
//!    allows: from the block's largest exponent `E` and the bound's exponent
//!    `K = ⌊log₂ e⌋`, keeping `m = clamp(E − K, 0, mantissa bits)` mantissa
//!    bits guarantees a truncation error strictly below `2^(E−m) ≤ e`.  The
//!    kept width (sign + exponent + `m`) is one byte of metadata per block;
//!    the payload is a dense bit-packed array with no per-value branches.
//!
//! There is **no prediction, no quantization and no entropy stage** on the
//! hot path — compression is two passes over each block (classify, pack) and
//! decompression is a single bit-unpack pass, which is what makes this
//! backend roughly an order of magnitude faster than the SZ-like codec and
//! changes the economics of FRaZ's iterative search (one compression per
//! candidate bound).
//!
//! The absolute error bound is a hard guarantee for every finite input:
//! `max_i |d_i − d'_i| ≤ error_bound` (pinned by unit, property and
//! conformance tests).  Non-finite values (NaN, ±∞) force their block to the
//! full-width path and round-trip bit-exactly.
//!
//! # Example
//!
//! ```
//! use fraz_data::{Dataset, Dims};
//! use fraz_szx::{compress, decompress, SzxConfig};
//!
//! let values: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let original = Dataset::from_f32("demo", "wave", 0, Dims::d3(16, 16, 16), values);
//! let compressed = compress(&original, &SzxConfig::with_error_bound(1e-3)).unwrap();
//! let restored = decompress(&compressed).unwrap();
//! let worst = original
//!     .values_f64()
//!     .iter()
//!     .zip(restored.values_f64().iter())
//!     .map(|(a, b)| (a - b).abs())
//!     .fold(0.0f64, f64::max);
//! assert!(worst <= 1e-3);
//! assert!(compressed.len() < original.byte_size());
//! ```

pub mod block;
mod pack;

use fraz_data::{DType, DataBuffer, Dataset, Dims};
use fraz_lossless::bytesio::{ByteReader, ByteWriter};

/// Stream magic ("FSZX").
const MAGIC: u32 = 0x4653_5A58;
/// Format version.
const VERSION: u8 = 1;
/// Largest accepted block size (also enforced on decode so a corrupt header
/// cannot demand absurd allocations).
pub const MAX_BLOCK_SIZE: usize = 1 << 20;

/// Configuration of the SZx-like compressor.
#[derive(Debug, Clone, PartialEq)]
pub struct SzxConfig {
    /// Absolute error bound (must be positive and finite).
    pub error_bound: f64,
    /// Values per classification block; `None` selects 128 (the SZx paper's
    /// default granularity).
    pub block_size: Option<usize>,
}

impl Default for SzxConfig {
    fn default() -> Self {
        Self {
            error_bound: 1e-3,
            block_size: None,
        }
    }
}

impl SzxConfig {
    /// Configuration with the given absolute error bound and the default
    /// block size.
    pub fn with_error_bound(error_bound: f64) -> Self {
        Self {
            error_bound,
            ..Default::default()
        }
    }

    fn block(&self) -> usize {
        self.block_size.unwrap_or(128)
    }

    fn validate(&self) -> Result<(), SzxError> {
        if !(self.error_bound > 0.0 && self.error_bound.is_finite()) {
            return Err(SzxError::InvalidConfig(format!(
                "error bound must be positive and finite, got {}",
                self.error_bound
            )));
        }
        let block = self.block();
        if block == 0 || block > MAX_BLOCK_SIZE {
            return Err(SzxError::InvalidConfig(format!(
                "block size {block} out of range [1, {MAX_BLOCK_SIZE}]"
            )));
        }
        Ok(())
    }
}

/// Errors produced by the SZx-like codec.
#[derive(Debug, Clone, PartialEq)]
pub enum SzxError {
    /// The configuration is invalid (non-positive bound, zero block, …).
    InvalidConfig(String),
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
}

impl std::fmt::Display for SzxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzxError::InvalidConfig(msg) => write!(f, "invalid SZx configuration: {msg}"),
            SzxError::Corrupt(msg) => write!(f, "corrupt SZx stream: {msg}"),
        }
    }
}

impl std::error::Error for SzxError {}

impl From<fraz_lossless::CodingError> for SzxError {
    fn from(e: fraz_lossless::CodingError) -> Self {
        SzxError::Corrupt(e.to_string())
    }
}

/// Compress a dataset under an absolute error bound.
pub fn compress(dataset: &Dataset, config: &SzxConfig) -> Result<Vec<u8>, SzxError> {
    config.validate()?;
    let block = config.block();
    let dtype = dataset.dtype();

    let mut out = ByteWriter::with_capacity(64 + dataset.byte_size() / 2);
    out.put_u32(MAGIC);
    out.put_u8(VERSION);
    out.put_u8(match dtype {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    out.put_u8(dataset.dims.ndims() as u8);
    for &d in dataset.dims.as_slice() {
        out.put_u64(d as u64);
    }
    out.put_u64(dataset.timestep as u64);
    out.put_str(&dataset.application);
    out.put_str(&dataset.field);
    out.put_f64(config.error_bound);
    out.put_u32(block as u32);

    match &dataset.buffer {
        DataBuffer::F32(values) => block::encode(values, block, config.error_bound, &mut out),
        DataBuffer::F64(values) => block::encode(values, block, config.error_bound, &mut out),
    }
    Ok(out.into_bytes())
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Dataset, SzxError> {
    let mut r = ByteReader::new(data);
    let magic = r.get_u32()?;
    if magic != MAGIC {
        return Err(SzxError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(SzxError::Corrupt(format!("unsupported version {version}")));
    }
    let dtype = match r.get_u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(SzxError::Corrupt(format!("unknown dtype tag {other}"))),
    };
    let ndims = r.get_u8()? as usize;
    if ndims == 0 || ndims > 4 {
        return Err(SzxError::Corrupt(format!("invalid dimensionality {ndims}")));
    }
    let mut axes = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = r.get_u64()? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(SzxError::Corrupt(format!("invalid axis length {d}")));
        }
        axes.push(d);
    }
    let mut n: usize = 1;
    for &d in &axes {
        n = n
            .checked_mul(d)
            .ok_or_else(|| SzxError::Corrupt("field size overflows usize".into()))?;
    }
    let dims = Dims::new(&axes);
    let timestep = r.get_u64()? as usize;
    let application = r.get_str()?;
    let field = r.get_str()?;
    let error_bound = r.get_f64()?;
    let block = r.get_u32()? as usize;
    if !(error_bound > 0.0 && error_bound.is_finite()) {
        return Err(SzxError::Corrupt(format!(
            "invalid error bound {error_bound} in header"
        )));
    }
    if block == 0 || block > MAX_BLOCK_SIZE {
        return Err(SzxError::Corrupt(format!(
            "invalid block size {block} in header"
        )));
    }

    let buffer = match dtype {
        DType::F32 => DataBuffer::F32(block::decode::<f32>(&mut r, n, block)?),
        DType::F64 => DataBuffer::F64(block::decode::<f64>(&mut r, n, block)?),
    };
    if r.remaining() != 0 {
        return Err(SzxError::Corrupt(format!(
            "{} trailing bytes after payload",
            r.remaining()
        )));
    }
    Ok(Dataset {
        application,
        field,
        timestep,
        dims,
        buffer,
    })
}

/// The exponent of the largest representable truncation step not exceeding
/// the bound: `K = ⌊log₂ e⌋`, read straight off the IEEE representation.
pub(crate) fn bound_exponent(error_bound: f64) -> i32 {
    let bits = error_bound.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal bound: fall back to the (slower) libm path.
        error_bound.log2().floor() as i32
    } else {
        biased - 1023
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_f32(dims: Dims) -> Dataset {
        let n = dims.len();
        let values: Vec<f32> = (0..n)
            .map(|i| {
                let x = i as f32;
                (x * 0.013).sin() * 5.0 + (x * 0.0007).cos() * 20.0
            })
            .collect();
        Dataset::from_f32("test", "wave", 2, dims, values)
    }

    fn max_error(a: &Dataset, b: &Dataset) -> f64 {
        a.values_f64()
            .iter()
            .zip(b.values_f64().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_3d_respects_bound_and_metadata() {
        let original = wave_f32(Dims::d3(12, 15, 17));
        for eb in [1e-1, 1e-3, 1e-5, 1e-9] {
            let compressed = compress(&original, &SzxConfig::with_error_bound(eb)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(max_error(&original, &restored) <= eb, "eb={eb}");
            assert_eq!(restored.dims, original.dims);
            assert_eq!(restored.application, "test");
            assert_eq!(restored.field, "wave");
            assert_eq!(restored.timestep, 2);
            assert_eq!(restored.dtype(), DType::F32);
        }
    }

    #[test]
    fn roundtrip_1d_2d_4d() {
        for dims in [Dims::d1(5000), Dims::d2(60, 83), Dims::d4(3, 4, 5, 6)] {
            let original = wave_f32(dims);
            let compressed = compress(&original, &SzxConfig::with_error_bound(1e-3)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(max_error(&original, &restored) <= 1e-3);
            assert_eq!(restored.dims, original.dims);
        }
    }

    #[test]
    fn roundtrip_f64_down_to_tiny_bounds() {
        let values: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.01).sin() * 1e6).collect();
        let original = Dataset::from_f64("test", "wave64", 0, Dims::d1(3000), values);
        for eb in [1e-2, 1e-6, 1e-12] {
            let compressed = compress(&original, &SzxConfig::with_error_bound(eb)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert_eq!(restored.dtype(), DType::F64);
            assert!(max_error(&original, &restored) <= eb, "eb={eb}");
        }
    }

    #[test]
    fn constant_field_costs_almost_nothing() {
        let original = Dataset::from_f32("t", "flat", 0, Dims::d2(64, 64), vec![3.25; 4096]);
        let compressed = compress(&original, &SzxConfig::with_error_bound(1e-6)).unwrap();
        // 4096 values · 4 B = 16 KiB raw; 32 constant blocks cost ~4 B each.
        assert!(
            compressed.len() < 512,
            "constant field took {} bytes",
            compressed.len()
        );
        let restored = decompress(&compressed).unwrap();
        assert_eq!(restored.buffer, original.buffer);
    }

    #[test]
    fn larger_bound_never_produces_larger_output() {
        let original = wave_f32(Dims::d3(16, 24, 24));
        let mut last = usize::MAX;
        for eb in [1e-9, 1e-6, 1e-3, 1e-1, 10.0] {
            let size = compress(&original, &SzxConfig::with_error_bound(eb))
                .unwrap()
                .len();
            assert!(size <= last, "eb={eb}: {size} > {last}");
            last = size;
        }
    }

    #[test]
    fn nonfinite_values_roundtrip_bit_exactly() {
        let mut values: Vec<f32> = (0..300).map(|i| (i as f32 * 0.1).sin()).collect();
        values[7] = f32::NAN;
        values[130] = f32::INFINITY;
        values[131] = f32::NEG_INFINITY;
        let original = Dataset::from_f32("t", "holes", 0, Dims::d1(300), values.clone());
        let compressed = compress(&original, &SzxConfig::with_error_bound(1e-3)).unwrap();
        let restored = decompress(&compressed).unwrap();
        let DataBuffer::F32(out) = &restored.buffer else {
            panic!("dtype changed");
        };
        for (i, (a, b)) in values.iter().zip(out.iter()).enumerate() {
            if !a.is_finite() {
                // The non-finite value itself is preserved bit-exactly…
                assert_eq!(a.to_bits(), b.to_bits(), "[{i}] {a} vs {b}");
            } else if i / 128 == 7 / 128 || i / 128 == 130 / 128 {
                // …and so is every neighbour sharing its (full-width) block…
                assert_eq!(a.to_bits(), b.to_bits(), "[{i}] {a} vs {b}");
            } else {
                // …while untouched blocks are truncated as usual.
                assert!((a - b).abs() <= 1e-3, "[{i}] {a} vs {b}");
            }
        }
    }

    #[test]
    fn subnormal_values_respect_the_bound() {
        let values: Vec<f32> = (0..256)
            .map(|i| f32::from_bits(1 + (i as u32 * 977) % 0x007f_ffff))
            .collect();
        let original = Dataset::from_f32("t", "tiny", 0, Dims::d1(256), values);
        for eb in [1e-3, 1e-30, 1e-42] {
            let compressed = compress(&original, &SzxConfig::with_error_bound(eb)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(max_error(&original, &restored) <= eb, "eb={eb}");
        }
    }

    #[test]
    fn mixed_sign_extremes_are_not_misclassified_constant() {
        // min + max overflows to ±∞ when computing the midrange naively; the
        // classifier must fall back to truncation, not emit a bogus constant.
        let mut values = vec![0.0f32; 256];
        values[0] = f32::MAX;
        values[1] = f32::MIN;
        let original = Dataset::from_f32("t", "extreme", 0, Dims::d1(256), values);
        let compressed = compress(&original, &SzxConfig::with_error_bound(1e30)).unwrap();
        let restored = decompress(&compressed).unwrap();
        assert!(max_error(&original, &restored) <= 1e30);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let original = wave_f32(Dims::d1(100));
        for eb in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                compress(&original, &SzxConfig::with_error_bound(eb)),
                Err(SzxError::InvalidConfig(_))
            ));
        }
        for block in [0usize, MAX_BLOCK_SIZE + 1] {
            let config = SzxConfig {
                block_size: Some(block),
                ..Default::default()
            };
            assert!(matches!(
                compress(&original, &config),
                Err(SzxError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn custom_block_sizes_roundtrip() {
        let original = wave_f32(Dims::d2(37, 41));
        for block in [1usize, 8, 100, 1517, 4096] {
            let config = SzxConfig {
                error_bound: 1e-4,
                block_size: Some(block),
            };
            let compressed = compress(&original, &config).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(max_error(&original, &restored) <= 1e-4, "block={block}");
        }
    }

    #[test]
    fn unicode_metadata_roundtrips() {
        let mut original = wave_f32(Dims::d1(64));
        original.field = "QCLOUDf.log10-μ".to_string();
        let compressed = compress(&original, &SzxConfig::default()).unwrap();
        assert_eq!(decompress(&compressed).unwrap().field, original.field);
    }

    #[test]
    fn bound_exponent_matches_log2_floor() {
        for eb in [1e-12, 1e-3, 0.5, 1.0, 1.5, 2.0, 1e9] {
            assert_eq!(bound_exponent(eb), eb.log2().floor() as i32, "{eb}");
        }
        // Exact powers of two are their own exponent.
        assert_eq!(bound_exponent(0.25), -2);
        // Subnormal bounds take the libm path.
        assert_eq!(bound_exponent(f64::from_bits(1) * 4.0), -1072);
    }
}
