//! Blockwise constant/unpredictable classification with IEEE-754 bit
//! truncation — the SZx hot path.
//!
//! The serialized section (after the stream header) is:
//!
//! ```text
//! n_blocks        u64
//! constant_count  u64
//! flags           ⌈n_blocks/8⌉ bytes, bit i set ⇔ block i is constant
//! widths          one u8 per non-constant block (kept bits, in block order)
//! constants       one native-width value per constant block (in block order)
//! payload_len     u64
//! payload         dense LSB-first bit-packed truncated values
//! ```
//!
//! Every count is cross-checked on decode before anything proportional to it
//! is allocated, so a corrupt header yields [`SzxError::Corrupt`], never a
//! panic or an out-of-bounds read.

use fraz_lossless::bytesio::{ByteReader, ByteWriter};
use fraz_lossless::CodingError;

use crate::pack::{PackReader, PackWriter};
use crate::SzxError;

/// An IEEE-754 scalar the blockwise codec can process (`f32` or `f64`).
pub trait SzxFloat: Copy + PartialOrd {
    /// Total bit width (32 or 64).
    const WIDTH: u32;
    /// Fraction (mantissa) bits.
    const MANT_BITS: u32;
    /// Exponent bias.
    const EXP_BIAS: i32;
    /// Sign + exponent bits — the minimum kept width, at which the entire
    /// mantissa is dropped.
    const SIGN_EXP_BITS: u32;
    /// Everything but the sign bit, widened to `u64`.
    const ABS_MASK: u64;
    /// Exponent-all-ones threshold: `bits & ABS_MASK >= EXP_MASK` ⇔ NaN/±∞.
    const EXP_MASK: u64;

    /// The raw bit pattern, widened to `u64`.
    fn to_bits64(self) -> u64;
    /// Rebuild from a (zero-extended) bit pattern.
    fn from_bits64(bits: u64) -> Self;
    /// Widen to `f64` (exact for both supported types).
    fn to_f64(self) -> f64;
    /// Midrange of two finite values in the native type.  May overflow to
    /// `+∞` for extreme spreads — the caller's two-sided bound check rejects
    /// that case and falls back to truncation.
    fn midrange(lo: Self, hi: Self) -> Self;
    /// Append at native width.
    fn write_to(self, out: &mut ByteWriter);
    /// Read at native width.
    fn read_from(r: &mut ByteReader) -> Result<Self, CodingError>;
}

impl SzxFloat for f32 {
    const WIDTH: u32 = 32;
    const MANT_BITS: u32 = 23;
    const EXP_BIAS: i32 = 127;
    const SIGN_EXP_BITS: u32 = 9;
    const ABS_MASK: u64 = 0x7fff_ffff;
    const EXP_MASK: u64 = 0x7f80_0000;

    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn midrange(lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * 0.5
    }
    fn write_to(self, out: &mut ByteWriter) {
        out.put_f32(self);
    }
    fn read_from(r: &mut ByteReader) -> Result<Self, CodingError> {
        r.get_f32()
    }
}

impl SzxFloat for f64 {
    const WIDTH: u32 = 64;
    const MANT_BITS: u32 = 52;
    const EXP_BIAS: i32 = 1023;
    const SIGN_EXP_BITS: u32 = 12;
    const ABS_MASK: u64 = 0x7fff_ffff_ffff_ffff;
    const EXP_MASK: u64 = 0x7ff0_0000_0000_0000;

    #[inline]
    fn to_bits64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn midrange(lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * 0.5
    }
    fn write_to(self, out: &mut ByteWriter) {
        out.put_f64(self);
    }
    fn read_from(r: &mut ByteReader) -> Result<Self, CodingError> {
        r.get_f64()
    }
}

/// Kept width for an unpredictable block whose largest magnitude has bit
/// pattern `abs_max`, under a bound with exponent `k = ⌊log₂ e⌋`.
///
/// With block exponent `E` (subnormals act at the minimum normal exponent,
/// hence the `.max(1)`), keeping `m = clamp(E − k, 0, MANT_BITS)` mantissa
/// bits makes the truncation error of every member strictly less than
/// `2^(E−m) ≤ 2^k ≤ e`.  Non-finite payloads force the full width so NaN/±∞
/// round-trip bit-exactly.
#[inline]
fn kept_width<F: SzxFloat>(abs_max: u64, k: i32) -> u32 {
    if abs_max >= F::EXP_MASK {
        return F::WIDTH;
    }
    let e = ((abs_max >> F::MANT_BITS) as i32).max(1) - F::EXP_BIAS;
    let m = (e - k).clamp(0, F::MANT_BITS as i32) as u32;
    F::SIGN_EXP_BITS + m
}

/// Encode `values` in blocks of `block` values under `error_bound`,
/// appending the serialized section to `out`.
pub fn encode<F: SzxFloat>(values: &[F], block: usize, error_bound: f64, out: &mut ByteWriter) {
    let k = crate::bound_exponent(error_bound);
    let n_blocks = values.len().div_ceil(block);
    let mut flags = vec![0u8; n_blocks.div_ceil(8)];
    let mut widths: Vec<u8> = Vec::with_capacity(n_blocks);
    let mut constants = ByteWriter::with_capacity(256);
    let mut packer =
        PackWriter::with_bit_capacity(values.len().saturating_mul(F::WIDTH as usize) / 2);

    for (bi, chunk) in values.chunks(block).enumerate() {
        let mut mn = chunk[0];
        let mut mx = chunk[0];
        let mut abs_max = 0u64;
        for &v in chunk {
            if v < mn {
                mn = v;
            }
            if v > mx {
                mx = v;
            }
            let a = v.to_bits64() & F::ABS_MASK;
            if a > abs_max {
                abs_max = a;
            }
        }

        // Constant classification: only all-finite blocks qualify (NaN slips
        // through `<`-based min/max), and the midrange must verifiably sit
        // within the bound of *both* extremes — this is what rejects a
        // midrange that overflowed to +∞.
        if abs_max < F::EXP_MASK {
            let mid = F::midrange(mn, mx);
            if mx.to_f64() - mid.to_f64() <= error_bound
                && mid.to_f64() - mn.to_f64() <= error_bound
            {
                flags[bi >> 3] |= 1 << (bi & 7);
                mid.write_to(&mut constants);
                continue;
            }
        }

        let w = kept_width::<F>(abs_max, k);
        widths.push(w as u8);
        let drop = F::WIDTH - w;
        for &v in chunk {
            packer.push(v.to_bits64() >> drop, w);
        }
    }

    let constant_count = (n_blocks - widths.len()) as u64;
    out.put_u64(n_blocks as u64);
    out.put_u64(constant_count);
    out.put_bytes(&flags);
    out.put_bytes(&widths);
    out.put_bytes(&constants.into_bytes());
    let packed_bits = packer.bit_len();
    let payload = packer.into_bytes();
    debug_assert_eq!(payload.len(), packed_bits.div_ceil(8));
    out.put_u64(payload.len() as u64);
    out.put_bytes(&payload);
}

/// Decode `n` values that were encoded in blocks of `block` values.
pub fn decode<F: SzxFloat>(r: &mut ByteReader, n: usize, block: usize) -> Result<Vec<F>, SzxError> {
    let n_blocks = r.get_u64()?;
    if n_blocks != n.div_ceil(block) as u64 {
        return Err(SzxError::Corrupt(format!(
            "block count {n_blocks} inconsistent with {n} values at block size {block}"
        )));
    }
    let n_blocks = n_blocks as usize;
    let constant_count = r.get_u64()? as usize;
    if constant_count > n_blocks {
        return Err(SzxError::Corrupt(format!(
            "constant count {constant_count} exceeds block count {n_blocks}"
        )));
    }

    let flags = r.get_bytes(n_blocks.div_ceil(8))?;
    let flagged = |bi: usize| flags[bi >> 3] >> (bi & 7) & 1 == 1;
    if (0..n_blocks).filter(|&bi| flagged(bi)).count() != constant_count {
        return Err(SzxError::Corrupt(
            "constant flag bitmap disagrees with constant count".into(),
        ));
    }
    if n_blocks % 8 != 0 && flags[n_blocks >> 3] >> (n_blocks & 7) != 0 {
        return Err(SzxError::Corrupt(
            "stray bits set past the end of the flag bitmap".into(),
        ));
    }

    let widths = r.get_bytes(n_blocks - constant_count)?;
    for &w in widths {
        if (w as u32) < F::SIGN_EXP_BITS || (w as u32) > F::WIDTH {
            return Err(SzxError::Corrupt(format!(
                "kept width {w} outside [{}, {}]",
                F::SIGN_EXP_BITS,
                F::WIDTH
            )));
        }
    }

    let elem = (F::WIDTH / 8) as usize;
    let constants_len = constant_count
        .checked_mul(elem)
        .ok_or_else(|| SzxError::Corrupt("constant section length overflows".into()))?;
    let constants = r.get_bytes(constants_len)?;

    // `(n_blocks - 1) * block < n` whenever `n_blocks` is consistent with
    // `n`, so the last-block length below cannot underflow or overflow.
    let block_len = |bi: usize| {
        if bi + 1 == n_blocks {
            n - (n_blocks - 1) * block
        } else {
            block
        }
    };
    let mut total_bits: u128 = 0;
    let mut widx = 0usize;
    for bi in 0..n_blocks {
        if flagged(bi) {
            continue;
        }
        total_bits += block_len(bi) as u128 * widths[widx] as u128;
        widx += 1;
    }

    let payload_len = r.get_u64()? as usize;
    if payload_len as u128 != total_bits.div_ceil(8) {
        return Err(SzxError::Corrupt(format!(
            "payload length {payload_len} does not match {total_bits} packed bits"
        )));
    }
    let payload = r.get_bytes(payload_len)?;

    // Everything is length-validated; from here on decode is branch-light.
    let mut out: Vec<F> = Vec::with_capacity(n);
    let mut creader = ByteReader::new(constants);
    let mut preader = PackReader::new(payload);
    let mut widx = 0usize;
    for bi in 0..n_blocks {
        let len = block_len(bi);
        if flagged(bi) {
            let c = F::read_from(&mut creader)?;
            out.extend(std::iter::repeat(c).take(len));
        } else {
            let w = widths[widx] as u32;
            widx += 1;
            let shift = F::WIDTH - w;
            for _ in 0..len {
                out.push(F::from_bits64(preader.read(w) << shift));
            }
        }
    }
    debug_assert_eq!(preader.bits_consumed() as u128, total_bits);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kept_width_tracks_block_exponent() {
        // Block max ≈ 1.0 (E = 0), bound 2^-10 → keep 10 mantissa bits.
        let abs_max = 1.0f32.to_bits() as u64;
        assert_eq!(kept_width::<f32>(abs_max, -10), 9 + 10);
        // Bound larger than the block max → sign+exponent only.
        assert_eq!(kept_width::<f32>(abs_max, 4), 9);
        // Bound far below the ulp → full width.
        assert_eq!(kept_width::<f32>(abs_max, -60), 32);
        // Non-finite forces full width.
        assert_eq!(kept_width::<f32>(f32::NAN.to_bits() as u64, 4), 32);
        // Subnormal blocks act at the minimum normal exponent.
        let tiny = 1u64; // smallest positive subnormal f32
        assert_eq!(kept_width::<f32>(tiny, -127), 9 + 1);
        assert_eq!(kept_width::<f64>(1u64, -1023), 12 + 1);
    }

    #[test]
    fn truncation_error_is_below_bound_at_every_width() {
        let values: Vec<f64> = (0..999).map(|i| (i as f64 * 0.37).sin() * 3e4).collect();
        for k in [-40i32, -20, -6, 0, 10, 20] {
            let eb = 2f64.powi(k);
            let mut w = ByteWriter::new();
            encode(&values, 64, eb, &mut w);
            let bytes = w.into_bytes();
            let decoded = decode::<f64>(&mut ByteReader::new(&bytes), values.len(), 64).unwrap();
            let worst = values
                .iter()
                .zip(&decoded)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(worst <= eb, "k={k}: worst error {worst} > {eb}");
        }
    }

    #[test]
    fn truncated_section_is_an_error_not_a_panic() {
        let values: Vec<f32> = (0..500).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut w = ByteWriter::new();
        encode(&values, 128, 1e-4, &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let result = decode::<f32>(&mut ByteReader::new(&bytes[..cut]), values.len(), 128);
            assert!(
                result.is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }
}
