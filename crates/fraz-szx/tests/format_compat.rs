//! Wire-format regression fixtures: the committed `.szx` payloads under
//! `tests/fixtures/` pin the exact bytes the encoder produces, so later
//! optimization passes (SIMD truncation, different spill strategies, …)
//! cannot silently change the on-disk format.
//!
//! The raw inputs are deterministic (fixed formulas / seeded LCG) so only
//! the compressed payloads need committing.  To regenerate after an
//! *intentional, versioned* format change (which also requires a new
//! version byte):
//!
//! ```text
//! cargo test -p fraz-szx --test format_compat -- --ignored regenerate
//! ```

use std::path::PathBuf;

use fraz_data::{DataBuffer, Dataset, Dims};
use fraz_szx::{compress, decompress, SzxConfig};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = fixture_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Deterministic inputs (identical across versions by construction).

fn wave_f32() -> Dataset {
    let dims = Dims::d3(12, 15, 17);
    let values: Vec<f32> = (0..dims.len())
        .map(|i| {
            let x = i as f32;
            (x * 0.013).sin() * 5.0 + (x * 0.0007).cos() * 20.0
        })
        .collect();
    Dataset::from_f32("fixture", "wave32", 3, dims, values)
}

fn wave_f64() -> Dataset {
    let values: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.01).sin() * 1e6).collect();
    Dataset::from_f64("fixture", "wave64", 0, Dims::d1(3000), values)
}

fn constant_f32() -> Dataset {
    Dataset::from_f32("fixture", "flat", 1, Dims::d2(48, 48), vec![3.25; 48 * 48])
}

fn nonfinite_f32() -> Dataset {
    let mut values: Vec<f32> = (0..400).map(|i| (i as f32 * 0.1).sin()).collect();
    values[7] = f32::NAN;
    values[200] = f32::INFINITY;
    values[201] = f32::NEG_INFINITY;
    Dataset::from_f32("fixture", "holes", 0, Dims::d1(400), values)
}

fn subnormal_f32() -> Dataset {
    let values: Vec<f32> = (0..256)
        .map(|i| f32::from_bits(1 + (i as u32 * 977) % 0x007f_ffff))
        .collect();
    Dataset::from_f32("fixture", "tiny", 0, Dims::d1(256), values)
}

fn fixtures() -> Vec<(&'static str, Dataset, SzxConfig)> {
    vec![
        (
            "wave_f32_eb1e-3.szx",
            wave_f32(),
            SzxConfig::with_error_bound(1e-3),
        ),
        (
            "wave_f32_eb1e-6_block64.szx",
            wave_f32(),
            SzxConfig {
                error_bound: 1e-6,
                block_size: Some(64),
            },
        ),
        (
            "wave_f64_eb1e-9.szx",
            wave_f64(),
            SzxConfig::with_error_bound(1e-9),
        ),
        (
            "constant_f32_eb1e-6.szx",
            constant_f32(),
            SzxConfig::with_error_bound(1e-6),
        ),
        (
            "nonfinite_f32_eb1e-3.szx",
            nonfinite_f32(),
            SzxConfig::with_error_bound(1e-3),
        ),
        (
            "subnormal_f32_eb1e-40.szx",
            subnormal_f32(),
            SzxConfig::with_error_bound(1e-40),
        ),
    ]
}

fn max_error(a: &Dataset, b: &Dataset) -> f64 {
    a.values_f64()
        .iter()
        .zip(b.values_f64().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

// ---------------------------------------------------------------------------
// The compatibility assertions.

#[test]
fn current_encoder_reproduces_fixtures_byte_for_byte() {
    for (name, dataset, config) in fixtures() {
        let encoded = compress(&dataset, &config).unwrap();
        let committed = read_fixture(name);
        assert_eq!(
            encoded, committed,
            "fixture {name}: the encoder's output bytes changed — this is a \
             wire-format break and needs a version bump plus regeneration"
        );
    }
}

#[test]
fn fixtures_decode_within_their_bound_with_metadata() {
    for (name, dataset, config) in fixtures() {
        let restored = decompress(&read_fixture(name))
            .unwrap_or_else(|e| panic!("fixture {name} failed to decode: {e}"));
        assert_eq!(restored.dims, dataset.dims, "{name}");
        assert_eq!(restored.dtype(), dataset.dtype(), "{name}");
        assert_eq!(restored.application, dataset.application, "{name}");
        assert_eq!(restored.field, dataset.field, "{name}");
        assert_eq!(restored.timestep, dataset.timestep, "{name}");
        let worst = max_error(&dataset, &restored);
        assert!(
            worst <= config.error_bound,
            "{name}: max error {worst:e} > bound {:e}",
            config.error_bound
        );
    }
}

#[test]
fn constant_fixture_is_tiny_and_exact() {
    let restored = decompress(&read_fixture("constant_f32_eb1e-6.szx")).unwrap();
    assert_eq!(restored.buffer, constant_f32().buffer, "constant drifted");
    assert!(read_fixture("constant_f32_eb1e-6.szx").len() < 512);
}

#[test]
fn nonfinite_fixture_round_trips_specials_bit_exactly() {
    let restored = decompress(&read_fixture("nonfinite_f32_eb1e-3.szx")).unwrap();
    let original = nonfinite_f32();
    let (DataBuffer::F32(a), DataBuffer::F32(b)) = (&original.buffer, &restored.buffer) else {
        panic!("dtype changed");
    };
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if !x.is_finite() {
            assert_eq!(x.to_bits(), y.to_bits(), "special value at [{i}] changed");
        }
    }
}

// ---------------------------------------------------------------------------
// Regeneration (run explicitly; see module docs).

#[test]
#[ignore = "writes fixtures; run only for an intentional format change"]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, dataset, config) in fixtures() {
        std::fs::write(dir.join(name), compress(&dataset, &config).unwrap()).unwrap();
    }
}
