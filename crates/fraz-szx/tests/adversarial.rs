//! Adversarial-input tests: a corrupt or truncated stream must yield
//! `Err(SzxError::Corrupt)` — never a panic, an abort, or an out-of-bounds
//! read.  Every assertion here is on `Err`; there is no `#[should_panic]`
//! anywhere because panicking *is* the failure mode under test.

use fraz_data::{Dataset, Dims};
use fraz_szx::{compress, decompress, SzxConfig, SzxError};

/// A small valid stream: f32, 1-D, app "t", field "f" (1-byte strings keep
/// the header offsets below stable).
fn valid_stream() -> Vec<u8> {
    let values: Vec<f32> = (0..500).map(|i| (i as f32 * 0.11).sin() * 3.0).collect();
    let dataset = Dataset::from_f32("t", "f", 9, Dims::d1(500), values);
    compress(&dataset, &SzxConfig::with_error_bound(1e-3)).unwrap()
}

// Header layout for the `valid_stream` dataset (1-D, 1-byte strings):
// magic u32 | version u8 | dtype u8 | ndims u8 | axis u64 | timestep u64 |
// app (u16 len + 1) | field (u16 len + 1) | error_bound f64 | block u32 |
// n_blocks u64 | constant_count u64 | ...
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_DTYPE: usize = 5;
const OFF_NDIMS: usize = 6;
const OFF_AXIS: usize = 7;
const OFF_BOUND: usize = 7 + 8 + 8 + 3 + 3;
const OFF_BLOCK: usize = OFF_BOUND + 8;
const OFF_NBLOCKS: usize = OFF_BLOCK + 4;
const OFF_CONSTANT_COUNT: usize = OFF_NBLOCKS + 8;

fn expect_corrupt(data: &[u8], what: &str) {
    match decompress(data) {
        Err(SzxError::Corrupt(_)) => {}
        Err(other) => panic!("{what}: wrong error variant: {other}"),
        Ok(_) => panic!("{what}: decoded successfully"),
    }
}

fn patched(base: &[u8], offset: usize, bytes: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    out[offset..offset + bytes.len()].copy_from_slice(bytes);
    out
}

#[test]
fn empty_and_tiny_inputs_are_errors() {
    expect_corrupt(&[], "empty input");
    expect_corrupt(&[0x46], "one byte");
    expect_corrupt(&0x4653_5A58u32.to_le_bytes(), "magic only");
}

#[test]
fn every_truncated_prefix_is_an_error() {
    let stream = valid_stream();
    for cut in 0..stream.len() {
        let result = decompress(&stream[..cut]);
        assert!(
            result.is_err(),
            "prefix of {cut}/{} bytes decoded",
            stream.len()
        );
    }
}

#[test]
fn trailing_garbage_is_an_error() {
    let mut stream = valid_stream();
    stream.push(0);
    expect_corrupt(&stream, "one trailing byte");
    stream.extend_from_slice(&[0xAB; 64]);
    expect_corrupt(&stream, "65 trailing bytes");
}

#[test]
fn bad_magic_and_version_are_errors() {
    let stream = valid_stream();
    expect_corrupt(
        &patched(&stream, OFF_MAGIC, &0xDEAD_BEEFu32.to_le_bytes()),
        "wrong magic",
    );
    expect_corrupt(&patched(&stream, OFF_VERSION, &[0]), "version 0");
    expect_corrupt(&patched(&stream, OFF_VERSION, &[99]), "future version");
}

#[test]
fn bad_dtype_and_ndims_are_errors() {
    let stream = valid_stream();
    for dtype in [2u8, 7, 255] {
        expect_corrupt(&patched(&stream, OFF_DTYPE, &[dtype]), "unknown dtype");
    }
    for ndims in [0u8, 5, 200] {
        expect_corrupt(&patched(&stream, OFF_NDIMS, &[ndims]), "bad ndims");
    }
    // Flipping f32 → f64 can stay self-consistent (the width range and
    // payload length still line up, and there is no checksum), so decode may
    // succeed — but it must not panic, and any success must honour the header.
    match decompress(&patched(&stream, OFF_DTYPE, &[1])) {
        Ok(restored) => assert_eq!(restored.dtype(), fraz_data::DType::F64),
        Err(SzxError::Corrupt(_)) => {}
        Err(other) => panic!("dtype flip: wrong error variant: {other}"),
    }
}

#[test]
fn bad_axes_are_errors_not_allocations() {
    let stream = valid_stream();
    expect_corrupt(
        &patched(&stream, OFF_AXIS, &0u64.to_le_bytes()),
        "zero axis",
    );
    // An absurd axis length must be rejected before any allocation sized by
    // it happens (decode validates section lengths against the input first).
    expect_corrupt(
        &patched(&stream, OFF_AXIS, &u64::MAX.to_le_bytes()),
        "huge axis",
    );
    expect_corrupt(
        &patched(&stream, OFF_AXIS, &(1u64 << 41).to_le_bytes()),
        "axis above cap",
    );
    // 4 × 2^40 axes would overflow the usize element count.
    let mut four_d = patched(&stream, OFF_NDIMS, &[4]);
    four_d = patched(&four_d, OFF_AXIS, &(1u64 << 40).to_le_bytes());
    expect_corrupt(&four_d, "ndims raised without payload");
}

#[test]
fn bad_bound_and_block_size_are_errors() {
    let stream = valid_stream();
    for bound in [0.0f64, -1e-3, f64::NAN, f64::INFINITY] {
        expect_corrupt(
            &patched(&stream, OFF_BOUND, &bound.to_le_bytes()),
            "bad header bound",
        );
    }
    expect_corrupt(&patched(&stream, OFF_BLOCK, &0u32.to_le_bytes()), "block 0");
    expect_corrupt(
        &patched(&stream, OFF_BLOCK, &u32::MAX.to_le_bytes()),
        "block above cap",
    );
}

#[test]
fn inconsistent_section_counts_are_errors() {
    let stream = valid_stream();
    // 500 values at block 128 means exactly 4 blocks; anything else lies.
    for n_blocks in [0u64, 3, 5, u64::MAX] {
        expect_corrupt(
            &patched(&stream, OFF_NBLOCKS, &n_blocks.to_le_bytes()),
            "wrong block count",
        );
    }
    for constant_count in [1u64, 4, u64::MAX] {
        // The valid stream has 0 constant blocks; a nonzero claim must be
        // caught by the flag-bitmap cross-check (or the count cap).
        expect_corrupt(
            &patched(&stream, OFF_CONSTANT_COUNT, &constant_count.to_le_bytes()),
            "wrong constant count",
        );
    }
}

#[test]
fn corrupt_flags_and_widths_are_errors() {
    let stream = valid_stream();
    // 4 blocks → 1 flag byte.
    let flags_off = OFF_CONSTANT_COUNT + 8;
    // A stray bit above block 3 in the flag byte is non-canonical…
    expect_corrupt(&patched(&stream, flags_off, &[0x10]), "stray flag bit");
    // …and a genuine flag bit contradicts constant_count = 0.
    expect_corrupt(&patched(&stream, flags_off, &[0x01]), "flag vs count");
    let widths_off = flags_off + 1;
    for width in [0u8, 8, 33, 255] {
        // f32 kept widths live in [9, 32].
        expect_corrupt(
            &patched(&stream, widths_off, &[width]),
            "width out of range",
        );
    }
}

#[test]
fn wrong_payload_length_is_an_error() {
    let stream = valid_stream();
    let payload_len_off = OFF_CONSTANT_COUNT + 8 + 1 + 4; // flags + 4 widths
    expect_corrupt(
        &patched(&stream, payload_len_off, &0u64.to_le_bytes()),
        "payload length zeroed",
    );
    expect_corrupt(
        &patched(&stream, payload_len_off, &u64::MAX.to_le_bytes()),
        "payload length huge",
    );
}

#[test]
fn random_single_byte_corruption_never_panics() {
    // No checksum means some corruptions still decode (to different values);
    // the contract here is only that none of them panic or read OOB.
    let stream = valid_stream();
    for i in 0..stream.len() {
        for flip in [0x01u8, 0xFF] {
            let mut copy = stream.clone();
            copy[i] ^= flip;
            let _ = decompress(&copy);
        }
    }
}

#[test]
fn random_garbage_inputs_never_panic() {
    let mut state = 0x0BAD_5EED_u64;
    for len in [1usize, 7, 16, 64, 256, 4096] {
        for _ in 0..50 {
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            let _ = decompress(&garbage);
        }
    }
}
