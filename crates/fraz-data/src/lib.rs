//! Scientific floating-point dataset substrate for FRaZ-rs.
//!
//! The FRaZ paper evaluates on five SDRBench applications (Hurricane, HACC,
//! CESM-ATM, EXAALT, NYX), each a collection of *fields* sampled over a
//! sequence of *time-steps*, stored as flat little-endian `f32` arrays.  Those
//! raw archives are tens of gigabytes and cannot be redistributed, so this
//! crate provides:
//!
//! * [`Dataset`] / [`buffer::DataBuffer`] / [`dims::Dims`] — an N-dimensional
//!   (1-D to 4-D) container for single- or double-precision fields, with the
//!   statistics the codecs and the metrics crate need,
//! * [`io`] — readers and writers for the flat `.f32` / `.f64` layout used by
//!   SDRBench, so real archive files can be dropped in when available,
//! * [`synthetic`] — deterministic generators that mimic each application's
//!   dimensionality, field structure, smoothness, value range and temporal
//!   coherence.  These are the workloads used by the experiment
//!   reproductions; DESIGN.md documents why the substitution preserves the
//!   behaviour FRaZ exercises,
//! * [`catalog`] — Table-III-style descriptors of the synthetic applications,
//! * [`manifest`] — declarative dataset manifests (field name, file, dtype,
//!   dims, target) that let the `fraz` CLI run FRaZ over a directory of real
//!   archive files without any Rust code.

pub mod buffer;
pub mod catalog;
pub mod dims;
pub mod io;
pub mod manifest;
pub mod synthetic;

use std::fmt;

pub use buffer::{DType, DataBuffer};
pub use dims::Dims;

/// One field of one application at one time-step — the unit of compression
/// (the paper's `D_{f,t}`).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Application name, e.g. `"hurricane"`.
    pub application: String,
    /// Field name, e.g. `"CLOUDf"`.
    pub field: String,
    /// Time-step index within the field's series.
    pub timestep: usize,
    /// Grid dimensions (slowest-varying first).
    pub dims: Dims,
    /// The values themselves.
    pub buffer: DataBuffer,
}

impl Dataset {
    /// Construct a dataset from single-precision values.
    ///
    /// # Panics
    /// Panics if `values.len()` does not match `dims.len()`.
    pub fn from_f32(
        application: impl Into<String>,
        field: impl Into<String>,
        timestep: usize,
        dims: Dims,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(
            values.len(),
            dims.len(),
            "value count must match the grid size"
        );
        Self {
            application: application.into(),
            field: field.into(),
            timestep,
            dims,
            buffer: DataBuffer::F32(values),
        }
    }

    /// Construct a dataset from double-precision values.
    ///
    /// # Panics
    /// Panics if `values.len()` does not match `dims.len()`.
    pub fn from_f64(
        application: impl Into<String>,
        field: impl Into<String>,
        timestep: usize,
        dims: Dims,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            values.len(),
            dims.len(),
            "value count must match the grid size"
        );
        Self {
            application: application.into(),
            field: field.into(),
            timestep,
            dims,
            buffer: DataBuffer::F64(values),
        }
    }

    /// Number of data points (`n` in the paper).
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Uncompressed size in bytes (`s(D_{f,t})`).
    pub fn byte_size(&self) -> usize {
        self.buffer.byte_size()
    }

    /// Element type of the buffer.
    pub fn dtype(&self) -> DType {
        self.buffer.dtype()
    }

    /// Values widened to `f64` regardless of storage type.
    pub fn values_f64(&self) -> Vec<f64> {
        self.buffer.to_f64_vec()
    }

    /// Summary statistics over the field.
    pub fn stats(&self) -> FieldStats {
        FieldStats::compute(&self.buffer.to_f64_vec())
    }

    /// Extract a 2-D slice (the last two dimensions) at the given index of
    /// the slowest dimension, for visual-quality metrics.  For 1-D and 2-D
    /// data the whole field is returned reshaped to 2-D.
    pub fn slice2d(&self, index: usize) -> (usize, usize, Vec<f64>) {
        let values = self.buffer.to_f64_vec();
        let d = self.dims.as_slice();
        match d.len() {
            0 => (0, 0, Vec::new()),
            1 => (1, d[0], values),
            2 => (d[0], d[1], values),
            _ => {
                let rows = d[d.len() - 2];
                let cols = d[d.len() - 1];
                let plane = rows * cols;
                let nplanes = self.len() / plane;
                let idx = index.min(nplanes.saturating_sub(1));
                let start = idx * plane;
                (rows, cols, values[start..start + plane].to_vec())
            }
        }
    }

    /// A descriptive identifier used in experiment logs.
    pub fn label(&self) -> String {
        format!("{}:{}:t{}", self.application, self.field, self.timestep)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} field={} t={} dims={} dtype={:?}",
            self.application,
            self.field,
            self.timestep,
            self.dims,
            self.dtype()
        )
    }
}

/// Summary statistics of a field, used by codecs (value-range-relative error
/// bounds) and metrics (PSNR normalization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub std_dev: f64,
}

impl FieldStats {
    /// Compute statistics over a slice; an empty slice yields all zeros.
    pub fn compute(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / values.len() as f64;
        let var =
            values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        Self {
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// `max - min`, the normalization used for value-range-relative bounds
    /// and PSNR.
    pub fn value_range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_construction_and_accessors() {
        let d = Dataset::from_f32("app", "field", 3, Dims::d2(4, 5), vec![1.0; 20]);
        assert_eq!(d.len(), 20);
        assert_eq!(d.byte_size(), 80);
        assert_eq!(d.dtype(), DType::F32);
        assert_eq!(d.timestep, 3);
        assert!(!d.is_empty());
        assert_eq!(d.label(), "app:field:t3");
        assert!(d.to_string().contains("field=field"));
    }

    #[test]
    #[should_panic(expected = "value count must match")]
    fn mismatched_length_panics() {
        let _ = Dataset::from_f32("a", "b", 0, Dims::d1(10), vec![0.0; 5]);
    }

    #[test]
    fn stats_are_correct() {
        let d = Dataset::from_f64("a", "b", 0, Dims::d1(4), vec![1.0, 2.0, 3.0, 4.0]);
        let s = d.stats();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.value_range(), 3.0);
    }

    #[test]
    fn stats_of_empty_are_zero() {
        let s = FieldStats::compute(&[]);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.value_range(), 0.0);
    }

    #[test]
    fn slice2d_of_3d_extracts_plane() {
        // dims 2x3x4: plane = 12 values.
        let values: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let d = Dataset::from_f32("a", "b", 0, Dims::d3(2, 3, 4), values);
        let (rows, cols, plane) = d.slice2d(1);
        assert_eq!((rows, cols), (3, 4));
        assert_eq!(plane.len(), 12);
        assert_eq!(plane[0], 12.0);
    }

    #[test]
    fn slice2d_of_1d_and_2d() {
        let d1 = Dataset::from_f32("a", "b", 0, Dims::d1(6), vec![0.0; 6]);
        assert_eq!(d1.slice2d(0).0, 1);
        let d2 = Dataset::from_f32("a", "b", 0, Dims::d2(2, 3), vec![0.0; 6]);
        assert_eq!(d2.slice2d(5), (2, 3, vec![0.0; 6]));
    }

    #[test]
    fn values_f64_widens() {
        let d = Dataset::from_f32("a", "b", 0, Dims::d1(2), vec![1.5, -2.25]);
        assert_eq!(d.values_f64(), vec![1.5, -2.25]);
    }
}
