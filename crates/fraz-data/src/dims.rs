//! Grid dimensions and index arithmetic for 1-D to 4-D structured fields.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Dimensions of a structured grid, slowest-varying axis first (C order).
///
/// SDRBench fields are 1-D (HACC, EXAALT), 2-D (CESM-ATM) or 3-D (Hurricane,
/// NYX); 4-D is supported for completeness (e.g. stacking time into one
/// buffer).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims(Vec<usize>);

impl Dims {
    /// Create from an explicit axis list (slowest first).
    ///
    /// # Panics
    /// Panics if the list is empty, longer than 4 axes, or contains a zero.
    pub fn new(axes: &[usize]) -> Self {
        assert!(
            !axes.is_empty() && axes.len() <= 4,
            "1 to 4 dimensions are supported, got {}",
            axes.len()
        );
        assert!(
            axes.iter().all(|&a| a > 0),
            "all dimensions must be non-zero: {axes:?}"
        );
        Self(axes.to_vec())
    }

    /// 1-D grid of `n` points.
    pub fn d1(n: usize) -> Self {
        Self::new(&[n])
    }

    /// 2-D grid (`rows` x `cols`, `cols` fastest).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self::new(&[rows, cols])
    }

    /// 3-D grid (`d0` slowest, `d2` fastest).
    pub fn d3(d0: usize, d1: usize, d2: usize) -> Self {
        Self::new(&[d0, d1, d2])
    }

    /// 4-D grid.
    pub fn d4(d0: usize, d1: usize, d2: usize, d3: usize) -> Self {
        Self::new(&[d0, d1, d2, d3])
    }

    /// Number of axes.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Total number of grid points.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True if any axis has length zero (cannot happen through the
    /// constructors; kept for defensive call sites).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The axis lengths, slowest first.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides (elements, not bytes): `stride[i]` is the linear
    /// distance between neighbours along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear index of the point at `coords` (one coordinate per axis).
    ///
    /// # Panics
    /// Panics (in debug builds) if a coordinate is out of range or the
    /// coordinate count is wrong.
    #[inline]
    pub fn linear_index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.0.len());
        let strides = self.strides();
        let mut idx = 0;
        for (i, (&c, &s)) in coords.iter().zip(strides.iter()).enumerate() {
            debug_assert!(c < self.0[i], "coordinate {c} out of range on axis {i}");
            idx += c * s;
        }
        idx
    }

    /// Coordinates of the point at linear index `idx`.
    #[inline]
    pub fn coords(&self, mut idx: usize) -> Vec<usize> {
        let strides = self.strides();
        let mut coords = vec![0usize; self.0.len()];
        for (i, &s) in strides.iter().enumerate() {
            coords[i] = idx / s;
            idx %= s;
        }
        coords
    }

    /// Iterate over the origins of non-overlapping blocks of `block` points
    /// per axis, covering the whole grid (edge blocks may be smaller).
    pub fn block_origins(&self, block: usize) -> Vec<Vec<usize>> {
        assert!(block > 0);
        let mut origins = vec![vec![]];
        for &axis_len in &self.0 {
            let mut next = Vec::new();
            for origin in &origins {
                let mut start = 0;
                while start < axis_len {
                    let mut o = origin.clone();
                    o.push(start);
                    next.push(o);
                    start += block;
                }
            }
            origins = next;
        }
        origins
    }
}

impl fmt::Display for Dims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert_eq!(Dims::d1(10).len(), 10);
        assert_eq!(Dims::d2(3, 4).len(), 12);
        assert_eq!(Dims::d3(2, 3, 4).len(), 24);
        assert_eq!(Dims::d4(2, 2, 2, 2).len(), 16);
        assert_eq!(Dims::d3(2, 3, 4).ndims(), 3);
        assert_eq!(Dims::d2(3, 4).to_string(), "3x4");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_axis_panics() {
        let _ = Dims::new(&[4, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "1 to 4 dimensions")]
    fn too_many_axes_panic() {
        let _ = Dims::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Dims::d3(2, 3, 4).strides(), vec![12, 4, 1]);
        assert_eq!(Dims::d2(5, 7).strides(), vec![7, 1]);
        assert_eq!(Dims::d1(9).strides(), vec![1]);
    }

    #[test]
    fn linear_index_and_coords_are_inverse() {
        let dims = Dims::d3(3, 4, 5);
        for idx in 0..dims.len() {
            let c = dims.coords(idx);
            assert_eq!(dims.linear_index(&c), idx);
        }
    }

    #[test]
    fn specific_index() {
        let dims = Dims::d3(2, 3, 4);
        assert_eq!(dims.linear_index(&[1, 2, 3]), 1 * 12 + 2 * 4 + 3);
        assert_eq!(dims.coords(23), vec![1, 2, 3]);
    }

    #[test]
    fn block_origins_cover_grid() {
        let dims = Dims::d2(5, 7);
        let origins = dims.block_origins(3);
        // ceil(5/3) * ceil(7/3) = 2 * 3 = 6 blocks.
        assert_eq!(origins.len(), 6);
        assert!(origins.contains(&vec![0, 0]));
        assert!(origins.contains(&vec![3, 6]));
    }

    #[test]
    fn block_origins_1d() {
        let dims = Dims::d1(10);
        assert_eq!(dims.block_origins(4), vec![vec![0], vec![4], vec![8]]);
    }
}
