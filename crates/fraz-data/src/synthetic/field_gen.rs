//! Low-level synthesis of smooth, scientifically plausible fields.
//!
//! All synthetic applications are built from the same primitive: a
//! band-limited *spectral field* — a sum of random Fourier modes whose
//! amplitudes decay with wavenumber — optionally passed through value
//! transforms (exponentiation for log-normal density fields, thresholding for
//! sparse cloud-like fields, …).  The modes carry per-mode temporal
//! frequencies so consecutive time-steps are strongly correlated but not
//! identical, which is exactly the property FRaZ's time-step prediction reuse
//! (Algorithm 1) exploits.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dims::Dims;

/// Derive a deterministic child seed from a base seed and a label, so every
/// (application, field) pair gets an independent but reproducible stream.
pub fn derive_seed(base: u64, label: &str) -> u64 {
    // FNV-1a over the label, mixed with the base seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base.rotate_left(17);
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Deterministic RNG used by all generators.
pub fn rng_for(seed: u64, label: &str) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(derive_seed(seed, label))
}

/// Sample a standard normal deviate via Box–Muller (rand_distr is not a
/// workspace dependency; two uniforms per call are cheap enough here).
pub fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// One Fourier mode of a spectral field.
#[derive(Debug, Clone, Copy)]
struct Mode {
    /// Spatial angular frequencies per axis (radians per normalized axis).
    k: [f64; 3],
    /// Amplitude.
    amp: f64,
    /// Spatial phase.
    phase: f64,
    /// Temporal angular frequency (radians per time-step).
    omega: f64,
}

/// A band-limited random field over a normalized `[0,1]^d` domain.
#[derive(Debug, Clone)]
pub struct SpectralField {
    modes: Vec<Mode>,
    /// Constant offset added to the sum.
    pub offset: f64,
    /// Scale applied to the sum before the offset.
    pub scale: f64,
}

/// Parameters controlling a [`SpectralField`].
#[derive(Debug, Clone)]
pub struct SpectralConfig {
    /// Number of random Fourier modes.
    pub modes: usize,
    /// Largest wavenumber (cycles across the domain) sampled.
    pub max_wavenumber: f64,
    /// Spectral slope: amplitude ~ (1 + |k|)^(-slope).  Larger = smoother.
    pub slope: f64,
    /// Standard deviation of per-mode temporal frequency (radians/step).
    pub temporal_rate: f64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        Self {
            modes: 32,
            max_wavenumber: 8.0,
            slope: 1.5,
            temporal_rate: 0.15,
        }
    }
}

impl SpectralField {
    /// Draw a random spectral field with the given configuration.
    pub fn random(rng: &mut impl Rng, config: &SpectralConfig) -> Self {
        let mut modes = Vec::with_capacity(config.modes);
        for _ in 0..config.modes {
            let k = [
                rng.gen_range(-config.max_wavenumber..config.max_wavenumber),
                rng.gen_range(-config.max_wavenumber..config.max_wavenumber),
                rng.gen_range(-config.max_wavenumber..config.max_wavenumber),
            ];
            let kmag = (k[0] * k[0] + k[1] * k[1] + k[2] * k[2]).sqrt();
            let amp = (1.0 + kmag).powf(-config.slope) * (0.5 + rng.gen_range(0.0..1.0));
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let omega = normal(rng) * config.temporal_rate;
            modes.push(Mode {
                k: [
                    k[0] * std::f64::consts::TAU,
                    k[1] * std::f64::consts::TAU,
                    k[2] * std::f64::consts::TAU,
                ],
                amp,
                phase,
                omega,
            });
        }
        Self {
            modes,
            offset: 0.0,
            scale: 1.0,
        }
    }

    /// Evaluate the field at normalized coordinates `(x, y, z)` and time-step
    /// `t` (unused axes should be passed as 0).
    #[inline]
    pub fn eval(&self, x: f64, y: f64, z: f64, t: f64) -> f64 {
        let mut sum = 0.0;
        for m in &self.modes {
            sum += m.amp * (m.k[0] * x + m.k[1] * y + m.k[2] * z + m.phase + m.omega * t).sin();
        }
        self.scale * sum + self.offset
    }

    /// Sample the field over a whole grid at time-step `t`, in row-major
    /// order matching [`Dims`].
    pub fn sample_grid(&self, dims: &Dims, t: f64) -> Vec<f64> {
        let d = dims.as_slice();
        let n = dims.len();
        let mut out = Vec::with_capacity(n);
        match d.len() {
            1 => {
                let nx = d[0];
                for i in 0..nx {
                    let x = i as f64 / nx as f64;
                    out.push(self.eval(x, 0.0, 0.0, t));
                }
            }
            2 => {
                let (nr, nc) = (d[0], d[1]);
                for r in 0..nr {
                    let y = r as f64 / nr as f64;
                    for c in 0..nc {
                        let x = c as f64 / nc as f64;
                        out.push(self.eval(x, y, 0.0, t));
                    }
                }
            }
            3 => {
                let (nz, ny, nx) = (d[0], d[1], d[2]);
                for iz in 0..nz {
                    let z = iz as f64 / nz as f64;
                    for iy in 0..ny {
                        let y = iy as f64 / ny as f64;
                        for ix in 0..nx {
                            let x = ix as f64 / nx as f64;
                            out.push(self.eval(x, y, z, t));
                        }
                    }
                }
            }
            _ => {
                // 4-D: treat the slowest axis as extra "time" stacking.
                let (nw, nz, ny, nx) = (d[0], d[1], d[2], d[3]);
                for iw in 0..nw {
                    let tw = t + iw as f64;
                    for iz in 0..nz {
                        let z = iz as f64 / nz as f64;
                        for iy in 0..ny {
                            let y = iy as f64 / ny as f64;
                            for ix in 0..nx {
                                let x = ix as f64 / nx as f64;
                                out.push(self.eval(x, y, z, tw));
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Value transforms applied on top of a sampled spectral field to mimic the
/// statistics of specific application fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// Use the raw smooth field (temperature-, pressure-, velocity-like).
    Identity,
    /// `exp(scale * v)` — log-normal positive fields (densities).
    Exponential { scale: f64 },
    /// `max(v - threshold, 0)` then scaled — sparse non-negative fields
    /// (cloud mixing ratios, precipitation).
    Sparse { threshold: f64, scale: f64 },
    /// `log10(max(v - threshold, 0) * scale + floor)` — the `.log10` variants
    /// SDRBench ships for highly skewed fields (e.g. QCLOUDf.log10).
    SparseLog10 {
        threshold: f64,
        scale: f64,
        floor: f64,
    },
}

impl Transform {
    /// Apply the transform to a single value.
    #[inline]
    pub fn apply(&self, v: f64) -> f64 {
        match *self {
            Transform::Identity => v,
            Transform::Exponential { scale } => (scale * v).exp(),
            Transform::Sparse { threshold, scale } => (v - threshold).max(0.0) * scale,
            Transform::SparseLog10 {
                threshold,
                scale,
                floor,
            } => ((v - threshold).max(0.0) * scale + floor).log10(),
        }
    }

    /// Apply the transform to every value in place.
    pub fn apply_all(&self, values: &mut [f64]) {
        if *self == Transform::Identity {
            return;
        }
        for v in values.iter_mut() {
            *v = self.apply(*v);
        }
    }
}

/// Add white measurement noise with the given standard deviation.
pub fn add_noise(values: &mut [f64], rng: &mut impl Rng, std_dev: f64) {
    if std_dev <= 0.0 {
        return;
    }
    for v in values.iter_mut() {
        *v += normal(rng) * std_dev;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(42, "CLOUDf"), derive_seed(42, "CLOUDf"));
        assert_ne!(derive_seed(42, "CLOUDf"), derive_seed(42, "TCf"));
        assert_ne!(derive_seed(42, "CLOUDf"), derive_seed(43, "CLOUDf"));
    }

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = rng_for(7, "normal-test");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn spectral_field_is_deterministic() {
        let make = || {
            let mut rng = rng_for(11, "field");
            SpectralField::random(&mut rng, &SpectralConfig::default())
        };
        let a = make().sample_grid(&Dims::d2(8, 8), 0.0);
        let b = make().sample_grid(&Dims::d2(8, 8), 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn spectral_field_is_smooth() {
        let mut rng = rng_for(3, "smooth");
        let f = SpectralField::random(
            &mut rng,
            &SpectralConfig {
                modes: 16,
                max_wavenumber: 3.0,
                slope: 2.0,
                temporal_rate: 0.1,
            },
        );
        let values = f.sample_grid(&Dims::d1(1000), 0.0);
        // Neighbouring samples on a 1000-point grid of a band-limited (<=3
        // cycles) field must be close relative to the overall spread.
        let range = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        let max_step = values
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(max_step < range * 0.1, "max_step={max_step}, range={range}");
    }

    #[test]
    fn consecutive_timesteps_are_correlated() {
        let mut rng = rng_for(5, "temporal");
        let f = SpectralField::random(&mut rng, &SpectralConfig::default());
        let a = f.sample_grid(&Dims::d2(32, 32), 0.0);
        let b = f.sample_grid(&Dims::d2(32, 32), 1.0);
        let c = f.sample_grid(&Dims::d2(32, 32), 20.0);
        let dist = |x: &[f64], y: &[f64]| {
            (x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / x.len() as f64).sqrt()
        };
        assert!(dist(&a, &b) < dist(&a, &c));
        assert!(dist(&a, &b) > 0.0);
    }

    #[test]
    fn sample_grid_lengths_match_dims() {
        let mut rng = rng_for(9, "len");
        let f = SpectralField::random(&mut rng, &SpectralConfig::default());
        for dims in [
            Dims::d1(17),
            Dims::d2(5, 9),
            Dims::d3(3, 4, 5),
            Dims::d4(2, 3, 4, 5),
        ] {
            assert_eq!(f.sample_grid(&dims, 0.0).len(), dims.len());
        }
    }

    #[test]
    fn transforms_behave() {
        assert_eq!(Transform::Identity.apply(3.5), 3.5);
        assert!((Transform::Exponential { scale: 1.0 }.apply(0.0) - 1.0).abs() < 1e-12);
        assert_eq!(
            Transform::Sparse {
                threshold: 1.0,
                scale: 2.0
            }
            .apply(0.5),
            0.0
        );
        assert_eq!(
            Transform::Sparse {
                threshold: 1.0,
                scale: 2.0
            }
            .apply(2.0),
            2.0
        );
        let v = Transform::SparseLog10 {
            threshold: 0.0,
            scale: 1.0,
            floor: 1e-6,
        }
        .apply(0.0);
        assert!((v - (-6.0)).abs() < 1e-9);
    }

    #[test]
    fn sparse_transform_produces_many_zeros() {
        let mut rng = rng_for(21, "sparse");
        let f = SpectralField::random(&mut rng, &SpectralConfig::default());
        let mut values = f.sample_grid(&Dims::d3(16, 16, 16), 0.0);
        let stats = crate::FieldStats::compute(&values);
        Transform::Sparse {
            threshold: stats.mean + stats.std_dev,
            scale: 1.0,
        }
        .apply_all(&mut values);
        let zeros = values.iter().filter(|&&v| v == 0.0).count();
        assert!(
            zeros > values.len() / 2,
            "zeros={} / {}",
            zeros,
            values.len()
        );
    }

    #[test]
    fn noise_changes_values() {
        let mut rng = rng_for(33, "noise");
        let mut values = vec![0.0f64; 100];
        add_noise(&mut values, &mut rng, 0.1);
        assert!(values.iter().any(|&v| v != 0.0));
        let mut untouched = vec![1.0f64; 10];
        add_noise(&mut untouched, &mut rng, 0.0);
        assert_eq!(untouched, vec![1.0; 10]);
    }
}
