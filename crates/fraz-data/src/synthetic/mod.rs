//! Synthetic SDRBench-like applications.
//!
//! Each constructor mirrors one of the five applications in Table III of the
//! FRaZ paper: the same dimensionality, a comparable set of fields, multiple
//! time-steps with strong temporal coherence, and value distributions chosen
//! so the error-bounded compressors behave the way the paper describes
//! (smooth fields compress extremely well, particle data poorly, sparse
//! log-transformed fields non-monotonically).  Grid sizes are parameters so
//! tests can run on tiny grids while the benchmark harness uses larger ones.

pub mod field_gen;

use rand::Rng;

use crate::buffer::DataBuffer;
use crate::dims::Dims;
use crate::Dataset;

use field_gen::{add_noise, normal, rng_for, SpectralConfig, SpectralField, Transform};

/// How one field of a synthetic application is produced.
#[derive(Debug, Clone)]
enum FieldKind {
    /// Smooth (optionally transformed) Eulerian field on the grid.
    Spectral {
        config: SpectralConfig,
        transform: Transform,
        scale: f64,
        offset: f64,
        noise: f64,
    },
    /// Lagrangian particle coordinates in a periodic box (HACC-like): nearly
    /// uniform positions drifting with per-particle velocities.
    ParticlePosition { box_size: f64, axis: usize },
    /// Per-particle velocity components (Gaussian with bulk flows).
    ParticleVelocity { sigma: f64, axis: usize },
    /// Molecular-dynamics coordinates: a perturbed lattice with thermal
    /// vibration (EXAALT-like).
    LatticePosition {
        spacing: f64,
        thermal: f64,
        axis: usize,
    },
}

/// Specification of one field of a synthetic application.
#[derive(Debug, Clone)]
struct FieldSpec {
    name: String,
    kind: FieldKind,
}

/// A synthetic application: a set of fields over a number of time-steps.
///
/// Fields are generated on demand ([`SyntheticDataset::field`]) so holding a
/// descriptor is cheap; generation is deterministic in the seed, field name
/// and time-step.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    application: String,
    dims: Dims,
    timesteps: usize,
    seed: u64,
    specs: Vec<FieldSpec>,
}

impl SyntheticDataset {
    /// Application name (e.g. `"hurricane"`).
    pub fn application(&self) -> &str {
        &self.application
    }

    /// Grid dimensions shared by every field.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Number of time-steps available.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Names of the available fields.
    pub fn field_names(&self) -> Vec<String> {
        self.specs.iter().map(|s| s.name.clone()).collect()
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.specs.len()
    }

    /// Total uncompressed size in bytes across all fields and time-steps
    /// (single precision).
    pub fn total_bytes(&self) -> usize {
        self.specs.len() * self.timesteps * self.dims.len() * 4
    }

    /// Generate one field at one time-step.
    ///
    /// # Panics
    /// Panics if the field name is unknown or the time-step is out of range.
    pub fn field(&self, name: &str, timestep: usize) -> Dataset {
        assert!(
            timestep < self.timesteps,
            "time-step {timestep} out of range (have {})",
            self.timesteps
        );
        let spec = self
            .specs
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown field `{name}` in {}", self.application));
        let values = self.generate(spec, timestep);
        Dataset {
            application: self.application.clone(),
            field: name.to_string(),
            timestep,
            dims: self.dims.clone(),
            buffer: DataBuffer::F32(values.into_iter().map(|v| v as f32).collect()),
        }
    }

    /// Generate every field at one time-step.
    pub fn all_fields_at(&self, timestep: usize) -> Vec<Dataset> {
        self.field_names()
            .iter()
            .map(|f| self.field(f, timestep))
            .collect()
    }

    /// Generate the full time series of one field.
    pub fn series(&self, name: &str) -> Vec<Dataset> {
        (0..self.timesteps).map(|t| self.field(name, t)).collect()
    }

    fn generate(&self, spec: &FieldSpec, t: usize) -> Vec<f64> {
        let label = format!("{}/{}", self.application, spec.name);
        match &spec.kind {
            FieldKind::Spectral {
                config,
                transform,
                scale,
                offset,
                noise,
            } => {
                let mut rng = rng_for(self.seed, &label);
                let field = SpectralField::random(&mut rng, config);
                let mut values = field.sample_grid(&self.dims, t as f64);
                transform.apply_all(&mut values);
                for v in values.iter_mut() {
                    *v = *v * scale + offset;
                }
                if *noise > 0.0 {
                    let mut noise_rng = rng_for(self.seed, &format!("{label}/noise/{t}"));
                    add_noise(&mut values, &mut noise_rng, *noise * scale.abs());
                }
                values
            }
            FieldKind::ParticlePosition { box_size, axis } => {
                let n = self.dims.len();
                let mut rng = rng_for(self.seed, &format!("{}/particles", self.application));
                // Base positions and velocities are shared by the x/y/z
                // fields so the particle cloud is consistent across axes.
                let mut pos = vec![[0.0f64; 3]; n];
                let mut vel = vec![[0.0f64; 3]; n];
                // Clustered positions: a fraction of particles concentrate
                // around halo centres, the rest are uniform.
                let n_halos = (n / 2000).max(4);
                let halos: Vec<[f64; 3]> = (0..n_halos)
                    .map(|_| {
                        [
                            rng.gen_range(0.0..*box_size),
                            rng.gen_range(0.0..*box_size),
                            rng.gen_range(0.0..*box_size),
                        ]
                    })
                    .collect();
                for i in 0..n {
                    let clustered = rng.gen_bool(0.35);
                    for a in 0..3 {
                        pos[i][a] = if clustered {
                            let h = &halos[i % n_halos];
                            (h[a] + normal(&mut rng) * box_size * 0.02).rem_euclid(*box_size)
                        } else {
                            rng.gen_range(0.0..*box_size)
                        };
                        vel[i][a] = normal(&mut rng) * box_size * 2e-4;
                    }
                }
                (0..n)
                    .map(|i| (pos[i][*axis] + vel[i][*axis] * t as f64).rem_euclid(*box_size))
                    .collect()
            }
            FieldKind::ParticleVelocity { sigma, axis } => {
                let n = self.dims.len();
                let mut rng = rng_for(
                    self.seed,
                    &format!("{}/velocities/{axis}", self.application),
                );
                let bulk = normal(&mut rng) * sigma * 0.3;
                let mut accel_rng = rng_for(self.seed, &format!("{label}/accel"));
                let drift = normal(&mut accel_rng) * sigma * 0.01;
                (0..n)
                    .map(|_| bulk + drift * t as f64 + normal(&mut rng) * sigma)
                    .collect()
            }
            FieldKind::LatticePosition {
                spacing,
                thermal,
                axis,
            } => {
                let n = self.dims.len();
                // Atoms sit near the sites of a 1-D projection of an FCC-like
                // lattice and vibrate thermally; vibration is resampled per
                // time-step but site assignment is fixed.
                let side = (n as f64).cbrt().ceil() as usize;
                let mut site_rng = rng_for(self.seed, &format!("{}/sites", self.application));
                let jitter: Vec<f64> = (0..n).map(|_| normal(&mut site_rng) * 0.05).collect();
                let mut vib_rng = rng_for(self.seed, &format!("{label}/vibration/{t}"));
                (0..n)
                    .map(|i| {
                        let coord = match axis {
                            0 => i % side,
                            1 => (i / side) % side,
                            _ => i / (side * side),
                        };
                        (coord as f64 + jitter[i]) * spacing
                            + normal(&mut vib_rng) * thermal * spacing
                    })
                    .collect()
            }
        }
    }
}

/// Hurricane-ISABEL-like meteorology: 3-D grid, 48 time-steps in the paper,
/// 13 fields of which a representative 8 are generated here (smooth
/// temperature/pressure/wind plus sparse cloud/precipitation fields and their
/// `.log10` variants).
pub fn hurricane(nz: usize, ny: usize, nx: usize, timesteps: usize, seed: u64) -> SyntheticDataset {
    let smooth = |max_wavenumber: f64, slope: f64| SpectralConfig {
        modes: 40,
        max_wavenumber,
        slope,
        temporal_rate: 0.12,
    };
    let specs = vec![
        FieldSpec {
            name: "TCf".into(),
            kind: FieldKind::Spectral {
                config: smooth(5.0, 2.0),
                transform: Transform::Identity,
                scale: 8.0,
                offset: 25.0,
                noise: 0.002,
            },
        },
        FieldSpec {
            name: "Pf".into(),
            kind: FieldKind::Spectral {
                config: smooth(3.0, 2.5),
                transform: Transform::Identity,
                scale: 400.0,
                offset: 96_000.0,
                noise: 0.001,
            },
        },
        FieldSpec {
            name: "Uf".into(),
            kind: FieldKind::Spectral {
                config: smooth(6.0, 1.8),
                transform: Transform::Identity,
                scale: 20.0,
                offset: 0.0,
                noise: 0.004,
            },
        },
        FieldSpec {
            name: "Vf".into(),
            kind: FieldKind::Spectral {
                config: smooth(6.0, 1.8),
                transform: Transform::Identity,
                scale: 20.0,
                offset: 0.0,
                noise: 0.004,
            },
        },
        FieldSpec {
            name: "Wf".into(),
            kind: FieldKind::Spectral {
                config: smooth(8.0, 1.5),
                transform: Transform::Identity,
                scale: 2.0,
                offset: 0.0,
                noise: 0.01,
            },
        },
        FieldSpec {
            name: "QVAPORf".into(),
            kind: FieldKind::Spectral {
                config: smooth(5.0, 2.0),
                transform: Transform::Exponential { scale: 1.2 },
                scale: 0.01,
                offset: 0.0,
                noise: 0.001,
            },
        },
        FieldSpec {
            name: "CLOUDf".into(),
            kind: FieldKind::Spectral {
                config: smooth(7.0, 1.6),
                transform: Transform::Sparse {
                    threshold: 0.6,
                    scale: 1e-3,
                },
                scale: 1.0,
                offset: 0.0,
                noise: 0.0,
            },
        },
        FieldSpec {
            name: "QCLOUDf.log10".into(),
            kind: FieldKind::Spectral {
                config: smooth(7.0, 1.6),
                transform: Transform::SparseLog10 {
                    threshold: 0.6,
                    scale: 1e-3,
                    floor: 1e-7,
                },
                scale: 1.0,
                offset: 0.0,
                noise: 0.0,
            },
        },
    ];
    SyntheticDataset {
        application: "hurricane".into(),
        dims: Dims::d3(nz, ny, nx),
        timesteps,
        seed,
        specs,
    }
}

/// HACC-like cosmology particle snapshots: 1-D arrays of particle positions
/// (x, y, z) and velocities (vx, vy, vz); 101 time-steps in the paper.
pub fn hacc(particles: usize, timesteps: usize, seed: u64) -> SyntheticDataset {
    let specs = vec![
        FieldSpec {
            name: "x".into(),
            kind: FieldKind::ParticlePosition {
                box_size: 256.0,
                axis: 0,
            },
        },
        FieldSpec {
            name: "y".into(),
            kind: FieldKind::ParticlePosition {
                box_size: 256.0,
                axis: 1,
            },
        },
        FieldSpec {
            name: "z".into(),
            kind: FieldKind::ParticlePosition {
                box_size: 256.0,
                axis: 2,
            },
        },
        FieldSpec {
            name: "vx".into(),
            kind: FieldKind::ParticleVelocity {
                sigma: 300.0,
                axis: 0,
            },
        },
        FieldSpec {
            name: "vy".into(),
            kind: FieldKind::ParticleVelocity {
                sigma: 300.0,
                axis: 1,
            },
        },
        FieldSpec {
            name: "vz".into(),
            kind: FieldKind::ParticleVelocity {
                sigma: 300.0,
                axis: 2,
            },
        },
    ];
    SyntheticDataset {
        application: "hacc".into(),
        dims: Dims::d1(particles),
        timesteps,
        seed,
        specs,
    }
}

/// CESM-ATM-like climate output: 2-D lat/lon fields; the six fields the
/// paper uses (CLDHGH, CLDLOW, CLOUD, FLDSC, FREQSH, PHIS).
pub fn cesm(nlat: usize, nlon: usize, timesteps: usize, seed: u64) -> SyntheticDataset {
    let cloudy = |threshold: f64| FieldKind::Spectral {
        config: SpectralConfig {
            modes: 48,
            max_wavenumber: 10.0,
            slope: 1.4,
            temporal_rate: 0.2,
        },
        transform: Transform::Sparse {
            threshold,
            scale: 0.8,
        },
        scale: 1.0,
        offset: 0.0,
        noise: 0.0,
    };
    let specs = vec![
        FieldSpec {
            name: "CLDHGH".into(),
            kind: cloudy(0.1),
        },
        FieldSpec {
            name: "CLDLOW".into(),
            kind: cloudy(0.0),
        },
        FieldSpec {
            name: "CLOUD".into(),
            kind: cloudy(-0.1),
        },
        FieldSpec {
            name: "FLDSC".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 32,
                    max_wavenumber: 4.0,
                    slope: 2.0,
                    temporal_rate: 0.15,
                },
                transform: Transform::Identity,
                scale: 60.0,
                offset: 280.0,
                noise: 0.002,
            },
        },
        FieldSpec {
            name: "FREQSH".into(),
            kind: cloudy(0.3),
        },
        FieldSpec {
            name: "PHIS".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 64,
                    max_wavenumber: 12.0,
                    slope: 1.2,
                    temporal_rate: 0.0,
                },
                transform: Transform::Exponential { scale: 1.5 },
                scale: 800.0,
                offset: 0.0,
                noise: 0.0,
            },
        },
    ];
    SyntheticDataset {
        application: "cesm".into(),
        dims: Dims::d2(nlat, nlon),
        timesteps,
        seed,
        specs,
    }
}

/// EXAALT-like molecular dynamics: 1-D coordinate arrays (x, y, z) of atoms
/// on a thermally vibrating lattice; 82 time-steps in the paper.
pub fn exaalt(atoms: usize, timesteps: usize, seed: u64) -> SyntheticDataset {
    let specs = (0..3)
        .map(|axis| FieldSpec {
            name: ["x", "y", "z"][axis].to_string(),
            kind: FieldKind::LatticePosition {
                spacing: 2.87,
                thermal: 0.03,
                axis,
            },
        })
        .collect();
    SyntheticDataset {
        application: "exaalt".into(),
        dims: Dims::d1(atoms),
        timesteps,
        seed,
        specs,
    }
}

/// NYX-like cosmological hydrodynamics: 3-D fields (baryon density, dark
/// matter density, temperature, vx, vy); 8 time-steps in the paper.
pub fn nyx(nz: usize, ny: usize, nx: usize, timesteps: usize, seed: u64) -> SyntheticDataset {
    let specs = vec![
        FieldSpec {
            name: "baryon_density".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 48,
                    max_wavenumber: 9.0,
                    slope: 1.3,
                    temporal_rate: 0.08,
                },
                transform: Transform::Exponential { scale: 2.0 },
                scale: 1.0,
                offset: 0.0,
                noise: 0.0,
            },
        },
        FieldSpec {
            name: "dark_matter_density".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 48,
                    max_wavenumber: 10.0,
                    slope: 1.2,
                    temporal_rate: 0.08,
                },
                transform: Transform::Exponential { scale: 2.4 },
                scale: 1.0,
                offset: 0.0,
                noise: 0.0,
            },
        },
        FieldSpec {
            name: "temperature".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 40,
                    max_wavenumber: 7.0,
                    slope: 1.6,
                    temporal_rate: 0.08,
                },
                transform: Transform::Exponential { scale: 1.0 },
                scale: 1.0e4,
                offset: 1.0e3,
                noise: 0.001,
            },
        },
        FieldSpec {
            name: "velocity_x".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 40,
                    max_wavenumber: 6.0,
                    slope: 1.7,
                    temporal_rate: 0.1,
                },
                transform: Transform::Identity,
                scale: 2.0e7,
                offset: 0.0,
                noise: 0.002,
            },
        },
        FieldSpec {
            name: "velocity_y".into(),
            kind: FieldKind::Spectral {
                config: SpectralConfig {
                    modes: 40,
                    max_wavenumber: 6.0,
                    slope: 1.7,
                    temporal_rate: 0.1,
                },
                transform: Transform::Identity,
                scale: 2.0e7,
                offset: 0.0,
                noise: 0.002,
            },
        },
    ];
    SyntheticDataset {
        application: "nyx".into(),
        dims: Dims::d3(nz, ny, nx),
        timesteps,
        seed,
        specs,
    }
}

/// Construct an application by name with small default sizes — convenient
/// for examples and tests.
///
/// Returns `None` for unknown names.  Recognized: `hurricane`, `hacc`,
/// `cesm`, `exaalt`, `nyx`.
pub fn by_name(name: &str, seed: u64) -> Option<SyntheticDataset> {
    match name {
        "hurricane" => Some(hurricane(16, 32, 32, 8, seed)),
        "hacc" => Some(hacc(32_768, 8, seed)),
        "cesm" => Some(cesm(96, 192, 8, seed)),
        "exaalt" => Some(exaalt(32_768, 8, seed)),
        "nyx" => Some(nyx(32, 32, 32, 8, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hurricane_generation_is_deterministic() {
        let a = hurricane(8, 12, 12, 4, 99).field("TCf", 2);
        let b = hurricane(8, 12, 12, 4, 99).field("TCf", 2);
        assert_eq!(a, b);
        let c = hurricane(8, 12, 12, 4, 100).field("TCf", 2);
        assert_ne!(a.buffer, c.buffer);
    }

    #[test]
    fn all_apps_produce_all_fields() {
        for name in ["hurricane", "hacc", "cesm", "exaalt", "nyx"] {
            let app = by_name(name, 7).unwrap();
            assert!(app.num_fields() >= 3, "{name}");
            assert!(app.timesteps() >= 2, "{name}");
            let t = app.timesteps() - 1;
            for field in app.field_names() {
                let d = app.field(&field, t);
                assert_eq!(d.len(), app.dims().len(), "{name}/{field}");
                assert!(
                    d.values_f64().iter().all(|v| v.is_finite()),
                    "{name}/{field}"
                );
            }
        }
        assert!(by_name("unknown", 0).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown field")]
    fn unknown_field_panics() {
        hurricane(4, 4, 4, 2, 1).field("nope", 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_timestep_panics() {
        hurricane(4, 4, 4, 2, 1).field("TCf", 5);
    }

    #[test]
    fn temporal_coherence_of_smooth_fields() {
        let app = hurricane(8, 16, 16, 6, 3);
        let t0 = app.field("TCf", 0).values_f64();
        let t1 = app.field("TCf", 1).values_f64();
        let t5 = app.field("TCf", 5).values_f64();
        let rmse = |a: &[f64], b: &[f64]| {
            (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
        };
        assert!(rmse(&t0, &t1) < rmse(&t0, &t5));
    }

    #[test]
    fn cloud_field_is_sparse() {
        let app = hurricane(8, 16, 16, 2, 5);
        let cloud = app.field("CLOUDf", 0).values_f64();
        let zeros = cloud.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > cloud.len() / 4, "zeros={}/{}", zeros, cloud.len());
    }

    #[test]
    fn hacc_positions_stay_in_box() {
        let app = hacc(5000, 3, 11);
        for t in 0..3 {
            let x = app.field("x", t).values_f64();
            assert!(x.iter().all(|&v| (0.0..256.0).contains(&v)));
        }
    }

    #[test]
    fn hacc_fields_share_particle_cloud_across_axes() {
        // Deterministic: x at t=0 equals x at t=0 from a fresh instance even
        // after generating y first (generation order must not matter).
        let app = hacc(2000, 2, 13);
        let _ = app.field("y", 0);
        let x1 = app.field("x", 0);
        let x2 = hacc(2000, 2, 13).field("x", 0);
        assert_eq!(x1, x2);
    }

    #[test]
    fn exaalt_positions_look_like_a_lattice() {
        let app = exaalt(8000, 2, 17);
        let x = app.field("x", 0).values_f64();
        let stats = crate::FieldStats::compute(&x);
        // 8000 atoms -> side 20 -> coordinates roughly within [0, 20*2.87].
        assert!(stats.max < 20.5 * 2.87 + 1.0);
        assert!(stats.min > -1.0);
    }

    #[test]
    fn nyx_densities_are_positive_and_skewed() {
        let app = nyx(16, 16, 16, 2, 23);
        let rho = app.field("baryon_density", 0).values_f64();
        assert!(rho.iter().all(|&v| v > 0.0));
        let stats = crate::FieldStats::compute(&rho);
        assert!(
            stats.max / stats.mean > 3.0,
            "density should be heavy-tailed"
        );
    }

    #[test]
    fn total_bytes_matches_shape() {
        let app = cesm(10, 20, 3, 1);
        assert_eq!(app.total_bytes(), 6 * 3 * 200 * 4);
    }
}
