//! Raw binary I/O in the SDRBench flat-file layout.
//!
//! SDRBench distributes each field/time-step as a headerless little-endian
//! `f32` (occasionally `f64`) file whose shape is documented out-of-band.
//! These helpers read and write that layout so the synthetic generators and
//! real archive files are interchangeable inputs to the rest of the
//! workspace.

use std::fs;
use std::io;
use std::path::Path;

use crate::buffer::{DType, DataBuffer};
use crate::dims::Dims;
use crate::Dataset;

/// Errors produced while loading or storing raw dataset files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file size does not match `dims.len() * dtype.byte_width()`.
    SizeMismatch {
        expected_bytes: usize,
        actual_bytes: usize,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::SizeMismatch {
                expected_bytes,
                actual_bytes,
            } => write!(
                f,
                "file holds {actual_bytes} bytes but the declared shape needs {expected_bytes}"
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Read a headerless little-endian file into a [`Dataset`] with the given
/// shape and element type.
pub fn read_raw(
    path: impl AsRef<Path>,
    application: &str,
    field: &str,
    timestep: usize,
    dims: Dims,
    dtype: DType,
) -> Result<Dataset, IoError> {
    let bytes = fs::read(path)?;
    let expected = dims.len() * dtype.byte_width();
    if bytes.len() != expected {
        return Err(IoError::SizeMismatch {
            expected_bytes: expected,
            actual_bytes: bytes.len(),
        });
    }
    let buffer = DataBuffer::from_le_bytes(&bytes, dtype).expect("length checked above");
    Ok(Dataset {
        application: application.to_string(),
        field: field.to_string(),
        timestep,
        dims,
        buffer,
    })
}

/// Write a dataset back out as a headerless little-endian file (the same
/// layout [`read_raw`] consumes).
pub fn write_raw(path: impl AsRef<Path>, dataset: &Dataset) -> Result<(), IoError> {
    fs::write(path, dataset.buffer.to_le_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fraz_data_io_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_f32_file() {
        let path = temp_path("f32.bin");
        let values: Vec<f32> = (0..60).map(|i| i as f32 * 0.5).collect();
        let ds = Dataset::from_f32("hurricane", "TCf", 7, Dims::d3(3, 4, 5), values);
        write_raw(&path, &ds).unwrap();
        let back = read_raw(&path, "hurricane", "TCf", 7, Dims::d3(3, 4, 5), DType::F32).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_f64_file() {
        let path = temp_path("f64.bin");
        let values: Vec<f64> = (0..20).map(|i| (i as f64).sqrt()).collect();
        let ds = Dataset::from_f64("cesm", "CLDHGH", 0, Dims::d2(4, 5), values);
        write_raw(&path, &ds).unwrap();
        let back = read_raw(&path, "cesm", "CLDHGH", 0, Dims::d2(4, 5), DType::F64).unwrap();
        assert_eq!(back.buffer, ds.buffer);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn size_mismatch_is_reported() {
        let path = temp_path("bad.bin");
        std::fs::write(&path, [0u8; 10]).unwrap();
        let err = read_raw(&path, "a", "b", 0, Dims::d1(4), DType::F32).unwrap_err();
        assert!(matches!(
            err,
            IoError::SizeMismatch {
                expected_bytes: 16,
                actual_bytes: 10
            }
        ));
        assert!(err.to_string().contains("16"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_raw(
            "/definitely/not/a/real/path.f32",
            "a",
            "b",
            0,
            Dims::d1(4),
            DType::F32,
        )
        .unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}
