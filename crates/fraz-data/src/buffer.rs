//! Typed value storage for datasets (single or double precision).

use serde::{Deserialize, Serialize};

/// Element type of a [`DataBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DType {
    /// IEEE-754 single precision (the storage type of every SDRBench field
    /// used in the paper).
    F32,
    /// IEEE-754 double precision.
    F64,
}

/// Hand-written (rather than derived) so that manifest files can spell the
/// type the way SDRBench file extensions do (`"f32"`/`"f64"`) as well as
/// the variant name the derived `Serialize` emits (`"F32"`/`"F64"`).
impl Deserialize for DType {
    fn from_json_value(value: &serde::value::Value) -> Result<Self, serde::de::Error> {
        match value.as_str() {
            Some("f32") | Some("F32") => Ok(DType::F32),
            Some("f64") | Some("F64") => Ok(DType::F64),
            Some(other) => Err(serde::de::Error::new(format!(
                "unknown dtype `{other}`, expected \"f32\" or \"f64\""
            ))),
            None => Err(serde::de::invalid_type(
                "a dtype string (\"f32\"/\"f64\")",
                value,
            )),
        }
    }
}

impl DType {
    /// Size of one element in bytes.
    pub fn byte_width(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }
}

/// The raw values of one field at one time-step.
#[derive(Debug, Clone, PartialEq)]
pub enum DataBuffer {
    F32(Vec<f32>),
    F64(Vec<f64>),
}

impl DataBuffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            DataBuffer::F32(v) => v.len(),
            DataBuffer::F64(v) => v.len(),
        }
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        match self {
            DataBuffer::F32(_) => DType::F32,
            DataBuffer::F64(_) => DType::F64,
        }
    }

    /// Total size in bytes of the uncompressed values.
    pub fn byte_size(&self) -> usize {
        self.len() * self.dtype().byte_width()
    }

    /// Widen (or copy) the values to `f64`.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            DataBuffer::F32(v) => v.iter().map(|&x| x as f64).collect(),
            DataBuffer::F64(v) => v.clone(),
        }
    }

    /// Narrow (or copy) the values to `f32`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self {
            DataBuffer::F32(v) => v.clone(),
            DataBuffer::F64(v) => v.iter().map(|&x| x as f32).collect(),
        }
    }

    /// Rebuild a buffer of the given `dtype` from `f64` values (used by
    /// decompressors so the reconstructed buffer matches the original type).
    pub fn from_f64(values: Vec<f64>, dtype: DType) -> Self {
        match dtype {
            DType::F32 => DataBuffer::F32(values.into_iter().map(|x| x as f32).collect()),
            DType::F64 => DataBuffer::F64(values),
        }
    }

    /// Serialize the raw values as little-endian bytes (the SDRBench file
    /// layout).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        match self {
            DataBuffer::F32(v) => {
                let mut out = Vec::with_capacity(v.len() * 4);
                for &x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                out
            }
            DataBuffer::F64(v) => {
                let mut out = Vec::with_capacity(v.len() * 8);
                for &x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                out
            }
        }
    }

    /// Parse little-endian bytes into a buffer of the given type.
    ///
    /// Returns `None` if the byte count is not a multiple of the element
    /// width.
    pub fn from_le_bytes(bytes: &[u8], dtype: DType) -> Option<Self> {
        let width = dtype.byte_width();
        if bytes.len() % width != 0 {
            return None;
        }
        Some(match dtype {
            DType::F32 => DataBuffer::F32(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            ),
            DType::F64 => DataBuffer::F64(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                    .collect(),
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_widths() {
        assert_eq!(DType::F32.byte_width(), 4);
        assert_eq!(DType::F64.byte_width(), 8);
    }

    #[test]
    fn len_and_byte_size() {
        let b = DataBuffer::F32(vec![1.0; 10]);
        assert_eq!(b.len(), 10);
        assert_eq!(b.byte_size(), 40);
        assert!(!b.is_empty());
        let b = DataBuffer::F64(vec![]);
        assert!(b.is_empty());
        assert_eq!(b.byte_size(), 0);
    }

    #[test]
    fn widening_and_narrowing() {
        let b = DataBuffer::F32(vec![1.5, -2.0]);
        assert_eq!(b.to_f64_vec(), vec![1.5, -2.0]);
        let b = DataBuffer::F64(vec![3.25, 4.0]);
        assert_eq!(b.to_f32_vec(), vec![3.25f32, 4.0]);
    }

    #[test]
    fn from_f64_respects_dtype() {
        let b = DataBuffer::from_f64(vec![1.0, 2.0], DType::F32);
        assert_eq!(b.dtype(), DType::F32);
        let b = DataBuffer::from_f64(vec![1.0, 2.0], DType::F64);
        assert_eq!(b.dtype(), DType::F64);
    }

    #[test]
    fn le_bytes_roundtrip_f32() {
        let b = DataBuffer::F32(vec![1.0, -2.5, 3.25e-7, f32::MAX]);
        let bytes = b.to_le_bytes();
        assert_eq!(bytes.len(), 16);
        assert_eq!(DataBuffer::from_le_bytes(&bytes, DType::F32).unwrap(), b);
    }

    #[test]
    fn le_bytes_roundtrip_f64() {
        let b = DataBuffer::F64(vec![1.0, -2.5e100, 3.25e-300]);
        let bytes = b.to_le_bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(DataBuffer::from_le_bytes(&bytes, DType::F64).unwrap(), b);
    }

    #[test]
    fn misaligned_bytes_rejected() {
        assert!(DataBuffer::from_le_bytes(&[0u8; 7], DType::F32).is_none());
        assert!(DataBuffer::from_le_bytes(&[0u8; 12], DType::F64).is_none());
    }
}
