//! Dataset manifests: declarative descriptions of an SDRBench-style
//! directory of real archive fields.
//!
//! SDRBench distributes each application (Hurricane, NYX, CESM-ATM, …) as a
//! directory of headerless little-endian files, one per field per
//! time-step, with the grid shape documented out-of-band.  A [`Manifest`]
//! writes that out-of-band knowledge down — field name, file(s), element
//! type, dimensions, per-field compression target — so the `fraz` CLI can
//! run the whole paper-style evaluation (§V of Underwood et al., IPDPS
//! 2020) over a directory without any Rust code.
//!
//! Manifests are plain data parsed through the workspace's derived
//! [`serde::Deserialize`] impls — JSON directly ([`Manifest::from_json_str`])
//! or any frontend that produces a [`serde_json::Value`]
//! ([`Manifest::from_value`], used by the CLI's TOML loader).  Parsing
//! errors name the offending entry (`fields[2].dims[1]: …`); semantic
//! errors ([`Manifest::validate`], [`Manifest::resolve`]) name the field.
//!
//! ```
//! use fraz_data::manifest::Manifest;
//!
//! let manifest = Manifest::from_json_str(r#"{
//!     "application": "hurricane",
//!     "compressor": "sz",
//!     "target_ratio": 10.0,
//!     "fields": [
//!         {"name": "CLOUDf", "file": "CLOUDf48.bin.f32",
//!          "dtype": "f32", "dims": [100, 500, 500]},
//!         {"name": "PRECIPf", "pattern": "PRECIPf*.bin.f32",
//!          "dtype": "f32", "dims": [100, 500, 500], "target_ratio": 16.0}
//!     ]
//! }"#).unwrap();
//! assert_eq!(manifest.fields.len(), 2);
//! assert_eq!(manifest.fields[1].target_ratio, Some(16.0));
//! ```

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::buffer::DType;
use crate::dims::Dims;
use crate::io::{self, IoError};
use crate::Dataset;

/// A whole-application manifest: shared defaults plus one entry per field.
///
/// Unset options fall back to the CLI's defaults (tolerance 10 %, the
/// paper's 12 regions, …); `target_ratio` here is the application-wide
/// default that individual [`FieldSpec`]s may override.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Application name, used in reports (e.g. `"hurricane"`).
    pub application: String,
    /// Registry name of the compressor backend (default `"sz"`).
    pub compressor: Option<String>,
    /// Default target compression ratio for fields that do not set one.
    pub target_ratio: Option<f64>,
    /// Acceptable relative deviation ε from the target ratio.
    pub tolerance: Option<f64>,
    /// Maximum allowed error bound `U` passed to every search.
    pub max_error_bound: Option<f64>,
    /// Number of overlapping search regions (paper default: 12).
    pub regions: Option<usize>,
    /// Maximum objective evaluations per region.
    pub max_iterations: Option<usize>,
    /// Worker threads for the shared pool (0 or unset: all cores).
    pub workers: Option<usize>,
    /// Directory holding the data files, relative to the manifest file
    /// (default: the manifest's own directory).
    pub data_dir: Option<String>,
    /// The fields to tune.
    pub fields: Vec<FieldSpec>,
}

/// One field of the application: where its bytes live and what to aim for.
///
/// Exactly one of `file`, `files`, `pattern`, or `generator` must be given.
/// A multi-file field is a time series in file order (`files`) or in
/// natural name order (`pattern`), feeding the orchestrator's time-step
/// prediction reuse.  A `generator` field has no files at all: a
/// [`FieldSynthesizer`] (the `fraz-scenarios` crate, for the CLI)
/// synthesizes the series deterministically from `seed` and `steps`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name, used in reports (e.g. `"CLOUDf"`).
    pub name: String,
    /// Element type of the raw file (`"f32"` or `"f64"`).
    pub dtype: DType,
    /// Grid dimensions, slowest-varying axis first (1–4 axes).
    pub dims: Vec<usize>,
    /// A single data file (one time-step).
    pub file: Option<String>,
    /// An explicit time series of data files.
    pub files: Option<Vec<String>>,
    /// A glob (`*`/`?`) matched against file names in the data directory;
    /// matches are sorted in natural name order (`t2` before `t10`) and
    /// treated as the time series.
    pub pattern: Option<String>,
    /// A synthetic scenario name (`"smooth"`, `"turbulence"`, …) instead of
    /// any file source — the field is generated, not read.
    pub generator: Option<String>,
    /// Seed for a `generator` field (default: the synthesizer's own).
    pub seed: Option<u64>,
    /// Time-steps to synthesize for a `generator` field (default 1).
    pub steps: Option<usize>,
    /// Per-field target ratio, overriding the manifest default.
    pub target_ratio: Option<f64>,
    /// Quality-targeted alternative: find the most compressive bound with
    /// PSNR at least this many dB (instead of a fixed-ratio search).
    pub min_psnr: Option<f64>,
}

/// Synthesizes the series of a `generator` field.
///
/// `fraz-data` deliberately knows nothing about the scenario regimes — the
/// `fraz-scenarios` crate implements this trait and the CLI passes it to
/// [`Manifest::resolve_with`], keeping the dependency arrow pointing from
/// scenarios to data.  Implementations must honour the spec's
/// `dtype`/`dims`/`seed`/`steps` and return one [`Dataset`] per time-step,
/// with errors phrased for manifest users (they become
/// [`ManifestError::Invalid`] with the field as context).
pub trait FieldSynthesizer {
    /// Generate the field's series (one dataset per time-step).
    fn synthesize(&self, application: &str, spec: &FieldSpec) -> Result<Vec<Dataset>, String>;
}

/// What a resolved field asks FRaZ to do.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FieldTarget {
    /// Fixed-ratio search: hit this compression ratio (Algorithm 1/2).
    Ratio(f64),
    /// Fixed-quality search: maximize ratio subject to `PSNR >= x` dB
    /// (the paper's §VII future-work direction).
    MinPsnr(f64),
}

impl fmt::Display for FieldTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldTarget::Ratio(r) => write!(f, "ratio {r}"),
            FieldTarget::MinPsnr(p) => write!(f, "psnr>={p}dB"),
        }
    }
}

/// A field with its files located, bytes loaded and target decided.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedField {
    /// Field name from the spec.
    pub name: String,
    /// The files backing the series, in time order.
    pub paths: Vec<PathBuf>,
    /// The loaded time series, one dataset per file.
    pub series: Vec<Dataset>,
    /// The per-field objective.
    pub target: FieldTarget,
}

/// A manifest with every field resolved against a directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedManifest {
    /// Application name.
    pub application: String,
    /// Compressor registry name (the `"sz"` default applied).
    pub compressor: String,
    /// Resolved fields, in manifest order.
    pub fields: Vec<ResolvedField>,
}

/// Errors loading, validating, or resolving a manifest.
#[derive(Debug)]
pub enum ManifestError {
    /// The document did not parse into the manifest types.
    Parse(String),
    /// The manifest parsed but is semantically invalid; `context` names the
    /// field (or `"manifest"` for top-level problems).
    Invalid {
        /// Which part of the manifest is wrong.
        context: String,
        /// What is wrong with it.
        message: String,
    },
    /// A data file could not be read (missing, or its size contradicts the
    /// declared shape).
    Io {
        /// The file that failed.
        path: PathBuf,
        /// The underlying error.
        source: IoError,
    },
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Parse(msg) => write!(f, "manifest parse error: {msg}"),
            ManifestError::Invalid { context, message } => write!(f, "{context}: {message}"),
            ManifestError::Io { path, source } => {
                write!(f, "while reading `{}`: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ManifestError {}

impl ManifestError {
    fn invalid(context: impl Into<String>, message: impl Into<String>) -> Self {
        ManifestError::Invalid {
            context: context.into(),
            message: message.into(),
        }
    }
}

impl Manifest {
    /// Parse and validate a JSON manifest document.
    pub fn from_json_str(input: &str) -> Result<Self, ManifestError> {
        let manifest: Manifest =
            serde_json::from_str(input).map_err(|e| ManifestError::Parse(e.to_string()))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// Build and validate a manifest from an already-parsed value tree
    /// (the CLI's TOML frontend produces one of these).
    pub fn from_value(value: serde_json::Value) -> Result<Self, ManifestError> {
        let manifest: Manifest =
            serde_json::from_value(value).map_err(|e| ManifestError::Parse(e.to_string()))?;
        manifest.validate()?;
        Ok(manifest)
    }

    /// The compressor registry name, with the `"sz"` default applied.
    pub fn compressor_name(&self) -> &str {
        self.compressor.as_deref().unwrap_or("sz")
    }

    /// Semantic validation: every constraint that is not a type error.
    ///
    /// Checks, with errors naming the offending field: at least one field;
    /// unique field names; dims arity 1–4 with no zero axis; exactly one of
    /// `file`/`files`/`pattern`/`generator` (mixing `file` and `generator`
    /// gets a dedicated explanation); `seed`/`steps` only alongside
    /// `generator`; positive targets; at most one of
    /// `target_ratio`/`min_psnr` per field and at least one target
    /// (own or manifest default) for each.
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.fields.is_empty() {
            return Err(ManifestError::invalid(
                "manifest",
                "no fields declared — nothing to run",
            ));
        }
        if let Some(t) = self.target_ratio {
            if !(t > 1.0) {
                return Err(ManifestError::invalid(
                    "manifest",
                    format!("target_ratio must be > 1, got {t}"),
                ));
            }
        }
        for (i, field) in self.fields.iter().enumerate() {
            let ctx = if field.name.is_empty() {
                format!("fields[{i}]")
            } else {
                format!("field `{}`", field.name)
            };
            if self.fields[..i].iter().any(|f| f.name == field.name) {
                return Err(ManifestError::invalid(
                    &ctx,
                    "duplicate field name — reports would be ambiguous",
                ));
            }
            if field.dims.is_empty() || field.dims.len() > 4 {
                return Err(ManifestError::invalid(
                    &ctx,
                    format!(
                        "dims must have 1 to 4 axes (slowest first), got {} axes",
                        field.dims.len()
                    ),
                ));
            }
            if let Some(zero_axis) = field.dims.iter().position(|&d| d == 0) {
                return Err(ManifestError::invalid(
                    &ctx,
                    format!("dims axis {zero_axis} is zero"),
                ));
            }
            let file_sources = [
                field.file.is_some(),
                field.files.is_some(),
                field.pattern.is_some(),
            ]
            .iter()
            .filter(|&&s| s)
            .count();
            if field.generator.is_some() && file_sources > 0 {
                // The most tempting mistake gets the most helpful message:
                // a generator field is file-less by definition.
                return Err(ManifestError::invalid(
                    &ctx,
                    format!(
                        "`generator = \"{g}\"` synthesizes the field, so it cannot also \
                         name files — did you mean to drop `file`/`files`/`pattern`, \
                         or to read files and drop `generator`?",
                        g = field.generator.as_deref().unwrap_or_default()
                    ),
                ));
            }
            let sources = file_sources + usize::from(field.generator.is_some());
            if sources != 1 {
                return Err(ManifestError::invalid(
                    &ctx,
                    format!(
                        "exactly one of `file`, `files`, `pattern` or `generator` \
                         must be given, found {sources}"
                    ),
                ));
            }
            if field.generator.is_none() {
                if let Some(knob) = [
                    ("seed", field.seed.is_some()),
                    ("steps", field.steps.is_some()),
                ]
                .iter()
                .find_map(|&(name, set)| set.then_some(name))
                {
                    return Err(ManifestError::invalid(
                        &ctx,
                        format!("`{knob}` only applies to `generator` fields"),
                    ));
                }
            }
            if field.steps == Some(0) {
                return Err(ManifestError::invalid(&ctx, "`steps` must be at least 1"));
            }
            if let Some(files) = &field.files {
                if files.is_empty() {
                    return Err(ManifestError::invalid(&ctx, "`files` is empty"));
                }
            }
            match (field.target_ratio, field.min_psnr) {
                (Some(_), Some(_)) => {
                    return Err(ManifestError::invalid(
                        &ctx,
                        "`target_ratio` and `min_psnr` are mutually exclusive",
                    ))
                }
                (Some(t), None) if !(t > 1.0) => {
                    return Err(ManifestError::invalid(
                        &ctx,
                        format!("target_ratio must be > 1, got {t}"),
                    ))
                }
                (None, Some(p)) if !(p > 0.0) => {
                    return Err(ManifestError::invalid(
                        &ctx,
                        format!("min_psnr must be positive, got {p}"),
                    ))
                }
                (None, None) if self.target_ratio.is_none() => {
                    return Err(ManifestError::invalid(
                        &ctx,
                        "no target: set `target_ratio`/`min_psnr` on the field \
                         or a manifest-level `target_ratio`",
                    ))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The directory holding the data files, given the manifest's own
    /// location (its parent directory, or the process cwd for a bare name).
    pub fn data_root(&self, manifest_dir: &Path) -> PathBuf {
        match &self.data_dir {
            Some(dir) => manifest_dir.join(dir),
            None => manifest_dir.to_path_buf(),
        }
    }

    /// Locate and load every field's files under `manifest_dir`
    /// (the directory the manifest file lives in).
    ///
    /// Walks the data directory for `pattern` fields (matches sorted by
    /// name), checks each file's size against the declared shape, and
    /// loads the series with the file's position as the time-step index.
    /// `generator` fields are rejected — use [`Manifest::resolve_with`]
    /// (the CLI does) to supply a [`FieldSynthesizer`] for them.
    pub fn resolve(&self, manifest_dir: &Path) -> Result<ResolvedManifest, ManifestError> {
        self.resolve_with(manifest_dir, None)
    }

    /// [`Manifest::resolve`], with `generator` fields synthesized by
    /// `synthesizer` instead of loaded from disk.  Generated series have no
    /// backing paths ([`ResolvedField::paths`] stays empty).
    pub fn resolve_with(
        &self,
        manifest_dir: &Path,
        synthesizer: Option<&dyn FieldSynthesizer>,
    ) -> Result<ResolvedManifest, ManifestError> {
        self.validate()?;
        let root = self.data_root(manifest_dir);
        let mut fields = Vec::with_capacity(self.fields.len());
        for field in &self.fields {
            let ctx = format!("field `{}`", field.name);
            if let Some(generator) = &field.generator {
                let Some(synthesizer) = synthesizer else {
                    return Err(ManifestError::invalid(
                        &ctx,
                        format!(
                            "`generator = \"{generator}\"` needs a field synthesizer; \
                             this entry point only reads files \
                             (the `fraz` CLI resolves generator fields)"
                        ),
                    ));
                };
                let series = synthesizer
                    .synthesize(&self.application, field)
                    .map_err(|message| ManifestError::invalid(&ctx, message))?;
                let target = self.field_target(field);
                fields.push(ResolvedField {
                    name: field.name.clone(),
                    paths: Vec::new(),
                    series,
                    target,
                });
                continue;
            }
            let paths: Vec<PathBuf> = if let Some(file) = &field.file {
                vec![root.join(file)]
            } else if let Some(files) = &field.files {
                files.iter().map(|f| root.join(f)).collect()
            } else {
                let pattern = field.pattern.as_deref().expect("validated above");
                let mut matches = walk_matching(&root, pattern).map_err(|e| ManifestError::Io {
                    path: root.clone(),
                    source: IoError::Io(e),
                })?;
                if matches.is_empty() {
                    return Err(ManifestError::invalid(
                        &ctx,
                        format!(
                            "pattern `{pattern}` matched no files under `{}`",
                            root.display()
                        ),
                    ));
                }
                // Natural (numeric-aware) name order, so unpadded step
                // numbers form a correct time series: t2 before t10.
                matches.sort_by(|a, b| {
                    natural_cmp(
                        &a.file_name().unwrap_or_default().to_string_lossy(),
                        &b.file_name().unwrap_or_default().to_string_lossy(),
                    )
                });
                matches
            };
            // Validation guarantees 1-4 non-zero axes, so Dims::new cannot
            // panic here.
            let dims = Dims::new(&field.dims);
            let mut series = Vec::with_capacity(paths.len());
            for (timestep, path) in paths.iter().enumerate() {
                let dataset = io::read_raw(
                    path,
                    &self.application,
                    &field.name,
                    timestep,
                    dims.clone(),
                    field.dtype,
                )
                .map_err(|source| ManifestError::Io {
                    path: path.clone(),
                    source,
                })?;
                series.push(dataset);
            }
            let target = self.field_target(field);
            fields.push(ResolvedField {
                name: field.name.clone(),
                paths,
                series,
                target,
            });
        }
        Ok(ResolvedManifest {
            application: self.application.clone(),
            compressor: self.compressor_name().to_string(),
            fields,
        })
    }

    /// The per-field objective, with the manifest-level default applied
    /// (only sound after [`Manifest::validate`]).
    fn field_target(&self, field: &FieldSpec) -> FieldTarget {
        match (field.target_ratio, field.min_psnr) {
            (Some(r), None) => FieldTarget::Ratio(r),
            (None, Some(p)) => FieldTarget::MinPsnr(p),
            (None, None) => FieldTarget::Ratio(self.target_ratio.expect("validated above")),
            (Some(_), Some(_)) => unreachable!("validated above"),
        }
    }
}

/// Non-recursive directory walk returning the file names matching `pattern`.
fn walk_matching(dir: &Path, pattern: &str) -> std::io::Result<Vec<PathBuf>> {
    let mut matches = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if glob_match(pattern, name) {
            matches.push(entry.path());
        }
    }
    Ok(matches)
}

/// Natural-order string comparison: runs of ASCII digits compare as
/// numbers, everything else byte-wise — `t2 < t10`, unlike the
/// lexicographic order that scrambles unpadded time-step names.
pub fn natural_cmp(a: &str, b: &str) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let (mut i, mut j) = (0usize, 0usize);
    let digits = |s: &[u8], mut k: usize| {
        while k < s.len() && s[k].is_ascii_digit() {
            k += 1;
        }
        k
    };
    while i < a.len() && j < b.len() {
        if a[i].is_ascii_digit() && b[j].is_ascii_digit() {
            let (ie, je) = (digits(a, i), digits(b, j));
            // Compare the digit runs numerically: strip leading zeros,
            // then longer run wins, then byte order breaks ties.
            let an = &a[i..ie];
            let bn = &b[j..je];
            let strip = |s: &[u8]| s.iter().position(|&c| c != b'0').unwrap_or(s.len());
            let (at, bt) = (&an[strip(an)..], &bn[strip(bn)..]);
            let ord = at.len().cmp(&bt.len()).then_with(|| at.cmp(bt));
            if ord != Ordering::Equal {
                return ord;
            }
            // Numerically equal (e.g. `01` vs `1`): fewer leading zeros
            // first, for a deterministic total order.
            let ord = an.len().cmp(&bn.len());
            if ord != Ordering::Equal {
                return ord;
            }
            i = ie;
            j = je;
        } else {
            let ord = a[i].cmp(&b[j]);
            if ord != Ordering::Equal {
                return ord;
            }
            i += 1;
            j += 1;
        }
    }
    (a.len() - i).cmp(&(b.len() - j))
}

/// Shell-style glob matching: `*` matches any run of characters (including
/// none), `?` matches exactly one; everything else is literal.
///
/// Iterative two-pointer algorithm with single-star backtracking —
/// `O(pattern × name)` worst case, so adversarial patterns full of `*`
/// cannot blow the stack or go exponential the way naive recursion does.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    let (mut pi, mut ni) = (0usize, 0usize);
    // Most recent `*`: (pattern index after it, name index it is
    // currently absorbing up to).  Only the last star ever needs
    // revisiting: extending an earlier star is equivalent to extending
    // this one.
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi + 1, ni));
            pi += 1;
        } else if let Some((star_p, star_n)) = star {
            // Backtrack: let the star swallow one more character.
            pi = star_p;
            ni = star_n + 1;
            star = Some((star_p, star_n + 1));
        } else {
            return false;
        }
    }
    // Only trailing stars may remain unconsumed.
    p[pi..].iter().all(|&c| c == '*')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::write_raw;

    fn minimal_json(fields: &str) -> String {
        format!(r#"{{"application": "test", "target_ratio": 8.0, "fields": [{fields}]}}"#)
    }

    fn field_json(extra: &str) -> String {
        format!(r#"{{"name": "a", "dtype": "f32", "dims": [4, 5], "file": "a.f32"{extra}}}"#)
    }

    #[test]
    fn parses_a_minimal_manifest() {
        let m = Manifest::from_json_str(&minimal_json(&field_json(""))).unwrap();
        assert_eq!(m.application, "test");
        assert_eq!(m.compressor_name(), "sz");
        assert_eq!(m.fields[0].dims, vec![4, 5]);
        assert_eq!(m.fields[0].dtype, DType::F32);
    }

    #[test]
    fn unknown_field_is_a_readable_parse_error() {
        let err = Manifest::from_json_str(&minimal_json(&field_json(r#", "targert_ratio": 9.0"#)))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown field `targert_ratio`"), "{err}");
        assert!(err.contains("`target_ratio`"), "{err}");
        assert!(err.contains("fields[0]"), "{err}");
    }

    #[test]
    fn wrong_dims_arity_is_a_readable_error() {
        let bad = r#"{"name": "a", "dtype": "f32", "dims": [1, 2, 3, 4, 5], "file": "a.f32"}"#;
        let err = Manifest::from_json_str(&minimal_json(bad))
            .unwrap_err()
            .to_string();
        assert!(err.contains("field `a`"), "{err}");
        assert!(err.contains("1 to 4 axes"), "{err}");
        assert!(err.contains("5 axes"), "{err}");

        let zero = r#"{"name": "a", "dtype": "f32", "dims": [4, 0], "file": "a.f32"}"#;
        let err = Manifest::from_json_str(&minimal_json(zero))
            .unwrap_err()
            .to_string();
        assert!(err.contains("axis 1 is zero"), "{err}");
    }

    #[test]
    fn bad_dtype_is_a_readable_error() {
        let bad = r#"{"name": "a", "dtype": "f16", "dims": [4], "file": "a.f32"}"#;
        let err = Manifest::from_json_str(&minimal_json(bad))
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown dtype `f16`"), "{err}");
        assert!(err.contains("fields[0].dtype"), "{err}");
    }

    #[test]
    fn file_sources_are_mutually_exclusive() {
        let both = field_json(r#", "pattern": "a*.f32""#);
        let err = Manifest::from_json_str(&minimal_json(&both))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("exactly one of `file`, `files`, `pattern` or `generator`"),
            "{err}"
        );

        let neither = r#"{"name": "a", "dtype": "f32", "dims": [4]}"#;
        let err = Manifest::from_json_str(&minimal_json(neither))
            .unwrap_err()
            .to_string();
        assert!(err.contains("found 0"), "{err}");
    }

    #[test]
    fn file_plus_generator_gets_a_did_you_mean_error() {
        let both = field_json(r#", "generator": "turbulence""#);
        let err = Manifest::from_json_str(&minimal_json(&both))
            .unwrap_err()
            .to_string();
        assert!(err.contains("field `a`"), "{err}");
        assert!(err.contains("`generator = \"turbulence\"`"), "{err}");
        assert!(err.contains("did you mean"), "{err}");
        // The generic count message is reserved for zero/many file sources.
        assert!(!err.contains("found 2"), "{err}");
    }

    #[test]
    fn generator_knobs_require_a_generator() {
        for knob in [r#", "seed": 7"#, r#", "steps": 3"#] {
            let err = Manifest::from_json_str(&minimal_json(&field_json(knob)))
                .unwrap_err()
                .to_string();
            assert!(err.contains("only applies to `generator` fields"), "{err}");
        }
        let zero_steps = r#"{"name": "a", "dtype": "f32", "dims": [64],
                             "generator": "noise", "steps": 0}"#;
        let err = Manifest::from_json_str(&minimal_json(zero_steps))
            .unwrap_err()
            .to_string();
        assert!(err.contains("`steps` must be at least 1"), "{err}");
    }

    #[test]
    fn generator_fields_resolve_only_through_a_synthesizer() {
        let json = r#"{
            "application": "synth", "target_ratio": 8.0,
            "fields": [{"name": "g", "dtype": "f32", "dims": [8],
                        "generator": "noise", "seed": 3, "steps": 2}]
        }"#;
        let manifest = Manifest::from_json_str(json).unwrap();

        // Plain resolve() points at the synthesizer-aware entry point.
        let err = manifest.resolve(Path::new(".")).unwrap_err().to_string();
        assert!(err.contains("field `g`"), "{err}");
        assert!(err.contains("needs a field synthesizer"), "{err}");

        struct Fake;
        impl FieldSynthesizer for Fake {
            fn synthesize(
                &self,
                application: &str,
                spec: &FieldSpec,
            ) -> Result<Vec<Dataset>, String> {
                let dims = Dims::new(&spec.dims);
                Ok((0..spec.steps.unwrap_or(1))
                    .map(|t| {
                        Dataset::from_f32(
                            application,
                            &spec.name,
                            t,
                            dims.clone(),
                            vec![spec.seed.unwrap_or(0) as f32; dims.len()],
                        )
                    })
                    .collect())
            }
        }
        let resolved = manifest.resolve_with(Path::new("."), Some(&Fake)).unwrap();
        assert_eq!(resolved.fields[0].series.len(), 2);
        assert!(resolved.fields[0].paths.is_empty(), "no backing files");
        assert_eq!(resolved.fields[0].series[0].values_f64()[0], 3.0);

        // Synthesizer errors surface as Invalid with the field as context.
        struct Failing;
        impl FieldSynthesizer for Failing {
            fn synthesize(&self, _: &str, _: &FieldSpec) -> Result<Vec<Dataset>, String> {
                Err("unknown scenario `noise2`".to_string())
            }
        }
        let err = manifest
            .resolve_with(Path::new("."), Some(&Failing))
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("field `g`: unknown scenario `noise2`"),
            "{err}"
        );
    }

    #[test]
    fn a_field_without_any_target_is_rejected() {
        let json = r#"{"application": "t", "fields": [{"name": "a", "dtype": "f32", "dims": [4], "file": "a.f32"}]}"#;
        let err = Manifest::from_json_str(json).unwrap_err().to_string();
        assert!(err.contains("no target"), "{err}");
    }

    #[test]
    fn ratio_and_psnr_targets_are_mutually_exclusive() {
        let both = field_json(r#", "target_ratio": 9.0, "min_psnr": 60.0"#);
        let err = Manifest::from_json_str(&minimal_json(&both))
            .unwrap_err()
            .to_string();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn duplicate_field_names_are_rejected() {
        let fields = format!("{}, {}", field_json(""), field_json(""));
        let err = Manifest::from_json_str(&minimal_json(&fields))
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate field name"), "{err}");
    }

    #[test]
    fn natural_order_sorts_unpadded_steps_correctly() {
        use std::cmp::Ordering;
        let mut names = vec!["ts_t10.f32", "ts_t2.f32", "ts_t1.f32", "ts_t100.f32"];
        names.sort_by(|a, b| natural_cmp(a, b));
        assert_eq!(
            names,
            vec!["ts_t1.f32", "ts_t2.f32", "ts_t10.f32", "ts_t100.f32"]
        );
        assert_eq!(natural_cmp("a2b", "a10b"), Ordering::Less);
        assert_eq!(natural_cmp("a02", "a2"), Ordering::Greater); // more zeros later
        assert_eq!(natural_cmp("a", "a"), Ordering::Equal);
        assert_eq!(natural_cmp("a1", "a1x"), Ordering::Less);
        assert_eq!(natural_cmp("b1", "a2"), Ordering::Greater);
    }

    #[test]
    fn pattern_series_loads_in_temporal_order() {
        let dir = std::env::temp_dir().join(format!("fraz_manifest_nat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for t in [1usize, 2, 10] {
            let ds = Dataset::from_f32("t", "ts", 0, Dims::d1(4), vec![t as f32; 4]);
            write_raw(dir.join(format!("ts_t{t}.f32")), &ds).unwrap();
        }
        let json = r#"{
            "application": "t", "target_ratio": 8.0,
            "fields": [{"name": "ts", "dtype": "f32", "dims": [4], "pattern": "ts_t*.f32"}]
        }"#;
        let resolved = Manifest::from_json_str(json)
            .unwrap()
            .resolve(&dir)
            .unwrap();
        let first_values: Vec<f64> = resolved.fields[0]
            .series
            .iter()
            .map(|d| d.values_f64()[0])
            .collect();
        assert_eq!(first_values, vec![1.0, 2.0, 10.0], "t10 must come last");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn glob_matching_semantics() {
        assert!(glob_match("CLOUDf*.bin", "CLOUDf48.bin"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(!glob_match("CLOUDf*.bin", "PRECIPf48.bin"));
        assert!(glob_match("*f*.f32", "CLOUDf48.f32"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("a*b*c", "aXbYbZc"));
        assert!(glob_match("*", ""));
        assert!(!glob_match("a*b", "a"));
    }

    #[test]
    fn glob_matching_is_not_exponential() {
        // The classic backtracking killer: many stars against a
        // near-matching long name.  Naive recursion explores ~2^n
        // branches; the two-pointer matcher must answer instantly.
        let pattern = "*a".repeat(24) + "b";
        let name = "a".repeat(200);
        let start = std::time::Instant::now();
        assert!(!glob_match(&pattern, &name));
        assert!(glob_match(&("*a".repeat(24)), &name));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "glob matching took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn resolve_loads_series_and_reports_missing_files() {
        let dir = std::env::temp_dir().join(format!("fraz_manifest_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Two time-steps matched by pattern (sorted), one single file.
        for (name, scale) in [("ts_t0.f32", 1.0f32), ("ts_t1.f32", 2.0)] {
            let ds = Dataset::from_f32(
                "t",
                "ts",
                0,
                Dims::d2(3, 4),
                (0..12).map(|i| i as f32 * scale).collect(),
            );
            write_raw(dir.join(name), &ds).unwrap();
        }
        let single = Dataset::from_f32("t", "one", 0, Dims::d1(6), vec![1.0; 6]);
        write_raw(dir.join("one.f32"), &single).unwrap();

        let json = r#"{
            "application": "t", "target_ratio": 8.0,
            "fields": [
                {"name": "ts", "dtype": "f32", "dims": [3, 4], "pattern": "ts_t?.f32"},
                {"name": "one", "dtype": "f32", "dims": [6], "file": "one.f32", "min_psnr": 60.0}
            ]
        }"#;
        let manifest = Manifest::from_json_str(json).unwrap();
        let resolved = manifest.resolve(&dir).unwrap();
        assert_eq!(resolved.fields.len(), 2);
        assert_eq!(resolved.fields[0].series.len(), 2);
        assert_eq!(resolved.fields[0].series[1].timestep, 1);
        // Sorted pattern matches: t0 before t1.
        assert!(resolved.fields[0].paths[0].to_str().unwrap().contains("t0"));
        assert_eq!(resolved.fields[1].target, FieldTarget::MinPsnr(60.0));

        // A missing file names itself in the error.
        let json = r#"{
            "application": "t", "target_ratio": 8.0,
            "fields": [{"name": "x", "dtype": "f32", "dims": [6], "file": "nope.f32"}]
        }"#;
        let err = Manifest::from_json_str(json)
            .unwrap()
            .resolve(&dir)
            .unwrap_err()
            .to_string();
        assert!(err.contains("nope.f32"), "{err}");

        // A size mismatch names the file and the byte counts.
        let json = r#"{
            "application": "t", "target_ratio": 8.0,
            "fields": [{"name": "one", "dtype": "f32", "dims": [7], "file": "one.f32"}]
        }"#;
        let err = Manifest::from_json_str(json)
            .unwrap()
            .resolve(&dir)
            .unwrap_err()
            .to_string();
        assert!(err.contains("one.f32"), "{err}");
        assert!(err.contains("28"), "{err}"); // 7 * 4 expected bytes
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unmatched_pattern_is_a_readable_error() {
        let dir = std::env::temp_dir().join(format!("fraz_manifest_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json = r#"{
            "application": "t", "target_ratio": 8.0,
            "fields": [{"name": "x", "dtype": "f32", "dims": [6], "pattern": "none_*.f32"}]
        }"#;
        let err = Manifest::from_json_str(json)
            .unwrap()
            .resolve(&dir)
            .unwrap_err()
            .to_string();
        assert!(err.contains("matched no files"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
