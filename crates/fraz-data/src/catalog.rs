//! Table-III-style descriptors of the applications used in the evaluation.
//!
//! The FRaZ paper's Table III lists, for each SDRBench application, its
//! domain, number of time-steps, dimensionality, field count and total size.
//! [`paper_catalog`] reproduces that table verbatim (for documentation and
//! the `tab03_datasets` experiment binary), while [`describe`] builds the
//! equivalent row for a synthetic instance actually generated in this
//! workspace.

use serde::{Deserialize, Serialize};

use crate::synthetic::SyntheticDataset;

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDescriptor {
    /// Application name (e.g. "Hurricane").
    pub name: String,
    /// Science domain (e.g. "Meteorology").
    pub domain: String,
    /// Number of time-steps in the archive.
    pub timesteps: usize,
    /// Grid dimensionality of each field.
    pub dimensionality: usize,
    /// Number of fields.
    pub fields: usize,
    /// Total uncompressed size in bytes.
    pub total_bytes: u64,
}

impl DatasetDescriptor {
    /// Human-readable size (GB with one decimal, as the paper prints it).
    pub fn size_gb(&self) -> f64 {
        self.total_bytes as f64 / 1e9
    }
}

/// The rows of Table III exactly as printed in the paper.
pub fn paper_catalog() -> Vec<DatasetDescriptor> {
    vec![
        DatasetDescriptor {
            name: "Hurricane".into(),
            domain: "Meteorology".into(),
            timesteps: 48,
            dimensionality: 3,
            fields: 13,
            total_bytes: 59_000_000_000,
        },
        DatasetDescriptor {
            name: "HACC".into(),
            domain: "Cosmology".into(),
            timesteps: 101,
            dimensionality: 1,
            fields: 6,
            total_bytes: 11_000_000_000,
        },
        DatasetDescriptor {
            name: "CESM".into(),
            domain: "Climate".into(),
            timesteps: 62,
            dimensionality: 2,
            fields: 6,
            total_bytes: 48_000_000_000,
        },
        DatasetDescriptor {
            name: "Exaalt".into(),
            domain: "Molecular Dyn.".into(),
            timesteps: 82,
            dimensionality: 1,
            fields: 3,
            total_bytes: 1_100_000_000,
        },
        DatasetDescriptor {
            name: "NYX".into(),
            domain: "Cosmology".into(),
            timesteps: 8,
            dimensionality: 3,
            fields: 5,
            total_bytes: 35_000_000_000,
        },
    ]
}

/// Describe a synthetic application instance in the same format.
pub fn describe(app: &SyntheticDataset, domain: &str) -> DatasetDescriptor {
    DatasetDescriptor {
        name: app.application().to_string(),
        domain: domain.to_string(),
        timesteps: app.timesteps(),
        dimensionality: app.dims().ndims(),
        fields: app.num_fields(),
        total_bytes: app.total_bytes() as u64,
    }
}

/// Map a synthetic application name to the science domain used in Table III.
pub fn domain_of(application: &str) -> &'static str {
    match application {
        "hurricane" => "Meteorology",
        "hacc" => "Cosmology",
        "cesm" => "Climate",
        "exaalt" => "Molecular Dyn.",
        "nyx" => "Cosmology",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic;

    #[test]
    fn paper_catalog_matches_table_iii() {
        let rows = paper_catalog();
        assert_eq!(rows.len(), 5);
        let hurricane = &rows[0];
        assert_eq!(hurricane.timesteps, 48);
        assert_eq!(hurricane.dimensionality, 3);
        assert_eq!(hurricane.fields, 13);
        assert!((hurricane.size_gb() - 59.0).abs() < 0.5);
        let hacc = &rows[1];
        assert_eq!(hacc.dimensionality, 1);
        assert_eq!(hacc.timesteps, 101);
    }

    #[test]
    fn describe_matches_generator_shape() {
        let app = synthetic::cesm(10, 20, 3, 1);
        let d = describe(&app, domain_of("cesm"));
        assert_eq!(d.name, "cesm");
        assert_eq!(d.domain, "Climate");
        assert_eq!(d.dimensionality, 2);
        assert_eq!(d.fields, 6);
        assert_eq!(d.timesteps, 3);
        assert_eq!(d.total_bytes, 6 * 3 * 200 * 4);
    }

    #[test]
    fn domains_cover_all_apps() {
        for name in ["hurricane", "hacc", "cesm", "exaalt", "nyx"] {
            assert_ne!(domain_of(name), "Unknown");
        }
        assert_eq!(domain_of("other"), "Unknown");
    }

    #[test]
    fn descriptor_size_helper() {
        let rows = paper_catalog();
        assert!((rows[3].size_gb() - 1.1).abs() < 1e-9);
    }
}
