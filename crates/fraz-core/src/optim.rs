//! Derivative-free scalar global minimization (paper §V-B1).
//!
//! FRaZ's autotuner is built on Dlib's `find_global_min`, Davis King's
//! combination of MaxLIPO global exploration (Malherbe & Vayatis' Lipschitz
//! lower bounds) with a local quadratic trust-region refinement (in the
//! spirit of Powell's NEWUOA), modified with an early-termination cutoff.
//! [`GlobalMinimizer`] re-implements that 1-D algorithm:
//!
//! * every evaluated point contributes a cone `f(x_i) − k·|x − x_i|` to a
//!   piecewise-linear *lower bound* of the objective; the exploration step
//!   evaluates the candidate with the smallest lower bound,
//! * every other iteration a parabola is fitted through the incumbent best
//!   point and its neighbours and its minimizer is evaluated (the
//!   trust-region step),
//! * the search stops when the loss drops below the caller's cutoff (FRaZ's
//!   modification), the evaluation budget is exhausted, or an external
//!   cancellation flag is raised (used by the parallel orchestrator).
//!
//! [`binary_search`] and [`grid_search`] provide the baselines the paper
//! discusses (binary search needs monotonicity and wastes evaluations; see
//! the `tab_iterations` experiment).

use std::sync::atomic::{AtomicBool, Ordering};

/// One objective evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The evaluated input (an error-bound setting).
    pub x: f64,
    /// The loss at `x`.
    pub loss: f64,
    /// The raw compression ratio observed at `x` (carried for reporting).
    pub ratio: f64,
}

/// Result of a search over one interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchTrace {
    /// The best evaluation found.
    pub best: Evaluation,
    /// Every evaluation, in the order performed.
    pub evaluations: Vec<Evaluation>,
    /// True if the cutoff terminated the search early.
    pub reached_cutoff: bool,
    /// True if an external cancellation stopped the search.
    pub cancelled: bool,
}

impl SearchTrace {
    /// Number of objective evaluations performed.
    pub fn iterations(&self) -> usize {
        self.evaluations.len()
    }
}

/// Configuration of the global minimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Maximum number of objective evaluations.
    pub max_evaluations: usize,
    /// Early-termination cutoff: stop as soon as a loss ≤ cutoff is found
    /// (set to 0.0 — or `use_cutoff = false` upstream — to disable).
    pub cutoff: f64,
    /// Relative solver tolerance on `x` below which the trust-region step
    /// stops refining.
    pub x_tolerance: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            max_evaluations: 40,
            cutoff: 0.0,
            x_tolerance: 1e-10,
        }
    }
}

/// An objective evaluation: maps a candidate `x` to `(loss, ratio)`.
pub trait Objective {
    /// Evaluate the objective at `x`.
    fn eval(&mut self, x: f64) -> (f64, f64);
}

impl<F> Objective for F
where
    F: FnMut(f64) -> (f64, f64),
{
    fn eval(&mut self, x: f64) -> (f64, f64) {
        self(x)
    }
}

/// The MaxLIPO + trust-region global minimizer.
#[derive(Debug, Clone)]
pub struct GlobalMinimizer {
    config: OptimizerConfig,
}

impl GlobalMinimizer {
    /// Create a minimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        Self { config }
    }

    /// Minimize `objective` over `[lower, upper]`.
    ///
    /// `cancel` is polled between evaluations; when it becomes true the
    /// search returns immediately with whatever it has (the orchestrator uses
    /// this for early termination across regions).
    pub fn minimize(
        &self,
        objective: &mut dyn Objective,
        lower: f64,
        upper: f64,
        cancel: Option<&AtomicBool>,
    ) -> SearchTrace {
        assert!(
            lower.is_finite() && upper.is_finite() && lower < upper,
            "invalid search interval [{lower}, {upper}]"
        );
        let mut evaluations: Vec<Evaluation> = Vec::new();
        let mut reached_cutoff = false;
        let mut cancelled = false;

        let cancelled_now =
            |flag: Option<&AtomicBool>| flag.map(|f| f.load(Ordering::Relaxed)).unwrap_or(false);

        // Golden-ratio low-discrepancy sequence for deterministic,
        // well-spread exploration candidates (stands in for Dlib's RNG while
        // keeping runs reproducible).
        let golden = 0.618_033_988_749_894_9_f64;
        let mut golden_state = 0.5_f64;
        let mut next_golden = move || {
            golden_state = (golden_state + golden).fract();
            golden_state
        };

        macro_rules! evaluate {
            ($x:expr) => {{
                let x: f64 = $x;
                let x = x.clamp(lower, upper);
                let (loss, ratio) = objective.eval(x);
                let e = Evaluation { x, loss, ratio };
                evaluations.push(e);
                if self.config.cutoff > 0.0 && loss <= self.config.cutoff {
                    reached_cutoff = true;
                }
                e
            }};
        }

        // Seed with the two endpoints and one interior point.
        for x in [lower, upper, lower + (upper - lower) * next_golden()] {
            if evaluations.len() >= self.config.max_evaluations
                || reached_cutoff
                || cancelled_now(cancel)
            {
                break;
            }
            evaluate!(x);
        }

        while evaluations.len() < self.config.max_evaluations && !reached_cutoff {
            if cancelled_now(cancel) {
                cancelled = true;
                break;
            }
            // Alternate: even iterations explore (MaxLIPO), odd refine (TR).
            let explore = evaluations.len() % 2 == 0;
            let candidate = if explore {
                self.lipo_candidate(&evaluations, lower, upper, &mut next_golden)
            } else {
                self.trust_region_candidate(&evaluations, lower, upper)
                    .unwrap_or_else(|| self.largest_gap_candidate(&evaluations, lower, upper))
            };
            // Avoid re-evaluating (numerically) identical points.
            let candidate = if evaluations
                .iter()
                .any(|e| (e.x - candidate).abs() <= self.config.x_tolerance * (upper - lower))
            {
                self.largest_gap_candidate(&evaluations, lower, upper)
            } else {
                candidate
            };
            evaluate!(candidate);
        }

        let best = evaluations
            .iter()
            .copied()
            .min_by(|a, b| {
                a.loss
                    .partial_cmp(&b.loss)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(Evaluation {
                x: lower,
                loss: f64::INFINITY,
                ratio: 0.0,
            });
        SearchTrace {
            best,
            evaluations,
            reached_cutoff,
            cancelled,
        }
    }

    /// MaxLIPO exploration: pick the candidate minimizing the piecewise
    /// Lipschitz lower bound `max_i (f_i − k·|x − x_i|)`.
    fn lipo_candidate(
        &self,
        evals: &[Evaluation],
        lower: f64,
        upper: f64,
        next_golden: &mut impl FnMut() -> f64,
    ) -> f64 {
        if evals.len() < 2 {
            return lower + (upper - lower) * next_golden();
        }
        // Estimate the Lipschitz constant from observed slopes.
        let mut k = 0.0f64;
        for i in 0..evals.len() {
            for j in (i + 1)..evals.len() {
                let dx = (evals[i].x - evals[j].x).abs();
                if dx > 1e-300 {
                    k = k.max((evals[i].loss - evals[j].loss).abs() / dx);
                }
            }
        }
        if !(k.is_finite() && k > 0.0) {
            return lower + (upper - lower) * next_golden();
        }
        k *= 1.1; // margin, as Dlib inflates its Lipschitz estimate

        // Scan a dense candidate grid (plus a jitter offset) for the point
        // with the smallest lower bound; prefer candidates away from existing
        // samples.
        let samples = 256;
        let jitter = next_golden() / samples as f64;
        let mut best_x = lower;
        let mut best_bound = f64::INFINITY;
        for s in 0..samples {
            let t = (s as f64 + 0.5) / samples as f64 + jitter;
            let x = lower + (upper - lower) * t.clamp(0.0, 1.0);
            let mut bound = f64::NEG_INFINITY;
            for e in evals {
                bound = bound.max(e.loss - k * (x - e.x).abs());
            }
            if bound < best_bound {
                best_bound = bound;
                best_x = x;
            }
        }
        best_x
    }

    /// Trust-region refinement: fit a parabola through the best point and its
    /// nearest neighbours on either side and jump to its minimizer.
    fn trust_region_candidate(&self, evals: &[Evaluation], lower: f64, upper: f64) -> Option<f64> {
        if evals.len() < 3 {
            return None;
        }
        let mut sorted: Vec<&Evaluation> = evals.iter().collect();
        sorted.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal));
        let best_idx = sorted
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.loss
                    .partial_cmp(&b.1.loss)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)?;
        // Pick a bracketing triple around the best point.
        let (i0, i1, i2) = if best_idx == 0 {
            (0, 1, 2)
        } else if best_idx == sorted.len() - 1 {
            (sorted.len() - 3, sorted.len() - 2, sorted.len() - 1)
        } else {
            (best_idx - 1, best_idx, best_idx + 1)
        };
        let (x0, f0) = (sorted[i0].x, sorted[i0].loss);
        let (x1, f1) = (sorted[i1].x, sorted[i1].loss);
        let (x2, f2) = (sorted[i2].x, sorted[i2].loss);
        // Parabolic interpolation minimizer.
        let denom = (x1 - x0) * (f1 - f2) - (x1 - x2) * (f1 - f0);
        if denom.abs() < 1e-300 {
            return None;
        }
        let numer = (x1 - x0).powi(2) * (f1 - f2) - (x1 - x2).powi(2) * (f1 - f0);
        let candidate = x1 - 0.5 * numer / denom;
        if !candidate.is_finite() {
            return None;
        }
        Some(candidate.clamp(lower, upper))
    }

    /// Fallback: bisect the largest gap between consecutive samples.
    fn largest_gap_candidate(&self, evals: &[Evaluation], lower: f64, upper: f64) -> f64 {
        let mut xs: Vec<f64> = evals.iter().map(|e| e.x).collect();
        xs.push(lower);
        xs.push(upper);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        xs.dedup();
        let mut best_gap = 0.0;
        let mut best_mid = (lower + upper) / 2.0;
        for w in xs.windows(2) {
            let gap = w[1] - w[0];
            if gap > best_gap {
                best_gap = gap;
                best_mid = (w[0] + w[1]) / 2.0;
            }
        }
        best_mid
    }
}

/// Classic bisection on the *ratio* (not the loss), assuming the ratio grows
/// with the error bound — the baseline FRaZ compares against in §V-B1.
/// Returns the trace of evaluations; stops when the ratio is acceptable or
/// the budget is exhausted.
pub fn binary_search(
    objective: &mut dyn Objective,
    lower: f64,
    upper: f64,
    target_ratio: f64,
    tolerance: f64,
    max_evaluations: usize,
) -> SearchTrace {
    let mut evaluations = Vec::new();
    let mut lo = lower;
    let mut hi = upper;
    let mut reached_cutoff = false;
    for _ in 0..max_evaluations {
        let mid = 0.5 * (lo + hi);
        let (loss, ratio) = objective.eval(mid);
        evaluations.push(Evaluation {
            x: mid,
            loss,
            ratio,
        });
        if ratio >= target_ratio * (1.0 - tolerance) && ratio <= target_ratio * (1.0 + tolerance) {
            reached_cutoff = true;
            break;
        }
        if ratio < target_ratio {
            // Need a larger ratio -> (assume) larger error bound.
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= f64::EPSILON * upper.abs() {
            break;
        }
    }
    let best = evaluations
        .iter()
        .copied()
        .min_by(|a, b| {
            a.loss
                .partial_cmp(&b.loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(Evaluation {
            x: lower,
            loss: f64::INFINITY,
            ratio: 0.0,
        });
    SearchTrace {
        best,
        evaluations,
        reached_cutoff,
        cancelled: false,
    }
}

/// Uniform grid sweep baseline (used by ablations and the figure binaries to
/// chart the ratio-vs-bound landscape).
pub fn grid_search(
    objective: &mut dyn Objective,
    lower: f64,
    upper: f64,
    points: usize,
    cutoff: f64,
) -> SearchTrace {
    let mut evaluations = Vec::new();
    let mut reached_cutoff = false;
    for i in 0..points.max(2) {
        let x = lower + (upper - lower) * i as f64 / (points.max(2) - 1) as f64;
        let (loss, ratio) = objective.eval(x);
        evaluations.push(Evaluation { x, loss, ratio });
        if cutoff > 0.0 && loss <= cutoff {
            reached_cutoff = true;
            break;
        }
    }
    let best = evaluations
        .iter()
        .copied()
        .min_by(|a, b| {
            a.loss
                .partial_cmp(&b.loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap();
    SearchTrace {
        best,
        evaluations,
        reached_cutoff,
        cancelled: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimize_fn(
        f: impl Fn(f64) -> f64,
        lower: f64,
        upper: f64,
        config: OptimizerConfig,
    ) -> SearchTrace {
        let mut obj = |x: f64| (f(x), 0.0);
        GlobalMinimizer::new(config).minimize(&mut obj, lower, upper, None)
    }

    #[test]
    fn finds_minimum_of_smooth_convex_function() {
        let trace = minimize_fn(
            |x| (x - 3.7).powi(2),
            0.0,
            10.0,
            OptimizerConfig {
                max_evaluations: 30,
                ..Default::default()
            },
        );
        assert!((trace.best.x - 3.7).abs() < 0.05, "best {}", trace.best.x);
        assert!(trace.best.loss < 0.01);
    }

    #[test]
    fn escapes_local_minima_of_multimodal_function() {
        // Global minimum at x ≈ 8.05 (value -1 - 0.8), local minima elsewhere.
        let f = |x: f64| (x * 2.0).sin() + 0.8 * ((x - 8.05) / 4.0).powi(2) - 1.0;
        let trace = minimize_fn(
            f,
            0.0,
            12.0,
            OptimizerConfig {
                max_evaluations: 60,
                ..Default::default()
            },
        );
        // The true minimizer is near 8.64 (balancing both terms); accept a
        // small neighbourhood around the global basin rather than a local one.
        assert!(
            (7.0..10.5).contains(&trace.best.x),
            "stuck at {} (loss {})",
            trace.best.x,
            trace.best.loss
        );
    }

    #[test]
    fn handles_step_functions_like_zfp_ratios() {
        // A staircase with the acceptable step at [4, 6).
        let f = |x: f64| {
            let level = x.floor();
            (level - 5.0).powi(2)
        };
        let trace = minimize_fn(
            f,
            0.0,
            20.0,
            OptimizerConfig {
                max_evaluations: 50,
                cutoff: 0.5,
                ..Default::default()
            },
        );
        assert!(trace.best.loss <= 0.5);
        assert!((5.0..6.0).contains(&trace.best.x), "{}", trace.best.x);
    }

    #[test]
    fn cutoff_terminates_early() {
        let mut calls = 0usize;
        let mut obj = |x: f64| {
            calls += 1;
            ((x - 5.0).powi(2), 0.0)
        };
        let trace = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: 200,
            cutoff: 1.0,
            ..Default::default()
        })
        .minimize(&mut obj, 0.0, 10.0, None);
        assert!(trace.reached_cutoff);
        assert!(trace.iterations() < 200);
        assert_eq!(trace.iterations(), calls);
        assert!(trace.best.loss <= 1.0);
    }

    #[test]
    fn without_cutoff_uses_full_budget() {
        let trace = minimize_fn(
            |x| (x - 5.0).powi(2),
            0.0,
            10.0,
            OptimizerConfig {
                max_evaluations: 25,
                cutoff: 0.0,
                ..Default::default()
            },
        );
        assert!(!trace.reached_cutoff);
        assert_eq!(trace.iterations(), 25);
    }

    #[test]
    fn cancellation_stops_the_search() {
        let cancel = AtomicBool::new(false);
        let mut calls = 0usize;
        let mut obj = |x: f64| {
            calls += 1;
            if calls == 5 {
                cancel.store(true, Ordering::Relaxed);
            }
            ((x - 5.0).powi(2), 0.0)
        };
        let trace = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: 100,
            ..Default::default()
        })
        .minimize(&mut obj, 0.0, 10.0, Some(&cancel));
        assert!(trace.cancelled);
        assert!(trace.iterations() <= 6);
    }

    #[test]
    #[should_panic(expected = "invalid search interval")]
    fn invalid_interval_panics() {
        let _ = minimize_fn(|x| x, 5.0, 5.0, OptimizerConfig::default());
    }

    #[test]
    fn binary_search_converges_on_monotone_ratio() {
        // ratio(e) = 100·e (monotone), target 25 -> e = 0.25.
        let mut obj = |x: f64| {
            let ratio = 100.0 * x;
            ((ratio - 25.0f64).powi(2), ratio)
        };
        let trace = binary_search(&mut obj, 0.0, 1.0, 25.0, 0.05, 50);
        assert!(trace.reached_cutoff);
        assert!((trace.best.x - 0.25).abs() < 0.02);
    }

    #[test]
    fn binary_search_fails_on_non_monotonic_ratio_but_global_minimizer_converges() {
        // The paper's first argument against bisection (§V-B1): the ratio is
        // not always monotone in the error bound (Fig 3).  Here the ratio
        // *decreases* with the bound, so bisection walks the wrong way and
        // never lands in the acceptable region, while the global minimizer
        // treats it as an arbitrary landscape and converges.
        let ratio_fn = |x: f64| 30.0 - 25.0 * x;
        let loss = crate::loss::RatioLoss::new(15.0, 0.05);

        let mut bs_obj = |x: f64| {
            let r = ratio_fn(x);
            (loss.loss(r), r)
        };
        let bs = binary_search(&mut bs_obj, 0.0, 1.0, 15.0, 0.05, 40);
        assert!(!bs.reached_cutoff, "bisection should not converge here");

        let mut gm_obj = |x: f64| {
            let r = ratio_fn(x);
            (loss.loss(r), r)
        };
        let gm = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: 40,
            cutoff: loss.cutoff(),
            ..Default::default()
        })
        .minimize(&mut gm_obj, 0.0, 1.0, None);
        assert!(gm.reached_cutoff, "global minimizer should converge");
        assert!((ratio_fn(gm.best.x) - 15.0).abs() <= 0.05 * 15.0);
        assert!(gm.iterations() < bs.iterations());
    }

    #[test]
    fn global_minimizer_converges_quickly_when_target_is_near_range_bottom() {
        // When the useful bound sits near the very bottom of the search range
        // (ratio grows like sqrt), the early-termination cutoff still lets
        // the optimizer stop within a modest budget.
        let ratio_fn = |x: f64| 300.0 * x.sqrt();
        let loss = crate::loss::RatioLoss::new(15.0, 0.1);
        let mut gm_obj = |x: f64| {
            let r = ratio_fn(x);
            (loss.loss(r), r)
        };
        let gm = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: 64,
            cutoff: loss.cutoff(),
            ..Default::default()
        })
        .minimize(&mut gm_obj, 1e-12, 1.0, None);
        assert!(gm.reached_cutoff, "should converge within 64 evaluations");
        assert!((ratio_fn(gm.best.x) - 15.0).abs() <= 1.5 + 1e-9);
    }

    #[test]
    fn grid_search_charts_the_landscape() {
        let mut obj = |x: f64| ((x - 2.0).powi(2), x * 10.0);
        let trace = grid_search(&mut obj, 0.0, 4.0, 21, 0.0);
        assert_eq!(trace.iterations(), 21);
        assert!((trace.best.x - 2.0).abs() < 0.11);
        // With a cutoff the sweep stops early.
        let mut obj = |x: f64| ((x - 2.0).powi(2), x * 10.0);
        let trace = grid_search(&mut obj, 0.0, 4.0, 21, 0.05);
        assert!(trace.reached_cutoff);
        assert!(trace.iterations() < 21);
    }
}
