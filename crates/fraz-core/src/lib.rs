//! # FRaZ — fixed-ratio error-controlled lossy compression
//!
//! This crate is the Rust reproduction of the FRaZ framework itself (the
//! paper's primary contribution): a generic, parallel, black-box autotuner
//! that makes *error-bounded* lossy compressors behave as *fixed-ratio*
//! compressors.
//!
//! Given
//!
//! * a compressor behind the [`fraz_pressio::Compressor`] trait (SZ-like,
//!   ZFP-like, MGARD-like, or anything else),
//! * a dataset `D_{f,t}` (one field at one time-step),
//! * a target compression ratio `ρt` and an acceptable relative deviation
//!   `ε`, and optionally a maximum allowed compression error `U`,
//!
//! FRaZ searches the compressor's error-bound space for a setting `e` whose
//! achieved ratio `ρr(D, e)` lands inside `[ρt(1−ε), ρt(1+ε)]`:
//!
//! * [`loss`] — the clamped-square loss `min((ρr − ρt)², γ)` and its
//!   early-termination cutoff,
//! * [`optim`] — the MaxLIPO + trust-region global minimizer (a
//!   re-implementation of Dlib's `find_global_min` with the paper's cutoff
//!   modification), plus binary-search and grid baselines,
//! * [`regions`] — splitting the error-bound range into overlapping regions,
//! * [`search`] — the worker task and region-parallel training
//!   (Algorithms 1–2),
//! * [`orchestrator`] — time-step prediction reuse and parallel-by-field
//!   scheduling (Algorithm 3),
//! * [`hint`] — the [`SearchHint`] / [`BoundPredictor`] seeding layer that
//!   lets analytic models, warm-start state, and tuning caches feed every
//!   search through one API.
//!
//! # Quick start
//!
//! ```
//! use fraz_core::{FixedRatioSearch, SearchConfig};
//! use fraz_data::synthetic;
//! use fraz_pressio::registry;
//!
//! let dataset = synthetic::hurricane(8, 16, 16, 1, 42).field("TCf", 0);
//! let compressor = registry::build_default("sz").unwrap();
//! // Ask for 10:1 within 10 %.
//! let config = SearchConfig::new(10.0, 0.1).with_regions(4).with_threads(2);
//! let outcome = FixedRatioSearch::new(compressor, config).run(&dataset);
//! assert!(outcome.best.compression_ratio > 1.0);
//! if outcome.feasible {
//!     assert!((outcome.best.compression_ratio - 10.0).abs() <= 1.0 + 1e-9);
//! }
//! ```

pub mod cancel;
pub mod hint;
pub mod loss;
pub mod online;
pub mod optim;
pub mod orchestrator;
pub mod quality;
pub mod regions;
pub mod search;

pub use cancel::CancelToken;
pub use hint::{
    BoundPredictor, HintQuery, HintReport, HintSource, HintTarget, LastConverged, PredictorChain,
    SearchHint,
};
pub use loss::RatioLoss;
pub use online::{OnlineController, OnlineControllerConfig, OnlineStepReport};
pub use optim::{binary_search, grid_search, GlobalMinimizer, OptimizerConfig, SearchTrace};
pub use orchestrator::{
    ApplicationOutcome, FieldTask, Orchestrator, OrchestratorConfig, SeriesOutcome,
};
pub use quality::{FixedQualitySearch, QualityMetric, QualitySearchConfig, QualitySearchOutcome};
pub use regions::{make_error_bounds, BoundScale, Region};
pub use search::{FixedRatioSearch, RegionOutcome, SearchConfig, SearchOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_pressio::registry;

    #[test]
    fn public_api_round_trip() {
        // The README / crate-level example, kept as a compiled test so the
        // documented entry points cannot drift.
        let dataset = fraz_data::synthetic::hurricane(6, 12, 12, 1, 1).field("TCf", 0);
        let compressor = registry::build_default("zfp").unwrap();
        let config = SearchConfig::new(6.0, 0.2).with_regions(3).with_threads(1);
        let outcome = FixedRatioSearch::new(compressor, config).run(&dataset);
        assert!(outcome.best.compression_ratio > 1.0);
        assert!(outcome.evaluations > 0);
    }
}
