//! Search seeding: one first-class abstraction for "try this bound first".
//!
//! Three call sites used to hand-roll warm starts — the orchestrator threaded
//! the previous time-step's bound through `run_with_prediction`, the store
//! writer kept an `AtomicU64` of the last converged chunk bound, and the
//! online controller re-seeded its re-sync search at the current bound.  All
//! of them now speak [`SearchHint`]: a candidate bound with provenance (and
//! optionally a bracket that narrows the fallback search), produced by a
//! [`BoundPredictor`] and fed to
//! [`FixedRatioSearch::run_with_hint`](crate::FixedRatioSearch::run_with_hint)
//! or
//! [`FixedQualitySearch::run_with_hint`](crate::FixedQualitySearch::run_with_hint).
//! The search records whether the hint landed in a [`HintReport`], and
//! [`BoundPredictor::observe`] closes the loop so a predictor can learn from
//! every run (the persistent tuning cache in `fraz-tune` is one such
//! predictor; [`LastConverged`] is the in-process one).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;

/// Where a [`SearchHint`] came from.  Provenance is carried through to the
/// [`HintReport`] so telemetry can distinguish "the previous time-step's
/// answer landed" from "the tuning cache landed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HintSource {
    /// The previous time-step of the same field (Algorithm 3's prediction).
    PreviousStep,
    /// The most recently converged chunk of the same store write.
    WarmStart,
    /// The online controller's current bound at a re-sync.
    Resync,
    /// The closed-form PSNR↔bound model of the codec descriptor.
    Analytic,
    /// The persistent cross-run tuning cache (`fraz-tune`).
    TuneCache,
    /// A caller-supplied bound with no further provenance
    /// (`run_with_prediction`'s compatibility path).
    External,
}

impl fmt::Display for HintSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HintSource::PreviousStep => "previous-step",
            HintSource::WarmStart => "warm-start",
            HintSource::Resync => "resync",
            HintSource::Analytic => "analytic",
            HintSource::TuneCache => "tune-cache",
            HintSource::External => "external",
        })
    }
}

/// A candidate error bound to try before (or instead of) a full search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHint {
    /// The candidate bound.
    pub bound: f64,
    /// Optional bracket `(lo, hi)` believed to contain the answer; when the
    /// probe misses, the fallback search is narrowed to this range (clipped
    /// to the compressor's valid range) instead of re-bracketing the whole
    /// axis.
    pub bracket: Option<(f64, f64)>,
    /// Provenance of the hint.
    pub source: HintSource,
    /// True when the bound is a previously *converged* answer (cache entry,
    /// previous step, warm start) rather than a model's first guess.  A
    /// converged hint that verifies is accepted outright; a non-converged
    /// seed still anchors a local refinement around it.
    pub converged: bool,
}

impl SearchHint {
    /// A converged hint (a previously accepted answer) from `source`.
    pub fn converged(bound: f64, source: HintSource) -> Self {
        Self {
            bound,
            bracket: None,
            source,
            converged: true,
        }
    }

    /// A non-converged seed (a model's first guess) from `source`.
    pub fn seed(bound: f64, source: HintSource) -> Self {
        Self {
            bound,
            bracket: None,
            source,
            converged: false,
        }
    }

    /// Attach a bracket believed to contain the answer (builder style).
    pub fn with_bracket(mut self, lo: f64, hi: f64) -> Self {
        if lo.is_finite() && hi.is_finite() && lo > 0.0 && hi > lo {
            self.bracket = Some((lo, hi));
        }
        self
    }

    /// True when the candidate bound is usable at all.
    pub fn is_valid(&self) -> bool {
        self.bound.is_finite() && self.bound > 0.0
    }
}

/// What the search did with its hint — attached to
/// [`SearchOutcome`](crate::SearchOutcome) and
/// [`QualitySearchOutcome`](crate::QualitySearchOutcome).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HintReport {
    /// Provenance of the hint that was tried.
    pub source: HintSource,
    /// The candidate bound that was probed.
    pub bound: f64,
    /// True when the probe satisfied the objective and the search stopped
    /// there (no fallback training ran).
    pub hit: bool,
    /// Compressor invocations spent probing the hint (these are included in
    /// the outcome's `evaluations` either way).
    pub probes: usize,
}

/// What a search is optimizing for, in predictor-readable form.  The display
/// form is canonical (used verbatim in tuning-cache keys), so two searches
/// with the same objective always produce the same string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HintTarget {
    /// Fixed-ratio search: `target_ratio` within relative `tolerance`.
    Ratio {
        /// Target compression ratio `ρt`.
        target_ratio: f64,
        /// Acceptable relative deviation `ε`.
        tolerance: f64,
    },
    /// Quality search: PSNR at least this many dB.
    MinPsnr(f64),
    /// Quality search: SSIM at least this value.
    MinSsim(f64),
    /// Quality search: RMSE at most this value.
    MaxRmse(f64),
    /// Quality search: pointwise error at most this value.
    MaxError(f64),
}

impl fmt::Display for HintTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HintTarget::Ratio {
                target_ratio,
                tolerance,
            } => write!(f, "ratio:{target_ratio:.6e}:{tolerance:.6e}"),
            HintTarget::MinPsnr(t) => write!(f, "psnr:{t:.6e}"),
            HintTarget::MinSsim(t) => write!(f, "ssim:{t:.6e}"),
            HintTarget::MaxRmse(t) => write!(f, "rmse:{t:.6e}"),
            HintTarget::MaxError(t) => write!(f, "maxerr:{t:.6e}"),
        }
    }
}

/// Everything a predictor may consult to produce a hint for one search.
pub struct HintQuery<'a> {
    /// The dataset about to be searched.
    pub dataset: &'a Dataset,
    /// Registry name of the compressor.
    pub codec: &'a str,
    /// Canonical signature of the codec options (empty for defaults); see
    /// `fraz_pressio::Options::signature`.
    pub codec_config: &'a str,
    /// The search objective.
    pub target: HintTarget,
}

/// A source of search hints that also learns from search results.
///
/// `predict` runs *before* a search and may return a hint; `observe` runs
/// *after* it with the converged bound and whether the objective was met, so
/// stateful predictors (the warm-start slot, the tuning cache) can update.
/// Both take `&self`: one predictor instance is shared across the parallel
/// chunk/field tasks of a run.
pub trait BoundPredictor: Send + Sync {
    /// Propose a hint for the given search, or `None` to search cold.
    fn predict(&self, query: &HintQuery<'_>) -> Option<SearchHint>;

    /// Record a finished search: the bound it settled on and whether the
    /// objective was met.  The default does nothing (stateless predictors).
    fn observe(&self, query: &HintQuery<'_>, bound: f64, hit: bool) {
        let _ = (query, bound, hit);
    }
}

/// The in-process "last converged bound" predictor — the common core of the
/// orchestrator's previous-step prediction and the store writer's per-write
/// warm start.  Stores the most recently observed *successful* bound in an
/// atomic (bounds are always > 0, so the zero bit pattern means "none yet")
/// and proposes it, as a converged hint, for every subsequent search.
pub struct LastConverged {
    bits: AtomicU64,
    source: HintSource,
}

impl LastConverged {
    /// An empty slot whose hints will carry `source`.
    pub fn new(source: HintSource) -> Self {
        Self {
            bits: AtomicU64::new(0),
            source,
        }
    }

    /// The currently remembered bound, if any search has converged yet.
    pub fn bound(&self) -> Option<f64> {
        match self.bits.load(Ordering::Relaxed) {
            0 => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// Seed the slot directly (the online controller plants its current
    /// bound here before a re-sync).
    pub fn store(&self, bound: f64) {
        if bound.is_finite() && bound > 0.0 {
            self.bits.store(bound.to_bits(), Ordering::Relaxed);
        }
    }
}

impl BoundPredictor for LastConverged {
    fn predict(&self, _query: &HintQuery<'_>) -> Option<SearchHint> {
        self.bound().map(|b| SearchHint::converged(b, self.source))
    }

    fn observe(&self, _query: &HintQuery<'_>, bound: f64, hit: bool) {
        // Only propagate bounds that actually met the objective
        // (Algorithm 3 lines 5-7: `p <- e` only on success).
        if hit {
            self.store(bound);
        }
    }
}

/// Ask several predictors in order: the first hint wins, every predictor
/// observes.  The orchestrator chains its per-series [`LastConverged`] in
/// front of an externally installed predictor (e.g. the tuning cache), so
/// within a run the previous step seeds the next one while the cache still
/// learns every converged bound for the *next* run.
pub struct PredictorChain {
    predictors: Vec<Arc<dyn BoundPredictor>>,
}

impl PredictorChain {
    /// A chain asking `predictors` in the given order.
    pub fn new(predictors: Vec<Arc<dyn BoundPredictor>>) -> Self {
        Self { predictors }
    }

    /// True when the chain holds no predictors at all.
    pub fn is_empty(&self) -> bool {
        self.predictors.is_empty()
    }
}

impl BoundPredictor for PredictorChain {
    fn predict(&self, query: &HintQuery<'_>) -> Option<SearchHint> {
        self.predictors.iter().find_map(|p| p.predict(query))
    }

    fn observe(&self, query: &HintQuery<'_>, bound: f64, hit: bool) {
        for p in &self.predictors {
            p.observe(query, bound, hit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::Dims;

    fn dataset() -> Dataset {
        Dataset::from_f32("app", "f", 0, Dims::d1(4), vec![0.0, 1.0, 2.0, 3.0])
    }

    fn query(dataset: &Dataset) -> HintQuery<'_> {
        HintQuery {
            dataset,
            codec: "sz",
            codec_config: "",
            target: HintTarget::Ratio {
                target_ratio: 10.0,
                tolerance: 0.1,
            },
        }
    }

    #[test]
    fn hint_constructors_and_validity() {
        let h = SearchHint::converged(1e-3, HintSource::TuneCache);
        assert!(h.converged && h.is_valid() && h.bracket.is_none());
        let s = SearchHint::seed(1e-3, HintSource::Analytic).with_bracket(1e-4, 1e-2);
        assert!(!s.converged);
        assert_eq!(s.bracket, Some((1e-4, 1e-2)));
        // Degenerate brackets are dropped, not stored.
        assert!(SearchHint::seed(1.0, HintSource::External)
            .with_bracket(2.0, 1.0)
            .bracket
            .is_none());
        assert!(!SearchHint::seed(f64::NAN, HintSource::External).is_valid());
        assert!(!SearchHint::seed(0.0, HintSource::External).is_valid());
    }

    #[test]
    fn target_display_is_canonical() {
        let a = HintTarget::Ratio {
            target_ratio: 10.0,
            tolerance: 0.1,
        };
        assert_eq!(a.to_string(), "ratio:1.000000e1:1.000000e-1");
        assert_eq!(HintTarget::MinPsnr(60.0).to_string(), "psnr:6.000000e1");
        // Same objective, same string — the tuning-cache key depends on it.
        let b = HintTarget::Ratio {
            target_ratio: 10.0,
            tolerance: 0.1,
        };
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn last_converged_learns_only_from_hits() {
        let d = dataset();
        let q = query(&d);
        let slot = LastConverged::new(HintSource::WarmStart);
        assert!(slot.predict(&q).is_none());
        slot.observe(&q, 2e-3, false);
        assert!(slot.predict(&q).is_none(), "misses must not be stored");
        slot.observe(&q, 2e-3, true);
        let hint = slot.predict(&q).unwrap();
        assert_eq!(hint.bound, 2e-3);
        assert_eq!(hint.source, HintSource::WarmStart);
        assert!(hint.converged);
    }

    #[test]
    fn chain_takes_first_hint_and_fans_out_observations() {
        let d = dataset();
        let q = query(&d);
        let a = Arc::new(LastConverged::new(HintSource::PreviousStep));
        let b = Arc::new(LastConverged::new(HintSource::TuneCache));
        b.store(5e-4);
        let chain = PredictorChain::new(vec![a.clone(), b.clone()]);
        // `a` is empty, so `b`'s hint surfaces.
        assert_eq!(chain.predict(&q).unwrap().source, HintSource::TuneCache);
        // Once `a` converges it shadows `b` on predict, but both observe.
        chain.observe(&q, 3e-4, true);
        assert_eq!(a.bound(), Some(3e-4));
        assert_eq!(b.bound(), Some(3e-4));
        assert_eq!(chain.predict(&q).unwrap().source, HintSource::PreviousStep);
        assert!(PredictorChain::new(Vec::new()).is_empty());
    }
}
