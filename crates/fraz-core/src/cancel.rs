//! Cooperative cancellation and deadlines for long-running searches.
//!
//! A FRaZ tune is an iterative race of compressor invocations — exactly the
//! kind of work a service must be able to stop *mid-flight* when a client's
//! deadline passes or the daemon starts draining.  [`CancelToken`] is the
//! hook: cheap to clone and share, checked cooperatively between objective
//! evaluations by [`FixedRatioSearch`](crate::FixedRatioSearch) and
//! [`FixedQualitySearch`](crate::FixedQualitySearch), so a cancelled search
//! returns its best-so-far answer (flagged `deadline_hit`) instead of
//! hogging a worker until the budget runs out.
//!
//! The token never interrupts an evaluation that has already started — a
//! single compressor call is the atom of work — so cancellation latency is
//! bounded by one evaluation, not by the whole search.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation flag with an optional deadline.
///
/// `is_cancelled` is true once [`cancel`](CancelToken::cancel) has been
/// called *or* the deadline has passed; both are sticky.  Clones share one
/// flag.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels explicitly (no deadline).
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A token that auto-cancels at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline))
    }

    /// A token that auto-cancels `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::build(Some(Instant::now() + timeout))
    }

    fn build(deadline: Option<Instant>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Raise the flag explicitly (idempotent).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once cancelled explicitly or past the deadline.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later checks skip the clock read.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// Time left before the deadline (`None` when the token has no
    /// deadline; zero once it passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(token.remaining().is_none());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let token = CancelToken::with_timeout(Duration::from_millis(10));
        assert!(token.remaining().is_some());
        std::thread::sleep(Duration::from_millis(25));
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_is_not_cancelled() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().unwrap() > Duration::from_secs(3000));
        assert!(token.deadline().is_some());
    }
}
