//! The FRaZ loss function (paper §V-B2).
//!
//! FRaZ turns "hit a target compression ratio" into a scalar minimization
//! problem: for an error-bound setting `e` with achieved ratio `ρr(D, e)`,
//! the loss is the *clamped squared distance*
//!
//! ```text
//! l(e) = min( (ρr(D, e) − ρt)² , γ )
//! ```
//!
//! The clamp `γ` (80 % of `f64::MAX` in the paper, to both give the function
//! a finite maximum and avoid a Dlib crash) caps the loss for wildly wrong
//! ratios; the early-termination cutoff accepts any evaluation whose loss
//! falls inside `[0, ε²·ρt²]`, i.e. whose ratio lands within the user's
//! acceptable region `[ρt(1−ε), ρt(1+ε)]`.

/// Clamp value: 80 % of the largest representable double, as in the paper.
pub const DEFAULT_GAMMA: f64 = f64::MAX * 0.8;

/// The clamped-square loss for a fixed target ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioLoss {
    /// Target compression ratio `ρt`.
    pub target_ratio: f64,
    /// Acceptable relative error `ε`.
    pub tolerance: f64,
    /// Clamp value `γ`.
    pub gamma: f64,
}

impl RatioLoss {
    /// Loss for the given target ratio and tolerance, with the default clamp.
    pub fn new(target_ratio: f64, tolerance: f64) -> Self {
        Self {
            target_ratio,
            tolerance,
            gamma: DEFAULT_GAMMA,
        }
    }

    /// Evaluate `l(e)` from an achieved compression ratio.
    #[inline]
    pub fn loss(&self, achieved_ratio: f64) -> f64 {
        if !achieved_ratio.is_finite() {
            return self.gamma;
        }
        let d = achieved_ratio - self.target_ratio;
        (d * d).min(self.gamma)
    }

    /// The early-termination cutoff `ε²·ρt²`: any loss at or below this value
    /// corresponds to a ratio inside the acceptable region.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        (self.tolerance * self.target_ratio).powi(2)
    }

    /// True when the achieved ratio falls inside
    /// `[ρt(1−ε), ρt(1+ε)]` (Equation 1 of the paper).
    #[inline]
    pub fn is_acceptable(&self, achieved_ratio: f64) -> bool {
        achieved_ratio.is_finite()
            && achieved_ratio >= self.target_ratio * (1.0 - self.tolerance)
            && achieved_ratio <= self.target_ratio * (1.0 + self.tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_is_squared_distance_near_target() {
        let l = RatioLoss::new(10.0, 0.1);
        assert_eq!(l.loss(10.0), 0.0);
        assert_eq!(l.loss(12.0), 4.0);
        assert_eq!(l.loss(8.0), 4.0);
        assert_eq!(l.loss(7.0), l.loss(13.0));
    }

    #[test]
    fn loss_is_clamped_at_gamma() {
        let l = RatioLoss {
            target_ratio: 10.0,
            tolerance: 0.1,
            gamma: 100.0,
        };
        assert_eq!(l.loss(1000.0), 100.0);
        assert_eq!(l.loss(f64::INFINITY), 100.0);
        assert_eq!(l.loss(f64::NAN), 100.0);
    }

    #[test]
    fn default_gamma_is_finite_and_huge() {
        let l = RatioLoss::new(50.0, 0.05);
        assert!(l.gamma.is_finite());
        assert!(l.loss(1e200) <= l.gamma);
    }

    #[test]
    fn cutoff_matches_acceptance_region() {
        let l = RatioLoss::new(20.0, 0.1);
        assert_eq!(l.cutoff(), 4.0);
        // A ratio exactly at the edge of the acceptable region has loss equal
        // to the cutoff.
        assert!((l.loss(22.0) - l.cutoff()).abs() < 1e-9);
        assert!((l.loss(18.0) - l.cutoff()).abs() < 1e-9);
        // Inside the region: loss below cutoff and acceptable.
        assert!(l.loss(21.0) < l.cutoff());
        assert!(l.is_acceptable(21.0));
        assert!(l.is_acceptable(18.0));
        // Outside: loss above cutoff and not acceptable.
        assert!(l.loss(25.0) > l.cutoff());
        assert!(!l.is_acceptable(25.0));
        assert!(!l.is_acceptable(f64::NAN));
    }

    #[test]
    fn acceptance_is_consistent_with_loss_cutoff() {
        let l = RatioLoss::new(15.0, 0.2);
        for ratio in [1.0, 11.9, 12.0, 12.1, 15.0, 17.9, 18.0, 18.1, 100.0] {
            let by_region = l.is_acceptable(ratio);
            let by_loss = l.loss(ratio) <= l.cutoff() + 1e-12;
            assert_eq!(by_region, by_loss, "ratio {ratio}");
        }
    }
}
