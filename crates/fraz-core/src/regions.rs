//! Error-bound range splitting (paper Fig. 5).
//!
//! The parallel orchestrator divides the `[lower, upper]` error-bound range
//! into `k` slightly overlapping regions and searches them concurrently.  The
//! overlap (a small fixed percentage of the region width, 10 % by default)
//! avoids the pathological case where the target bound coincides with a
//! region border and the owning rank lacks interior points for quadratic
//! refinement.  Regions can be laid out on a linear or a logarithmic axis;
//! the logarithmic layout is an implementation refinement (error bounds span
//! many decades) and is ablated in the benchmark suite.

use serde::{Deserialize, Serialize};

/// How the error-bound axis is partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundScale {
    /// Equal-width regions on the raw bound axis (the paper's layout).
    Linear,
    /// Equal-width regions on the log10(bound) axis; better suited to bounds
    /// spanning several orders of magnitude.
    Log,
}

/// One search region `[lower, upper]` of the error-bound axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region lower bound.
    pub lower: f64,
    /// Region upper bound.
    pub upper: f64,
}

impl Region {
    /// Width of the region.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// True if the value lies inside the region.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

/// Split `[lower, upper]` into `k` regions overlapping by `overlap` (a
/// fraction of the region width, e.g. 0.1 for 10 %).  The first and last
/// regions are clamped to the overall range, so the union is exactly
/// `[lower, upper]`.
pub fn make_error_bounds(
    lower: f64,
    upper: f64,
    k: usize,
    overlap: f64,
    scale: BoundScale,
) -> Vec<Region> {
    assert!(
        lower.is_finite() && upper.is_finite() && lower < upper,
        "invalid bound range [{lower}, {upper}]"
    );
    assert!(k >= 1, "at least one region is required");
    assert!((0.0..0.5).contains(&overlap), "overlap must be in [0, 0.5)");

    let (lo, hi, back): (f64, f64, fn(f64) -> f64) = match scale {
        BoundScale::Linear => (lower, upper, |x| x),
        BoundScale::Log => {
            assert!(
                lower > 0.0,
                "log-scale regions require a positive lower bound"
            );
            (lower.log10(), upper.log10(), |x| 10f64.powf(x))
        }
    };
    let width = (hi - lo) / k as f64;
    let pad = width * overlap;
    let mut regions = Vec::with_capacity(k);
    for i in 0..k {
        let a = (lo + i as f64 * width - pad).max(lo);
        let b = (lo + (i + 1) as f64 * width + pad).min(hi);
        let (mut a, mut b) = (back(a), back(b));
        // Guard against floating-point drift producing inverted or outside
        // ranges after the inverse transform.
        a = a.max(lower);
        b = b.min(upper);
        if b <= a {
            b = (a + (upper - lower) * 1e-12).min(upper);
        }
        regions.push(Region { lower: a, upper: b });
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_regions_cover_range_and_overlap() {
        let regions = make_error_bounds(0.0, 1.2, 12, 0.1, BoundScale::Linear);
        assert_eq!(regions.len(), 12);
        assert_eq!(regions[0].lower, 0.0);
        assert_eq!(regions.last().unwrap().upper, 1.2);
        // Interior neighbours overlap.
        for w in regions.windows(2) {
            assert!(w[0].upper > w[1].lower, "{w:?}");
        }
        // End regions are slightly smaller (clamped), as Fig. 5 notes.
        assert!(regions[0].width() < regions[1].width());
        // Every point of the range is inside at least one region.
        for i in 0..=100 {
            let x = 1.2 * i as f64 / 100.0;
            assert!(regions.iter().any(|r| r.contains(x)), "{x}");
        }
    }

    #[test]
    fn log_regions_cover_decades() {
        let regions = make_error_bounds(1e-9, 1.0, 9, 0.1, BoundScale::Log);
        assert_eq!(regions.len(), 9);
        assert!((regions[0].lower - 1e-9).abs() < 1e-18);
        assert!((regions.last().unwrap().upper - 1.0).abs() < 1e-12);
        // Each region spans roughly one decade.
        for r in &regions {
            let decades = (r.upper / r.lower).log10();
            assert!(decades > 0.9 && decades < 1.5, "{decades}");
        }
        for exp in -9..=0 {
            let x = 10f64.powi(exp);
            assert!(regions.iter().any(|r| r.contains(x)), "1e{exp}");
        }
    }

    #[test]
    fn single_region_is_the_whole_range() {
        let regions = make_error_bounds(0.5, 2.0, 1, 0.1, BoundScale::Linear);
        assert_eq!(regions.len(), 1);
        assert_eq!(
            regions[0],
            Region {
                lower: 0.5,
                upper: 2.0
            }
        );
    }

    #[test]
    fn zero_overlap_produces_contiguous_regions() {
        let regions = make_error_bounds(0.0, 10.0, 5, 0.0, BoundScale::Linear);
        for w in regions.windows(2) {
            assert!((w[0].upper - w[1].lower).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid bound range")]
    fn inverted_range_panics() {
        let _ = make_error_bounds(1.0, 0.5, 4, 0.1, BoundScale::Linear);
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn log_scale_with_zero_lower_panics() {
        let _ = make_error_bounds(0.0, 1.0, 4, 0.1, BoundScale::Log);
    }
}
