//! Fixed-*quality* search — the paper's first future-work item (§VII).
//!
//! FRaZ's conclusion asks for "arbitrary user error bounds … that correspond
//! with the quality of a scientist's analysis result", citing work that
//! prescribes a minimum SSIM for valid climate analyses.  This module
//! generalizes the fixed-ratio machinery to that setting: instead of a target
//! compression ratio, the user states a target value of a *quality metric*
//! (PSNR, SSIM, or a bound on the RMSE/maximum error) and FRaZ searches the
//! error-bound space for the setting that **maximizes compression while still
//! meeting the quality target**.
//!
//! Unlike the ratio objective, quality metrics are (noisily) monotone in the
//! error bound, so a different search strategy is appropriate: the search
//! brackets the constraint boundary with a coarse logarithmic sweep and then
//! bisects it, keeping the most compressive setting that still satisfies the
//! constraint.  (The ratio search's MaxLIPO machinery is unnecessary here —
//! there is no spiky multi-modal landscape to escape.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::{registry, BoundKind, CompressionOutcome, Compressor};

use crate::cancel::CancelToken;
use crate::hint::{BoundPredictor, HintQuery, HintReport, HintSource, HintTarget, SearchHint};
use crate::regions::BoundScale;

/// The quality metric a [`FixedQualitySearch`] constrains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Peak signal-to-noise ratio in dB; the constraint is `psnr >= target`.
    PsnrAtLeast(f64),
    /// Mean SSIM over the central slice; the constraint is `ssim >= target`.
    SsimAtLeast(f64),
    /// Root-mean-square error; the constraint is `rmse <= target`.
    RmseAtMost(f64),
    /// Maximum pointwise error; the constraint is `max_error <= target`.
    MaxErrorAtMost(f64),
}

impl QualityMetric {
    /// True when the measured quality report satisfies the constraint.
    pub fn is_satisfied(&self, quality: &fraz_metrics::QualityReport) -> bool {
        match *self {
            QualityMetric::PsnrAtLeast(target) => quality.psnr >= target,
            QualityMetric::SsimAtLeast(target) => quality.ssim >= target,
            QualityMetric::RmseAtMost(target) => quality.rmse <= target,
            QualityMetric::MaxErrorAtMost(target) => quality.max_abs_error <= target,
        }
    }

    /// A human-readable description of the constraint.
    pub fn describe(&self) -> String {
        match *self {
            QualityMetric::PsnrAtLeast(t) => format!("PSNR >= {t} dB"),
            QualityMetric::SsimAtLeast(t) => format!("SSIM >= {t}"),
            QualityMetric::RmseAtMost(t) => format!("RMSE <= {t}"),
            QualityMetric::MaxErrorAtMost(t) => format!("max error <= {t}"),
        }
    }
}

/// Configuration of a fixed-quality search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitySearchConfig {
    /// The quality constraint to honour.
    pub metric: QualityMetric,
    /// Maximum objective evaluations (each is a compress + decompress +
    /// measure round, so noticeably more expensive than a ratio evaluation).
    pub max_iterations: usize,
    /// Layout of the search on the error-bound axis.
    pub scale: BoundScale,
    /// Stop early once an acceptable setting whose ratio is within
    /// `improvement_tolerance` (relative) of the best seen so far has been
    /// stable for `patience` evaluations.  Smaller = more thorough.
    pub improvement_tolerance: f64,
    /// Maximum allowed error bound (the same `U` as the ratio search).
    pub max_error_bound: Option<f64>,
    /// Seed the search from the codec's closed-form PSNR↔bound model when
    /// its descriptor declares one (see [`fraz_pressio::PsnrBoundModel`]);
    /// codecs without a model bracket as before.  On by default.
    pub analytic_seed: bool,
}

impl QualitySearchConfig {
    /// A search for the given quality constraint with sensible defaults.
    pub fn new(metric: QualityMetric) -> Self {
        Self {
            metric,
            max_iterations: 24,
            scale: BoundScale::Log,
            improvement_tolerance: 0.02,
            max_error_bound: None,
            analytic_seed: true,
        }
    }
}

/// Result of a fixed-quality search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitySearchOutcome {
    /// Recommended error-bound setting.
    pub error_bound: f64,
    /// The outcome at that setting (always includes the quality report).
    pub best: CompressionOutcome,
    /// True when at least one evaluated setting satisfied the constraint.
    pub satisfiable: bool,
    /// Number of compress+measure rounds performed.
    pub evaluations: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// What the search did with its seeding hint (`None` on cold runs).
    pub hint: Option<HintReport>,
    /// True when a [`CancelToken`] stopped the search early (deadline or
    /// explicit cancel): `best` is then the best-so-far acceptable setting,
    /// not the boundary-polished one.
    pub deadline_hit: bool,
}

/// Searches for the most compressive error bound that still satisfies a
/// quality constraint.
pub struct FixedQualitySearch {
    compressor: Arc<dyn Compressor>,
    config: QualitySearchConfig,
    pool: Option<Arc<Pool>>,
    codec_config: String,
    cancel: Option<CancelToken>,
}

impl FixedQualitySearch {
    /// Create a search driver over the given compressor backend (owned box
    /// or shared handle).
    ///
    /// The phase-1 bracketing sweep runs its (independent) evaluations as
    /// tasks on the process-wide [`fraz_pool::global`] pool unless
    /// [`with_pool`](Self::with_pool) installs a shared one; no call to
    /// [`run`](Self::run) ever spawns an OS thread.
    pub fn new(compressor: impl Into<Arc<dyn Compressor>>, config: QualitySearchConfig) -> Self {
        Self {
            compressor: compressor.into(),
            config,
            pool: None,
            codec_config: String::new(),
            cancel: None,
        }
    }

    /// Cooperatively stop the search when `token` fires (deadline passed or
    /// explicit cancel).  Checked between compress+measure rounds only, so
    /// cancellation latency is bounded by one evaluation and the outcome is
    /// the best-so-far acceptable setting with `deadline_hit: true`.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Record the canonical codec-options signature
    /// ([`fraz_pressio::Options::signature`]) carried in every
    /// [`HintQuery`], so predictors can key on the exact configuration.
    pub fn with_codec_config(mut self, codec_config: impl Into<String>) -> Self {
        self.codec_config = codec_config.into();
        self
    }

    /// Run the sweep evaluations on `pool` instead of the global pool.  The
    /// CLI runner uses this to put quality searches on the same shared
    /// work-stealing pool as the orchestrator's ratio fields.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Borrow the underlying compressor.
    pub fn compressor(&self) -> &dyn Compressor {
        self.compressor.as_ref()
    }

    /// Run the search on one dataset.
    ///
    /// When [`QualitySearchConfig::analytic_seed`] is set (the default) and
    /// the codec's descriptor declares a model covering the metric, the
    /// search starts from that analytic first guess (see
    /// [`analytic_hint`](Self::analytic_hint)) instead of the log-spaced
    /// sweep.
    pub fn run(&self, dataset: &Dataset) -> QualitySearchOutcome {
        let analytic = if self.config.analytic_seed {
            self.analytic_hint(dataset)
        } else {
            None
        };
        self.run_with_hint(dataset, analytic.as_ref())
    }

    /// Ask `predictor` for a seed (falling back to the analytic model when
    /// it declines), run the search, and close the loop through
    /// [`BoundPredictor::observe`].
    pub fn run_with_predictor(
        &self,
        dataset: &Dataset,
        predictor: &dyn BoundPredictor,
    ) -> QualitySearchOutcome {
        let query = self.hint_query(dataset);
        let hint = predictor
            .predict(&query)
            .filter(SearchHint::is_valid)
            .or_else(|| {
                if self.config.analytic_seed {
                    self.analytic_hint(dataset)
                } else {
                    None
                }
            });
        let outcome = self.run_with_hint(dataset, hint.as_ref());
        predictor.observe(&query, outcome.error_bound, outcome.satisfiable);
        outcome
    }

    /// The predictor-facing description of this search over `dataset`.
    pub fn hint_query<'a>(&'a self, dataset: &'a Dataset) -> HintQuery<'a> {
        HintQuery {
            dataset,
            codec: self.compressor.name(),
            codec_config: &self.codec_config,
            target: self.hint_target(),
        }
    }

    fn hint_target(&self) -> HintTarget {
        match self.config.metric {
            QualityMetric::PsnrAtLeast(t) => HintTarget::MinPsnr(t),
            QualityMetric::SsimAtLeast(t) => HintTarget::MinSsim(t),
            QualityMetric::RmseAtMost(t) => HintTarget::MaxRmse(t),
            QualityMetric::MaxErrorAtMost(t) => HintTarget::MaxError(t),
        }
    }

    /// The analytic first guess for this search, when the codec's registry
    /// descriptor covers the metric:
    ///
    /// * PSNR targets invert the descriptor's
    ///   [`PsnrBoundModel`](fraz_pressio::PsnrBoundModel);
    /// * RMSE targets use the same uniform-quantization assumption
    ///   (`rmse = e/√3` ⇒ `e = √3·rmse`);
    /// * max-error targets on pointwise-guaranteed codecs *are* the answer
    ///   (bound = target), so the hint is marked converged;
    /// * SSIM has no closed form — `None`, bracket cold.
    pub fn analytic_hint(&self, dataset: &Dataset) -> Option<SearchHint> {
        let descriptor = registry::describe(self.compressor.name())?;
        let hint = match self.config.metric {
            QualityMetric::PsnrAtLeast(target) => {
                let range = dataset.stats().value_range();
                let bound = descriptor.psnr_model?.bound_for_psnr(range, target)?;
                SearchHint::seed(bound, HintSource::Analytic)
                    .with_bracket(bound / 16.0, bound * 16.0)
            }
            QualityMetric::RmseAtMost(target) => {
                descriptor.psnr_model?;
                let bound = 3f64.sqrt() * target;
                SearchHint::seed(bound, HintSource::Analytic)
                    .with_bracket(bound / 16.0, bound * 16.0)
            }
            QualityMetric::MaxErrorAtMost(target) => {
                if !matches!(
                    descriptor.bound_kind,
                    BoundKind::AbsoluteError | BoundKind::AccuracyTolerance
                ) {
                    return None;
                }
                SearchHint::converged(target, HintSource::Analytic)
            }
            QualityMetric::SsimAtLeast(_) => return None,
        };
        hint.is_valid().then_some(hint)
    }

    /// Run the search seeded by `hint` (cold when `None`).
    ///
    /// A converged hint that verifies is accepted outright at one
    /// evaluation.  Any other usable hint replaces the coarse sweep with a
    /// geometric expansion from the probed point, and the usual bisection
    /// polishes the bracket either way.
    pub fn run_with_hint(
        &self,
        dataset: &Dataset,
        hint: Option<&SearchHint>,
    ) -> QualitySearchOutcome {
        let start = Instant::now();
        let (mut lower, mut upper) = self.compressor.bound_range(dataset);
        if let Some(u) = self.config.max_error_bound {
            if u > lower {
                upper = upper.min(u);
            }
        }
        let hint = hint.filter(|h| h.is_valid());
        if let Some((blo, bhi)) = hint.and_then(|h| h.bracket) {
            // A hint bracket narrows the axis the fallback explores.
            let (nlo, nhi) = (lower.max(blo), upper.min(bhi));
            if nlo < nhi {
                lower = nlo;
                upper = nhi;
            }
        }
        let lower = lower;
        let upper = upper.max(lower * (1.0 + 1e-9));

        // Work on a log axis when requested (bounds span decades).
        let to_x = |bound: f64| match self.config.scale {
            BoundScale::Linear => bound,
            BoundScale::Log => bound.log10(),
        };
        let from_x = |x: f64| match self.config.scale {
            BoundScale::Linear => x,
            BoundScale::Log => 10f64.powf(x),
        };

        let (xlo, xhi) = (to_x(lower), to_x(upper));
        let mut evaluations = 0usize;
        let mut best_acceptable: Option<(f64, CompressionOutcome)> = None;

        // One compress + decompress + measure round at axis position `x`,
        // folded into the best-acceptable tracker.
        let evaluate = |x: f64,
                        best: &mut Option<(f64, CompressionOutcome)>,
                        evaluations: &mut usize|
         -> Option<bool> {
            if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                // `None` is the caller-side break signal for every loop
                // (expansion, bisection), so a fired token stops the search
                // without another compressor round.
                return None;
            }
            let bound = from_x(x).clamp(lower, upper);
            *evaluations += 1;
            match self.compressor.evaluate(dataset, bound, true) {
                Ok(outcome) => {
                    let quality = outcome.quality.as_ref().expect("quality requested");
                    let ok = self.config.metric.is_satisfied(quality);
                    if ok {
                        let better = match best {
                            None => true,
                            Some((_, b)) => outcome.compression_ratio > b.compression_ratio,
                        };
                        if better {
                            *best = Some((bound, outcome));
                        }
                    }
                    Some(ok)
                }
                Err(_) => None,
            }
        };

        // Hinted phase: probe the hint.  A converged hint that verifies is
        // final (the probe *is* the verify pass); otherwise the probe
        // anchors a geometric expansion along the axis that brackets the
        // constraint boundary without the coarse sweep.
        let mut hint_report: Option<HintReport> = None;
        let mut bracket: Option<(f64, f64)> = None;
        let mut need_sweep = true;
        if let Some(h) = hint {
            let hx = to_x(h.bound.clamp(lower, upper));
            match evaluate(hx, &mut best_acceptable, &mut evaluations) {
                Some(ok0) => {
                    if h.converged && ok0 {
                        let (bound, best) = best_acceptable.expect("satisfied probe is stored");
                        return QualitySearchOutcome {
                            error_bound: bound,
                            best,
                            satisfiable: true,
                            evaluations,
                            elapsed: start.elapsed(),
                            hint: Some(HintReport {
                                source: h.source,
                                bound: h.bound,
                                hit: true,
                                probes: evaluations,
                            }),
                            deadline_hit: false,
                        };
                    }
                    need_sweep = false;
                    let expansion_budget = (self.config.max_iterations / 2).max(2);
                    let mut step = (xhi - xlo).abs() / 8.0;
                    if step <= 0.0 {
                        step = 1.0;
                    }
                    if ok0 {
                        // Constraint holds at the probe: the boundary (and
                        // better compression) lies above.
                        let mut ok_x = hx;
                        while evaluations < expansion_budget && ok_x < xhi {
                            let next = (ok_x + step).min(xhi);
                            step *= 2.0;
                            match evaluate(next, &mut best_acceptable, &mut evaluations) {
                                Some(true) => ok_x = next,
                                Some(false) => {
                                    bracket = Some((ok_x, next));
                                    break;
                                }
                                None => break,
                            }
                        }
                    } else {
                        // Constraint violated at the probe: walk down until
                        // it holds (or the axis runs out).
                        let mut bad_x = hx;
                        while evaluations < expansion_budget && bad_x > xlo {
                            let next = (bad_x - step).max(xlo);
                            step *= 2.0;
                            match evaluate(next, &mut best_acceptable, &mut evaluations) {
                                Some(true) => {
                                    bracket = Some((next, bad_x));
                                    break;
                                }
                                Some(false) => bad_x = next,
                                None => break,
                            }
                        }
                    }
                    hint_report = Some(HintReport {
                        source: h.source,
                        bound: h.bound,
                        hit: ok0,
                        probes: evaluations,
                    });
                }
                None => {
                    // The probe itself failed to compress: report the miss
                    // and bracket cold.
                    hint_report = Some(HintReport {
                        source: h.source,
                        bound: h.bound,
                        hit: false,
                        probes: evaluations,
                    });
                }
            }
        }

        if need_sweep {
            // Phase 1 (cold): coarse sweep to bracket the constraint
            // boundary.  The quality degrades (noisily) as the bound grows,
            // so the boundary is the largest bound that still satisfies the
            // constraint.  The sweep points are independent, so each
            // compress + decompress + measure round runs as a task on the
            // shared work-stealing pool, writing into its own slot; the fold
            // below stays in sweep order, so the outcome is identical to a
            // serial sweep.
            let sweep_points = (self.config.max_iterations / 2).clamp(4, 12);
            let sweep_xs: Vec<f64> = (0..sweep_points)
                .map(|i| xlo + (xhi - xlo) * i as f64 / (sweep_points - 1) as f64)
                .collect();
            let mut sweep_results: Vec<Option<(f64, bool, CompressionOutcome)>> =
                vec![None; sweep_points];
            // Tasks a fired cancel token skips are not compressor
            // invocations; count only the rounds that actually ran.
            let sweep_ran = AtomicUsize::new(0);
            {
                let pool: &Pool = match &self.pool {
                    Some(pool) => pool,
                    None => fraz_pool::global(),
                };
                pool.scope(|scope| {
                    let from_x = &from_x;
                    let sweep_ran = &sweep_ran;
                    for (slot, &x) in sweep_results.iter_mut().zip(&sweep_xs) {
                        scope.spawn(move || {
                            if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                                return;
                            }
                            sweep_ran.fetch_add(1, Ordering::Relaxed);
                            let bound = from_x(x).clamp(lower, upper);
                            if let Ok(outcome) = self.compressor.evaluate(dataset, bound, true) {
                                let quality = outcome.quality.as_ref().expect("quality requested");
                                let ok = self.config.metric.is_satisfied(quality);
                                *slot = Some((bound, ok, outcome));
                            }
                        });
                    }
                });
            }

            // Fold the sweep in order: track the best acceptable evaluation
            // (highest ratio among those satisfying the constraint) and the
            // bracket around the constraint boundary.
            evaluations += sweep_ran.load(Ordering::Relaxed);
            let mut last_ok: Option<f64> = None;
            let mut first_bad: Option<f64> = None;
            for (&x, result) in sweep_xs.iter().zip(sweep_results.into_iter()) {
                match result {
                    Some((bound, true, outcome)) => {
                        last_ok = Some(x);
                        let better = match &best_acceptable {
                            None => true,
                            Some((_, b)) => outcome.compression_ratio > b.compression_ratio,
                        };
                        if better {
                            best_acceptable = Some((bound, outcome));
                        }
                    }
                    Some((_, false, _)) => {
                        if last_ok.is_some() && first_bad.is_none() {
                            first_bad = Some(x);
                        }
                    }
                    None => {}
                }
            }
            if let (Some(ok_x), Some(bad_x)) = (last_ok, first_bad) {
                bracket = Some((ok_x, bad_x));
            }
        }

        // Phase 2: bisect between the last satisfying and the first violating
        // bound to squeeze out the remaining compression.  Each probe depends
        // on the previous verdict, so this phase is inherently serial.
        let remaining = self.config.max_iterations.saturating_sub(evaluations);
        if let Some((mut ok_x, mut bad_x)) = bracket {
            for _ in 0..remaining {
                if (bad_x - ok_x).abs() <= self.config.improvement_tolerance * (xhi - xlo).abs() {
                    break;
                }
                let mid = 0.5 * (ok_x + bad_x);
                match evaluate(mid, &mut best_acceptable, &mut evaluations) {
                    Some(true) => ok_x = mid,
                    Some(false) => bad_x = mid,
                    None => break,
                }
            }
        }

        let deadline_hit = self.cancel.as_ref().is_some_and(|t| t.is_cancelled());
        match best_acceptable {
            Some((bound, outcome)) => QualitySearchOutcome {
                error_bound: bound,
                best: outcome,
                satisfiable: true,
                evaluations,
                elapsed: start.elapsed(),
                hint: hint_report,
                deadline_hit,
            },
            None => {
                // Nothing satisfied the constraint: fall back to the
                // smallest bound (highest fidelity the compressor offers).
                let fallback =
                    self.compressor
                        .evaluate(dataset, lower, true)
                        .unwrap_or(CompressionOutcome {
                            compressor: self.compressor.name().to_string(),
                            error_bound: lower,
                            compression_ratio: 0.0,
                            bit_rate: 0.0,
                            compressed_bytes: 0,
                            original_bytes: dataset.byte_size(),
                            quality: None,
                        });
                QualitySearchOutcome {
                    error_bound: lower,
                    best: fallback,
                    satisfiable: false,
                    evaluations,
                    elapsed: start.elapsed(),
                    hint: hint_report,
                    deadline_hit,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::synthetic;
    use fraz_pressio::registry;

    fn dataset() -> Dataset {
        synthetic::hurricane(8, 20, 20, 1, 77).field("TCf", 0)
    }

    #[test]
    fn metric_satisfaction_logic() {
        let report = fraz_metrics::QualityReport {
            compression_ratio: 10.0,
            bit_rate: 3.2,
            max_abs_error: 0.5,
            rmse: 0.1,
            psnr: 60.0,
            ssim: 0.95,
            acf_error: 0.2,
            num_points: 100,
            original_bytes: 400,
            compressed_bytes: 40,
        };
        assert!(QualityMetric::PsnrAtLeast(50.0).is_satisfied(&report));
        assert!(!QualityMetric::PsnrAtLeast(70.0).is_satisfied(&report));
        assert!(QualityMetric::SsimAtLeast(0.9).is_satisfied(&report));
        assert!(!QualityMetric::SsimAtLeast(0.99).is_satisfied(&report));
        assert!(QualityMetric::RmseAtMost(0.2).is_satisfied(&report));
        assert!(!QualityMetric::RmseAtMost(0.05).is_satisfied(&report));
        assert!(QualityMetric::MaxErrorAtMost(1.0).is_satisfied(&report));
        assert!(!QualityMetric::MaxErrorAtMost(0.1).is_satisfied(&report));
        assert!(QualityMetric::PsnrAtLeast(50.0).describe().contains("PSNR"));
    }

    #[test]
    fn psnr_target_is_met_and_ratio_is_maximized() {
        let d = dataset();
        let config = QualitySearchConfig {
            max_iterations: 20,
            ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(60.0))
        };
        let search = FixedQualitySearch::new(registry::build_default("sz").unwrap(), config);
        let outcome = search.run(&d);
        assert!(outcome.satisfiable);
        let quality = outcome.best.quality.as_ref().unwrap();
        assert!(quality.psnr >= 60.0, "psnr {}", quality.psnr);
        // The point of the search: it should compress much better than the
        // most conservative setting while still meeting the target.
        let conservative = search
            .compressor()
            .evaluate(&d, search.compressor().bound_range(&d).0, false)
            .unwrap();
        assert!(outcome.best.compression_ratio > conservative.compression_ratio);
    }

    #[test]
    fn stricter_targets_give_lower_ratios() {
        let d = dataset();
        let run = |psnr: f64| {
            let config = QualitySearchConfig {
                max_iterations: 20,
                ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(psnr))
            };
            FixedQualitySearch::new(registry::build_default("sz").unwrap(), config).run(&d)
        };
        let loose = run(40.0);
        let strict = run(90.0);
        assert!(loose.satisfiable && strict.satisfiable);
        assert!(
            loose.best.compression_ratio >= strict.best.compression_ratio,
            "loose {} vs strict {}",
            loose.best.compression_ratio,
            strict.best.compression_ratio
        );
        assert!(strict.best.quality.as_ref().unwrap().psnr >= 90.0);
    }

    #[test]
    fn analytic_seed_reduces_evaluations_and_still_meets_target() {
        let d = dataset();
        let run = |codec: &str, seed: bool| {
            let config = QualitySearchConfig {
                max_iterations: 20,
                analytic_seed: seed,
                ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(60.0))
            };
            FixedQualitySearch::new(registry::build_default(codec).unwrap(), config).run(&d)
        };
        for codec in ["sz", "szx"] {
            let cold = run(codec, false);
            let seeded = run(codec, true);
            assert!(cold.hint.is_none(), "{codec}: cold runs carry no hint");
            let report = seeded
                .hint
                .expect("sz-family descriptors declare a psnr model");
            assert_eq!(report.source, HintSource::Analytic);
            assert!(seeded.satisfiable);
            assert!(seeded.best.quality.as_ref().unwrap().psnr >= 60.0);
            assert!(
                seeded.evaluations < cold.evaluations,
                "{codec}: seeded {} vs cold {}",
                seeded.evaluations,
                cold.evaluations
            );
        }
        // ZFP declares no model: run() stays cold and unhinted.
        let zfp = run("zfp", true);
        assert!(zfp.hint.is_none());
        assert!(zfp.satisfiable);
    }

    #[test]
    fn max_error_target_on_pointwise_codec_accepts_in_one_evaluation() {
        let d = dataset();
        let ceiling = d.stats().value_range() * 1e-3;
        let config = QualitySearchConfig {
            max_iterations: 16,
            ..QualitySearchConfig::new(QualityMetric::MaxErrorAtMost(ceiling))
        };
        let outcome =
            FixedQualitySearch::new(registry::build_default("sz").unwrap(), config).run(&d);
        // bound = target IS the answer for an absolute-error codec, so the
        // analytic hint is converged and the probe verifies it outright.
        assert!(outcome.satisfiable);
        assert_eq!(outcome.evaluations, 1);
        let report = outcome.hint.unwrap();
        assert!(report.hit);
        assert_eq!(report.source, HintSource::Analytic);
        assert!(outcome.best.quality.as_ref().unwrap().max_abs_error <= ceiling);
    }

    #[test]
    fn impossible_target_reports_unsatisfiable() {
        let d = dataset();
        // SSIM cannot exceed 1, so this constraint is unsatisfiable by
        // construction (a tiny error bound can reach infinite PSNR, so a
        // PSNR target would not work for this test).
        let config = QualitySearchConfig {
            max_iterations: 8,
            ..QualitySearchConfig::new(QualityMetric::SsimAtLeast(1.5))
        };
        let outcome =
            FixedQualitySearch::new(registry::build_default("sz").unwrap(), config).run(&d);
        assert!(!outcome.satisfiable);
        assert!(outcome.evaluations >= 4);
    }

    #[test]
    fn cancelled_token_flags_the_outcome() {
        let d = dataset();
        let config = QualitySearchConfig {
            max_iterations: 20,
            analytic_seed: false,
            ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(60.0))
        };
        let token = CancelToken::new();
        token.cancel();
        let outcome = FixedQualitySearch::new(registry::build_default("sz").unwrap(), config)
            .with_cancel(token)
            .run(&d);
        assert!(outcome.deadline_hit);
        // A pre-fired token skips every sweep task and bisection round; the
        // only possible spend is the unsatisfiable-fallback measurement.
        assert!(
            !outcome.satisfiable,
            "no evaluation ran, so nothing satisfied"
        );
    }

    #[test]
    fn live_token_does_not_flag_the_outcome() {
        let d = dataset();
        let config = QualitySearchConfig {
            max_iterations: 20,
            ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(60.0))
        };
        let token = CancelToken::with_timeout(std::time::Duration::from_secs(3600));
        let outcome = FixedQualitySearch::new(registry::build_default("sz").unwrap(), config)
            .with_cancel(token)
            .run(&d);
        assert!(outcome.satisfiable);
        assert!(!outcome.deadline_hit);
    }

    #[test]
    fn max_error_constraint_is_respected() {
        let d = dataset();
        let ceiling = d.stats().value_range() * 1e-3;
        let config = QualitySearchConfig {
            max_iterations: 16,
            ..QualitySearchConfig::new(QualityMetric::MaxErrorAtMost(ceiling))
        };
        let outcome =
            FixedQualitySearch::new(registry::build_default("zfp").unwrap(), config).run(&d);
        assert!(outcome.satisfiable);
        assert!(outcome.best.quality.as_ref().unwrap().max_abs_error <= ceiling);
    }
}
