//! Fixed-*quality* search — the paper's first future-work item (§VII).
//!
//! FRaZ's conclusion asks for "arbitrary user error bounds … that correspond
//! with the quality of a scientist's analysis result", citing work that
//! prescribes a minimum SSIM for valid climate analyses.  This module
//! generalizes the fixed-ratio machinery to that setting: instead of a target
//! compression ratio, the user states a target value of a *quality metric*
//! (PSNR, SSIM, or a bound on the RMSE/maximum error) and FRaZ searches the
//! error-bound space for the setting that **maximizes compression while still
//! meeting the quality target**.
//!
//! Unlike the ratio objective, quality metrics are (noisily) monotone in the
//! error bound, so a different search strategy is appropriate: the search
//! brackets the constraint boundary with a coarse logarithmic sweep and then
//! bisects it, keeping the most compressive setting that still satisfies the
//! constraint.  (The ratio search's MaxLIPO machinery is unnecessary here —
//! there is no spiky multi-modal landscape to escape.)

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::{CompressionOutcome, Compressor};

use crate::regions::BoundScale;

/// The quality metric a [`FixedQualitySearch`] constrains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Peak signal-to-noise ratio in dB; the constraint is `psnr >= target`.
    PsnrAtLeast(f64),
    /// Mean SSIM over the central slice; the constraint is `ssim >= target`.
    SsimAtLeast(f64),
    /// Root-mean-square error; the constraint is `rmse <= target`.
    RmseAtMost(f64),
    /// Maximum pointwise error; the constraint is `max_error <= target`.
    MaxErrorAtMost(f64),
}

impl QualityMetric {
    /// True when the measured quality report satisfies the constraint.
    pub fn is_satisfied(&self, quality: &fraz_metrics::QualityReport) -> bool {
        match *self {
            QualityMetric::PsnrAtLeast(target) => quality.psnr >= target,
            QualityMetric::SsimAtLeast(target) => quality.ssim >= target,
            QualityMetric::RmseAtMost(target) => quality.rmse <= target,
            QualityMetric::MaxErrorAtMost(target) => quality.max_abs_error <= target,
        }
    }

    /// A human-readable description of the constraint.
    pub fn describe(&self) -> String {
        match *self {
            QualityMetric::PsnrAtLeast(t) => format!("PSNR >= {t} dB"),
            QualityMetric::SsimAtLeast(t) => format!("SSIM >= {t}"),
            QualityMetric::RmseAtMost(t) => format!("RMSE <= {t}"),
            QualityMetric::MaxErrorAtMost(t) => format!("max error <= {t}"),
        }
    }
}

/// Configuration of a fixed-quality search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitySearchConfig {
    /// The quality constraint to honour.
    pub metric: QualityMetric,
    /// Maximum objective evaluations (each is a compress + decompress +
    /// measure round, so noticeably more expensive than a ratio evaluation).
    pub max_iterations: usize,
    /// Layout of the search on the error-bound axis.
    pub scale: BoundScale,
    /// Stop early once an acceptable setting whose ratio is within
    /// `improvement_tolerance` (relative) of the best seen so far has been
    /// stable for `patience` evaluations.  Smaller = more thorough.
    pub improvement_tolerance: f64,
    /// Maximum allowed error bound (the same `U` as the ratio search).
    pub max_error_bound: Option<f64>,
}

impl QualitySearchConfig {
    /// A search for the given quality constraint with sensible defaults.
    pub fn new(metric: QualityMetric) -> Self {
        Self {
            metric,
            max_iterations: 24,
            scale: BoundScale::Log,
            improvement_tolerance: 0.02,
            max_error_bound: None,
        }
    }
}

/// Result of a fixed-quality search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitySearchOutcome {
    /// Recommended error-bound setting.
    pub error_bound: f64,
    /// The outcome at that setting (always includes the quality report).
    pub best: CompressionOutcome,
    /// True when at least one evaluated setting satisfied the constraint.
    pub satisfiable: bool,
    /// Number of compress+measure rounds performed.
    pub evaluations: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// Searches for the most compressive error bound that still satisfies a
/// quality constraint.
pub struct FixedQualitySearch {
    compressor: Arc<dyn Compressor>,
    config: QualitySearchConfig,
    pool: Option<Arc<Pool>>,
}

impl FixedQualitySearch {
    /// Create a search driver over the given compressor backend (owned box
    /// or shared handle).
    ///
    /// The phase-1 bracketing sweep runs its (independent) evaluations as
    /// tasks on the process-wide [`fraz_pool::global`] pool unless
    /// [`with_pool`](Self::with_pool) installs a shared one; no call to
    /// [`run`](Self::run) ever spawns an OS thread.
    pub fn new(compressor: impl Into<Arc<dyn Compressor>>, config: QualitySearchConfig) -> Self {
        Self {
            compressor: compressor.into(),
            config,
            pool: None,
        }
    }

    /// Run the sweep evaluations on `pool` instead of the global pool.  The
    /// CLI runner uses this to put quality searches on the same shared
    /// work-stealing pool as the orchestrator's ratio fields.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Borrow the underlying compressor.
    pub fn compressor(&self) -> &dyn Compressor {
        self.compressor.as_ref()
    }

    /// Run the search on one dataset.
    pub fn run(&self, dataset: &Dataset) -> QualitySearchOutcome {
        let start = Instant::now();
        let (lower, mut upper) = self.compressor.bound_range(dataset);
        if let Some(u) = self.config.max_error_bound {
            if u > lower {
                upper = upper.min(u);
            }
        }
        let upper = upper.max(lower * (1.0 + 1e-9));

        // Work on a log axis when requested (bounds span decades).
        let to_x = |bound: f64| match self.config.scale {
            BoundScale::Linear => bound,
            BoundScale::Log => bound.log10(),
        };
        let from_x = |x: f64| match self.config.scale {
            BoundScale::Linear => x,
            BoundScale::Log => 10f64.powf(x),
        };

        // Phase 1: coarse sweep to bracket the constraint boundary.  The
        // quality degrades (noisily) as the bound grows, so the boundary is
        // the largest bound that still satisfies the constraint.  The sweep
        // points are independent, so each compress + decompress + measure
        // round runs as a task on the shared work-stealing pool, writing
        // into its own slot; the fold below stays in sweep order, so the
        // outcome is identical to the old serial sweep.
        let sweep_points = (self.config.max_iterations / 2).clamp(4, 12);
        let (xlo, xhi) = (to_x(lower), to_x(upper));
        let sweep_xs: Vec<f64> = (0..sweep_points)
            .map(|i| xlo + (xhi - xlo) * i as f64 / (sweep_points - 1) as f64)
            .collect();
        let mut sweep_results: Vec<Option<(f64, bool, CompressionOutcome)>> =
            vec![None; sweep_points];
        {
            let pool: &Pool = match &self.pool {
                Some(pool) => pool,
                None => fraz_pool::global(),
            };
            pool.scope(|scope| {
                let from_x = &from_x;
                for (slot, &x) in sweep_results.iter_mut().zip(&sweep_xs) {
                    scope.spawn(move || {
                        let bound = from_x(x).clamp(lower, upper);
                        if let Ok(outcome) = self.compressor.evaluate(dataset, bound, true) {
                            let quality = outcome.quality.as_ref().expect("quality requested");
                            let ok = self.config.metric.is_satisfied(quality);
                            *slot = Some((bound, ok, outcome));
                        }
                    });
                }
            });
        }

        // Fold the sweep in order: track the best acceptable evaluation
        // (highest ratio among those satisfying the constraint) and the
        // bracket around the constraint boundary.
        let mut evaluations = sweep_points;
        let mut best_acceptable: Option<(f64, CompressionOutcome)> = None;
        let mut last_ok: Option<f64> = None;
        let mut first_bad: Option<f64> = None;
        for (&x, result) in sweep_xs.iter().zip(sweep_results.into_iter()) {
            match result {
                Some((bound, true, outcome)) => {
                    last_ok = Some(x);
                    let better = match &best_acceptable {
                        None => true,
                        Some((_, b)) => outcome.compression_ratio > b.compression_ratio,
                    };
                    if better {
                        best_acceptable = Some((bound, outcome));
                    }
                }
                Some((_, false, _)) => {
                    if last_ok.is_some() && first_bad.is_none() {
                        first_bad = Some(x);
                    }
                }
                None => {}
            }
        }

        let remaining = self.config.max_iterations.saturating_sub(evaluations);
        let mut evaluate = |x: f64, best: &mut Option<(f64, CompressionOutcome)>| -> Option<bool> {
            let bound = from_x(x).clamp(lower, upper);
            evaluations += 1;
            match self.compressor.evaluate(dataset, bound, true) {
                Ok(outcome) => {
                    let quality = outcome.quality.as_ref().expect("quality requested");
                    let ok = self.config.metric.is_satisfied(quality);
                    if ok {
                        let better = match best {
                            None => true,
                            Some((_, b)) => outcome.compression_ratio > b.compression_ratio,
                        };
                        if better {
                            *best = Some((bound, outcome));
                        }
                    }
                    Some(ok)
                }
                Err(_) => None,
            }
        };

        // Phase 2: bisect between the last satisfying and the first violating
        // bound to squeeze out the remaining compression.  Each probe depends
        // on the previous verdict, so this phase is inherently serial.
        if let (Some(mut ok_x), Some(mut bad_x)) = (last_ok, first_bad) {
            for _ in 0..remaining {
                if (bad_x - ok_x).abs() <= self.config.improvement_tolerance * (xhi - xlo).abs() {
                    break;
                }
                let mid = 0.5 * (ok_x + bad_x);
                match evaluate(mid, &mut best_acceptable) {
                    Some(true) => ok_x = mid,
                    Some(false) => bad_x = mid,
                    None => break,
                }
            }
        }

        match best_acceptable {
            Some((bound, outcome)) => QualitySearchOutcome {
                error_bound: bound,
                best: outcome,
                satisfiable: true,
                evaluations,
                elapsed: start.elapsed(),
            },
            None => {
                // Nothing satisfied the constraint: fall back to the
                // smallest bound (highest fidelity the compressor offers).
                let fallback =
                    self.compressor
                        .evaluate(dataset, lower, true)
                        .unwrap_or(CompressionOutcome {
                            compressor: self.compressor.name().to_string(),
                            error_bound: lower,
                            compression_ratio: 0.0,
                            bit_rate: 0.0,
                            compressed_bytes: 0,
                            original_bytes: dataset.byte_size(),
                            quality: None,
                        });
                QualitySearchOutcome {
                    error_bound: lower,
                    best: fallback,
                    satisfiable: false,
                    evaluations,
                    elapsed: start.elapsed(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::synthetic;
    use fraz_pressio::registry;

    fn dataset() -> Dataset {
        synthetic::hurricane(8, 20, 20, 1, 77).field("TCf", 0)
    }

    #[test]
    fn metric_satisfaction_logic() {
        let report = fraz_metrics::QualityReport {
            compression_ratio: 10.0,
            bit_rate: 3.2,
            max_abs_error: 0.5,
            rmse: 0.1,
            psnr: 60.0,
            ssim: 0.95,
            acf_error: 0.2,
            num_points: 100,
            original_bytes: 400,
            compressed_bytes: 40,
        };
        assert!(QualityMetric::PsnrAtLeast(50.0).is_satisfied(&report));
        assert!(!QualityMetric::PsnrAtLeast(70.0).is_satisfied(&report));
        assert!(QualityMetric::SsimAtLeast(0.9).is_satisfied(&report));
        assert!(!QualityMetric::SsimAtLeast(0.99).is_satisfied(&report));
        assert!(QualityMetric::RmseAtMost(0.2).is_satisfied(&report));
        assert!(!QualityMetric::RmseAtMost(0.05).is_satisfied(&report));
        assert!(QualityMetric::MaxErrorAtMost(1.0).is_satisfied(&report));
        assert!(!QualityMetric::MaxErrorAtMost(0.1).is_satisfied(&report));
        assert!(QualityMetric::PsnrAtLeast(50.0).describe().contains("PSNR"));
    }

    #[test]
    fn psnr_target_is_met_and_ratio_is_maximized() {
        let d = dataset();
        let config = QualitySearchConfig {
            max_iterations: 20,
            ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(60.0))
        };
        let search = FixedQualitySearch::new(registry::build_default("sz").unwrap(), config);
        let outcome = search.run(&d);
        assert!(outcome.satisfiable);
        let quality = outcome.best.quality.as_ref().unwrap();
        assert!(quality.psnr >= 60.0, "psnr {}", quality.psnr);
        // The point of the search: it should compress much better than the
        // most conservative setting while still meeting the target.
        let conservative = search
            .compressor()
            .evaluate(&d, search.compressor().bound_range(&d).0, false)
            .unwrap();
        assert!(outcome.best.compression_ratio > conservative.compression_ratio);
    }

    #[test]
    fn stricter_targets_give_lower_ratios() {
        let d = dataset();
        let run = |psnr: f64| {
            let config = QualitySearchConfig {
                max_iterations: 20,
                ..QualitySearchConfig::new(QualityMetric::PsnrAtLeast(psnr))
            };
            FixedQualitySearch::new(registry::build_default("sz").unwrap(), config).run(&d)
        };
        let loose = run(40.0);
        let strict = run(90.0);
        assert!(loose.satisfiable && strict.satisfiable);
        assert!(
            loose.best.compression_ratio >= strict.best.compression_ratio,
            "loose {} vs strict {}",
            loose.best.compression_ratio,
            strict.best.compression_ratio
        );
        assert!(strict.best.quality.as_ref().unwrap().psnr >= 90.0);
    }

    #[test]
    fn impossible_target_reports_unsatisfiable() {
        let d = dataset();
        // SSIM cannot exceed 1, so this constraint is unsatisfiable by
        // construction (a tiny error bound can reach infinite PSNR, so a
        // PSNR target would not work for this test).
        let config = QualitySearchConfig {
            max_iterations: 8,
            ..QualitySearchConfig::new(QualityMetric::SsimAtLeast(1.5))
        };
        let outcome =
            FixedQualitySearch::new(registry::build_default("sz").unwrap(), config).run(&d);
        assert!(!outcome.satisfiable);
        assert!(outcome.evaluations >= 4);
    }

    #[test]
    fn max_error_constraint_is_respected() {
        let d = dataset();
        let ceiling = d.stats().value_range() * 1e-3;
        let config = QualitySearchConfig {
            max_iterations: 16,
            ..QualitySearchConfig::new(QualityMetric::MaxErrorAtMost(ceiling))
        };
        let outcome =
            FixedQualitySearch::new(registry::build_default("zfp").unwrap(), config).run(&d);
        assert!(outcome.satisfiable);
        assert!(outcome.best.quality.as_ref().unwrap().max_abs_error <= ceiling);
    }
}
