//! The parallel orchestrator: time-step prediction reuse and
//! parallel-by-field scheduling (paper Algorithm 3 and §V-C).
//!
//! FRaZ exploits two levels of structure in scientific archives:
//!
//! * consecutive **time-steps** of a field usually compress alike, so the
//!   error bound found for step `t` is tried as a *prediction* for step
//!   `t+1` and full training only re-runs when the prediction misses (the
//!   paper retrained only 4 of 48 Hurricane-CLOUD steps),
//! * different **fields** are independent, so their searches run in
//!   parallel; the whole-application runtime is bounded by the slowest
//!   field, which is what limits strong scaling in the paper's Fig. 8.
//!
//! The original implementation distributed this over MPI ranks; here the
//! same task graph runs on a shared work-stealing thread pool
//! ([`fraz_pool::Pool`]) with a `total_workers` knob standing in for the
//! paper's core counts.  The pool is built once, when the orchestrator is
//! constructed; field tasks and their nested region tasks are all
//! submitted to it, so repeated `run_application` calls spawn no OS
//! threads at all.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::registry::{self, Registry, RegistryError};
use fraz_pressio::{Compressor, Options};

use crate::hint::{BoundPredictor, HintSource, LastConverged, PredictorChain};
use crate::search::{FixedRatioSearch, SearchConfig, SearchOutcome};

/// Outcome of tuning one field across all of its time-steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesOutcome {
    /// Field name.
    pub field: String,
    /// Per-time-step search outcomes, in time order.
    pub steps: Vec<SearchOutcome>,
    /// Indices of the time-steps that required (re)training.
    pub retrain_steps: Vec<usize>,
    /// Wall-clock time for the whole series.
    pub elapsed: Duration,
}

impl SeriesOutcome {
    /// Fraction of time-steps whose achieved ratio was inside the acceptable
    /// region.
    pub fn convergence_rate(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps.iter().filter(|s| s.feasible).count() as f64 / self.steps.len() as f64
    }

    /// Total number of compressor invocations across the series.
    pub fn total_evaluations(&self) -> usize {
        self.steps.iter().map(|s| s.evaluations).sum()
    }
}

/// Outcome of tuning a whole application (all fields, all time-steps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationOutcome {
    /// Per-field outcomes (in the order the fields were given).
    pub fields: Vec<SeriesOutcome>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Number of worker threads that were available to the run.
    pub total_workers: usize,
}

impl ApplicationOutcome {
    /// The longest single-field wall-clock time — the lower bound on the
    /// run's total time regardless of parallelism (paper §VI-B3).
    pub fn longest_field_time(&self) -> Duration {
        self.fields
            .iter()
            .map(|f| f.elapsed)
            .max()
            .unwrap_or_default()
    }
}

/// Configuration of the orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// The per-dataset search configuration (target ratio, tolerance, …).
    pub search: SearchConfig,
    /// Total worker threads to spread across fields and regions; this is the
    /// "cores" axis of the scalability experiment.  0 means use the machine's
    /// available parallelism.
    pub total_workers: usize,
    /// Reuse the previous time-step's error bound as a prediction
    /// (Algorithm 1 / §V-C); disabling this is the ablation knob.
    pub reuse_prediction: bool,
}

impl OrchestratorConfig {
    /// Orchestrator with the given search settings and automatic worker
    /// count.
    pub fn new(search: SearchConfig) -> Self {
        Self {
            search,
            total_workers: 0,
            reuse_prediction: true,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.total_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.total_workers
        }
    }

    /// The largest number of workers this application shape can keep busy:
    /// never more than the configured budget, and never more than one
    /// worker per region per field.  When the budget exceeds this, the
    /// surplus workers stay parked — they are not an error, but a caller
    /// sizing a shared pool can shrink to this instead.
    pub fn effective_workers(&self, num_fields: usize) -> usize {
        let capacity = num_fields.max(1).saturating_mul(self.search.regions.max(1));
        self.resolved_workers().max(1).min(capacity)
    }

    /// The static approximation of the run's shape: how many fields run
    /// concurrently and how many region tasks each field's search stripes
    /// its work across.
    ///
    /// Since the orchestrator executes on a shared work-stealing pool,
    /// this split is *advisory* — idle workers steal region tasks from
    /// whichever field still has them, so a remainder of the budget is
    /// spread across the in-flight fields instead of stranding workers
    /// (e.g. 30 workers over 12-region searches now schedules 3 fields
    /// × 10 threads = 30 busy workers, not 2 × 12 = 24).
    pub fn schedule(&self, num_fields: usize) -> (usize, usize) {
        self.schedule_for(self.resolved_workers(), num_fields)
    }

    /// [`OrchestratorConfig::schedule`] for an explicit worker budget —
    /// used by the orchestrator itself so that a shared pool installed
    /// via [`Orchestrator::with_pool`] is scheduled (and reported) at the
    /// pool's *actual* size rather than this config's `total_workers`.
    pub fn schedule_for(&self, budget: usize, num_fields: usize) -> (usize, usize) {
        let per_search = self.search.regions.max(1);
        let num_fields = num_fields.max(1);
        // Shrink the budget to what this shape can actually occupy, then
        // take enough fields in flight to cover it even when the division
        // leaves a remainder.
        let capacity = num_fields.saturating_mul(per_search);
        let workers = budget.max(1).min(capacity);
        let field_concurrency = workers
            .div_ceil(per_search)
            .clamp(1, num_fields.min(workers));
        let threads_per_search = (workers / field_concurrency).clamp(1, per_search);
        (field_concurrency, threads_per_search)
    }
}

/// One field's worth of work for [`Orchestrator::run_tasks`]: a named time
/// series plus an optional per-field search override.
///
/// The CLI builds these from dataset manifests, where individual fields may
/// override the application-wide target ratio; plain
/// [`Orchestrator::run_application`] is the no-override special case.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldTask {
    /// Field name, reported in the [`SeriesOutcome`].
    pub field: String,
    /// The field's datasets in time order.
    pub series: Vec<Dataset>,
    /// Per-field search settings; `None` uses the orchestrator's
    /// configured [`SearchConfig`].  The `threads` knob is overwritten by
    /// the orchestrator's schedule either way — region concurrency is a
    /// whole-run budget decision, not a per-field one.
    pub search: Option<SearchConfig>,
}

impl FieldTask {
    /// A task using the orchestrator's default search settings.
    pub fn new(field: impl Into<String>, series: Vec<Dataset>) -> Self {
        Self {
            field: field.into(),
            series,
            search: None,
        }
    }

    /// Builder-style per-field search override.
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = Some(search);
        self
    }
}

/// The parallel orchestrator for one compressor backend.
///
/// Holds a shared `Arc<dyn Compressor>` handle (`Compressor` is `Send +
/// Sync`, so every field worker drives the same backend instance) and one
/// shared work-stealing [`Pool`] of `total_workers` threads.  Field tasks
/// and their nested region tasks all run on that pool, so once it exists
/// a run spawns **zero** OS threads.  The pool is created lazily, on the
/// first run (or by [`Orchestrator::pool`]): an orchestrator that is
/// handed a shared pool via [`Orchestrator::with_pool`] never builds —
/// and then throws away — a private one.
pub struct Orchestrator {
    compressor: Arc<dyn Compressor>,
    config: OrchestratorConfig,
    pool: OnceLock<Arc<Pool>>,
    predictor: Option<Arc<dyn BoundPredictor>>,
}

impl Orchestrator {
    /// Create an orchestrator for a backend from the process-wide default
    /// registry, with default codec settings.
    ///
    /// Returns `None` if the backend name is unknown.  Use
    /// [`Orchestrator::from_registry`] for validated options and a real
    /// error, or [`Orchestrator::with_compressor`] to bring your own
    /// backend.
    pub fn new(compressor_name: &str, config: OrchestratorConfig) -> Option<Self> {
        let compressor = registry::build_default(compressor_name).ok()?;
        Some(Self::with_compressor(compressor, config))
    }

    /// Create an orchestrator over an already-constructed backend (owned
    /// box or shared handle).
    pub fn with_compressor(
        compressor: impl Into<Arc<dyn Compressor>>,
        config: OrchestratorConfig,
    ) -> Self {
        Self {
            compressor: compressor.into(),
            config,
            pool: OnceLock::new(),
            predictor: None,
        }
    }

    /// Install an external [`BoundPredictor`] (e.g. the `fraz-tune` cache)
    /// consulted after the in-series previous-step slot and taught every
    /// converged bound.  Shared across the parallel field tasks.
    pub fn with_predictor(mut self, predictor: Arc<dyn BoundPredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Use `pool` instead of a private one, e.g. so several orchestrators
    /// (or concurrent `run_application` calls) draw from a single worker
    /// budget instead of oversubscribing the machine.  Because the private
    /// pool is created lazily, calling this right after construction
    /// spawns no threads at all for the replaced pool.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = OnceLock::from(pool);
        self
    }

    /// The pool every field and region task of this orchestrator runs on,
    /// creating the private `total_workers`-sized pool on first use.
    pub fn pool(&self) -> &Arc<Pool> {
        self.pool
            .get_or_init(|| Arc::new(Pool::new(self.config.resolved_workers())))
    }

    /// Create an orchestrator by building `name` from `registry` with the
    /// given (validated) options.
    pub fn from_registry(
        registry: &Registry,
        name: &str,
        options: &Options,
        config: OrchestratorConfig,
    ) -> Result<Self, RegistryError> {
        Ok(Self::with_compressor(
            registry.build(name, options)?,
            config,
        ))
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.config
    }

    /// Borrow the backend every worker shares.
    pub fn compressor(&self) -> &dyn Compressor {
        self.compressor.as_ref()
    }

    fn make_search(&self, search: Option<&SearchConfig>, threads: usize) -> FixedRatioSearch {
        let search_config = SearchConfig {
            threads,
            ..search.unwrap_or(&self.config.search).clone()
        };
        FixedRatioSearch::new(Arc::clone(&self.compressor), search_config)
            .with_pool(Arc::clone(self.pool()))
    }

    /// Tune one field's time series sequentially, reusing the previous
    /// step's error bound as a prediction (Algorithm 1 applied over time,
    /// §V-C).
    pub fn run_series(&self, field: &str, series: &[Dataset], threads: usize) -> SeriesOutcome {
        self.run_series_config(field, series, None, threads)
    }

    /// [`Orchestrator::run_series`] with an optional per-field search
    /// override (the orchestrator's config when `None`).
    pub fn run_series_config(
        &self,
        field: &str,
        series: &[Dataset],
        search: Option<&SearchConfig>,
        threads: usize,
    ) -> SeriesOutcome {
        let start = Instant::now();
        let search = self.make_search(search, threads);
        let mut steps = Vec::with_capacity(series.len());
        let mut retrain_steps = Vec::new();
        // Algorithm 3's time-step prediction is a [`LastConverged`] slot
        // (it learns a bound only when the objective was met, lines 5-7)
        // chained in front of any externally installed predictor: within
        // the series the previous step seeds the next, while the external
        // predictor seeds step 0 and observes every converged bound.
        let mut predictors: Vec<Arc<dyn BoundPredictor>> = Vec::new();
        if self.config.reuse_prediction {
            predictors.push(Arc::new(LastConverged::new(HintSource::PreviousStep)));
        }
        if let Some(external) = &self.predictor {
            predictors.push(Arc::clone(external));
        }
        let chain = PredictorChain::new(predictors);
        for (t, dataset) in series.iter().enumerate() {
            let outcome = if chain.is_empty() {
                search.run(dataset)
            } else {
                search.run_with_predictor(dataset, &chain)
            };
            if outcome.retrained {
                retrain_steps.push(t);
            }
            steps.push(outcome);
        }
        SeriesOutcome {
            field: field.to_string(),
            steps,
            retrain_steps,
            elapsed: start.elapsed(),
        }
    }

    /// Algorithm 3: tune every field of an application, fields in parallel.
    ///
    /// `fields` pairs each field name with its time series of datasets.
    ///
    /// Every field becomes one task on the shared pool and each field's
    /// region race runs as nested tasks on the *same* pool, so the worker
    /// budget flows to wherever work remains: when a field finishes early
    /// its workers steal region tasks from the fields still running,
    /// instead of idling behind a static fields × regions split.
    pub fn run_application(&self, fields: &[(String, Vec<Dataset>)]) -> ApplicationOutcome {
        let jobs: Vec<(&str, &[Dataset], Option<&SearchConfig>)> = fields
            .iter()
            .map(|(name, series)| (name.as_str(), series.as_slice(), None))
            .collect();
        self.run_jobs(&jobs)
    }

    /// [`Orchestrator::run_application`] with per-field search overrides:
    /// every task still runs on the one shared pool, but a task may bring
    /// its own target ratio / tolerance / region layout (a manifest's
    /// per-field `target_ratio`, for example).
    pub fn run_tasks(&self, tasks: &[FieldTask]) -> ApplicationOutcome {
        let jobs: Vec<(&str, &[Dataset], Option<&SearchConfig>)> = tasks
            .iter()
            .map(|t| (t.field.as_str(), t.series.as_slice(), t.search.as_ref()))
            .collect();
        self.run_jobs(&jobs)
    }

    fn run_jobs(&self, jobs: &[(&str, &[Dataset], Option<&SearchConfig>)]) -> ApplicationOutcome {
        let start = Instant::now();
        // Schedule and report against the pool that will actually run the
        // tasks — with_pool may have installed a budget different from
        // this config's total_workers.
        let pool_threads = self.pool().threads();
        let (_, threads_per_search) = self.config.schedule_for(pool_threads, jobs.len());
        let mut results: Vec<Option<SeriesOutcome>> = vec![None; jobs.len()];

        self.pool().scope(|scope| {
            for (slot, (name, series, search)) in results.iter_mut().zip(jobs) {
                scope.spawn(move || {
                    *slot = Some(self.run_series_config(name, series, *search, threads_per_search))
                });
            }
        });

        let fields_out: Vec<SeriesOutcome> = results
            .into_iter()
            .map(|o| o.expect("every field processed"))
            .collect();
        ApplicationOutcome {
            fields: fields_out,
            elapsed: start.elapsed(),
            total_workers: pool_threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::BoundScale;
    use fraz_data::synthetic;

    fn quick_search(target: f64) -> SearchConfig {
        SearchConfig {
            regions: 4,
            max_iterations: 12,
            measure_final_quality: false,
            scale: BoundScale::Log,
            ..SearchConfig::new(target, 0.15)
        }
    }

    fn hurricane_series(field: &str, steps: usize) -> Vec<Dataset> {
        let app = synthetic::hurricane(6, 16, 16, steps, 11);
        app.series(field)
    }

    #[test]
    fn series_reuses_predictions_across_timesteps() {
        let series = hurricane_series("TCf", 5);
        let orch = Orchestrator::new(
            "sz",
            OrchestratorConfig {
                total_workers: 4,
                ..OrchestratorConfig::new(quick_search(8.0))
            },
        )
        .unwrap();
        let outcome = orch.run_series("TCf", &series, 2);
        assert_eq!(outcome.steps.len(), 5);
        // The first step always trains; later ones should mostly reuse the
        // previous bound because consecutive synthetic steps are coherent.
        assert!(outcome.retrain_steps.contains(&0));
        assert!(
            outcome.retrain_steps.len() < 5,
            "every step retrained: {:?}",
            outcome.retrain_steps
        );
        assert!(outcome.convergence_rate() > 0.5);
        assert!(outcome.total_evaluations() >= 5);
    }

    #[test]
    fn disabling_prediction_reuse_retrains_every_step() {
        let series = hurricane_series("TCf", 3);
        let orch = Orchestrator::new(
            "sz",
            OrchestratorConfig {
                total_workers: 4,
                reuse_prediction: false,
                ..OrchestratorConfig::new(quick_search(8.0))
            },
        )
        .unwrap();
        let outcome = orch.run_series("TCf", &series, 2);
        assert_eq!(outcome.retrain_steps, vec![0, 1, 2]);
    }

    #[test]
    fn application_run_covers_all_fields() {
        let app = synthetic::cesm(24, 48, 2, 5);
        let fields: Vec<(String, Vec<Dataset>)> = app
            .field_names()
            .into_iter()
            .take(3)
            .map(|f| (f.clone(), app.series(&f)))
            .collect();
        let orch = Orchestrator::new(
            "sz",
            OrchestratorConfig {
                total_workers: 8,
                ..OrchestratorConfig::new(quick_search(6.0))
            },
        )
        .unwrap();
        let outcome = orch.run_application(&fields);
        assert_eq!(outcome.fields.len(), 3);
        for (field, series) in fields.iter().zip(outcome.fields.iter()) {
            assert_eq!(series.field, field.0);
            assert_eq!(series.steps.len(), 2);
        }
        assert!(outcome.longest_field_time() <= outcome.elapsed + Duration::from_millis(50));
        assert_eq!(outcome.total_workers, 8);
    }

    #[test]
    fn run_tasks_honours_per_field_search_overrides() {
        let orch = Orchestrator::new(
            "sz",
            OrchestratorConfig {
                total_workers: 4,
                ..OrchestratorConfig::new(quick_search(6.0))
            },
        )
        .unwrap();
        let tasks = vec![
            FieldTask::new("TCf", hurricane_series("TCf", 2)),
            FieldTask::new("Pf", hurricane_series("Pf", 2)).with_search(quick_search(12.0)),
        ];
        let outcome = orch.run_tasks(&tasks);
        assert_eq!(outcome.fields.len(), 2);
        for (series, target) in outcome.fields.iter().zip([6.0, 12.0]) {
            for step in &series.steps {
                assert!(
                    step.feasible,
                    "{}: target {target} infeasible at ratio {}",
                    series.field, step.best.compression_ratio
                );
                let deviation = (step.best.compression_ratio - target).abs() / target;
                assert!(
                    deviation <= 0.15 + 1e-9,
                    "{}: ratio {} is not within 15% of {target}",
                    series.field,
                    step.best.compression_ratio
                );
            }
        }
    }

    #[test]
    fn schedule_splits_workers_between_fields_and_regions() {
        let config = OrchestratorConfig {
            total_workers: 36,
            ..OrchestratorConfig::new(SearchConfig::new(10.0, 0.1))
        };
        // 12 regions per search -> 3 fields in flight, 12 threads each.
        assert_eq!(config.schedule(13), (3, 12));
        assert_eq!(config.effective_workers(13), 36);
        // Fewer fields than the budget allows: concurrency capped by the
        // fields, and the budget shrinks to what 2 x 12 regions can keep
        // busy instead of pretending all 36 workers have work.
        assert_eq!(config.schedule(2), (2, 12));
        assert_eq!(config.effective_workers(2), 24);
        // A budget that does not divide evenly is spread across MORE
        // in-flight fields rather than stranding the remainder: 30 workers
        // over 12-region searches used to yield (2, 12) = 24 busy workers.
        let uneven = OrchestratorConfig {
            total_workers: 30,
            ..config.clone()
        };
        assert_eq!(uneven.schedule(13), (3, 10));
        assert_eq!(uneven.effective_workers(13), 30);
        // A tiny budget still schedules something.
        let small = OrchestratorConfig {
            total_workers: 1,
            ..config.clone()
        };
        assert_eq!(small.schedule(5), (1, 1));
        assert_eq!(small.effective_workers(5), 1);
    }

    #[test]
    fn with_pool_schedules_and_reports_the_actual_pool_budget() {
        // A shared pool's size wins over the config's total_workers: the
        // outcome must attribute timings to the budget that really ran.
        let orch = Orchestrator::new(
            "sz",
            OrchestratorConfig {
                total_workers: 8,
                ..OrchestratorConfig::new(quick_search(8.0))
            },
        )
        .unwrap()
        .with_pool(std::sync::Arc::new(fraz_pool::Pool::new(2)));
        let fields: Vec<(String, Vec<Dataset>)> = vec![
            ("TCf".to_string(), hurricane_series("TCf", 1)),
            ("Pf".to_string(), hurricane_series("Pf", 1)),
        ];
        let outcome = orch.run_application(&fields);
        assert_eq!(outcome.total_workers, 2);
        assert_eq!(orch.pool().threads(), 2);
        // The static split shrinks to the installed budget too.
        assert_eq!(orch.config().schedule_for(2, 2), (1, 2));
    }

    #[test]
    fn from_registry_validates_and_with_compressor_shares() {
        let registry = Registry::with_builtins();
        let config = || OrchestratorConfig::new(quick_search(8.0));
        let orch = Orchestrator::from_registry(&registry, "sz", &Options::new(), config()).unwrap();
        assert_eq!(orch.compressor().name(), "sz");
        // Bad options surface as a real error, not a silent None.
        let err = Orchestrator::from_registry(
            &registry,
            "sz",
            &Options::new().with("sz:blok_size", 4u64),
            config(),
        );
        assert!(err.is_err());
        // A shared handle can serve the orchestrator and other users at once.
        let shared = registry.build_arc("zfp", &Options::new()).unwrap();
        let orch = Orchestrator::with_compressor(Arc::clone(&shared), config());
        assert_eq!(orch.compressor().name(), shared.name());
        let series = hurricane_series("TCf", 2);
        let outcome = orch.run_series("TCf", &series, 2);
        assert_eq!(outcome.steps.len(), 2);
    }

    #[test]
    fn unknown_backend_is_rejected() {
        assert!(Orchestrator::new(
            "nope",
            OrchestratorConfig::new(SearchConfig::new(10.0, 0.1))
        )
        .is_none());
    }
}
