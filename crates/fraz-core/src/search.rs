//! The FRaZ fixed-ratio search: worker task (Algorithm 1) and region-parallel
//! training (Algorithm 2).
//!
//! Given a black-box error-bounded compressor, a dataset and a target
//! compression ratio, [`FixedRatioSearch`] finds an error-bound setting whose
//! achieved ratio falls inside the user's acceptable region
//! `[ρt(1−ε), ρt(1+ε)]`, never exceeding an optional maximum allowed error
//! `U`.  The error-bound range is split into overlapping regions searched
//! concurrently; the first region to find an acceptable setting cancels the
//! others (early termination), and if none succeeds the closest observed
//! ratio is reported as an infeasible-but-best-effort answer — exactly the
//! semantics of the paper's Algorithms 1 and 2.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::{CompressionOutcome, Compressor};

use crate::loss::RatioLoss;
use crate::optim::{GlobalMinimizer, OptimizerConfig};
use crate::regions::{make_error_bounds, BoundScale, Region};

/// Configuration of a fixed-ratio search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Target compression ratio `ρt`.
    pub target_ratio: f64,
    /// Acceptable relative deviation `ε` from the target ratio.
    pub tolerance: f64,
    /// Maximum allowed compression error `U`; `None` uses the compressor's
    /// full valid range (the paper's default upper bound).
    pub max_error_bound: Option<f64>,
    /// Number of overlapping search regions (the paper found 12 to be a good
    /// default).
    pub regions: usize,
    /// Fractional overlap between adjacent regions (paper: 10 %).
    pub region_overlap: f64,
    /// Maximum objective evaluations per region.
    pub max_iterations: usize,
    /// Enable the early-termination cutoff (the paper's Dlib modification).
    pub use_cutoff: bool,
    /// Layout of the regions on the error-bound axis.
    pub scale: BoundScale,
    /// Concurrent worker tasks for region-parallel training; 0 means one
    /// per region (capped by the available parallelism).  Region tasks run
    /// on a shared [`fraz_pool::Pool`], so this caps the number of regions
    /// in flight for *this* search, not OS threads.
    pub threads: usize,
    /// After the search, re-run the best setting with full quality metrics.
    pub measure_final_quality: bool,
}

impl SearchConfig {
    /// A search for `target_ratio` within relative tolerance `tolerance`,
    /// with the paper's defaults for everything else.
    pub fn new(target_ratio: f64, tolerance: f64) -> Self {
        Self {
            target_ratio,
            tolerance,
            max_error_bound: None,
            regions: 12,
            region_overlap: 0.1,
            max_iterations: 24,
            use_cutoff: true,
            scale: BoundScale::Log,
            threads: 0,
            measure_final_quality: true,
        }
    }

    /// Builder-style setter for the maximum allowed compression error `U`.
    pub fn with_max_error(mut self, max_error_bound: f64) -> Self {
        self.max_error_bound = Some(max_error_bound);
        self
    }

    /// Builder-style setter for the number of regions.
    pub fn with_regions(mut self, regions: usize) -> Self {
        self.regions = regions.max(1);
        self
    }

    /// Builder-style setter for the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn worker_count(&self) -> usize {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        if self.threads == 0 {
            self.regions.min(available)
        } else {
            self.threads.min(self.regions).max(1)
        }
    }

    fn loss(&self) -> RatioLoss {
        RatioLoss::new(self.target_ratio, self.tolerance)
    }
}

/// Result of searching one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionOutcome {
    /// The region that was searched.
    pub region: Region,
    /// Best error bound found in the region.
    pub error_bound: f64,
    /// Compression ratio achieved at that bound.
    pub compression_ratio: f64,
    /// Loss at that bound.
    pub loss: f64,
    /// Number of compressor invocations spent in the region.
    pub iterations: usize,
    /// True if the region's search hit the early-termination cutoff.
    pub reached_cutoff: bool,
    /// True if the region was cancelled by another region's success.
    pub cancelled: bool,
    /// The full compression outcome measured at `error_bound`, carried out
    /// of the region so the winning bound need not be re-compressed after
    /// the race (absent only if the best evaluation errored).
    pub measured: Option<CompressionOutcome>,
}

/// Result of a fixed-ratio search on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The recommended error-bound setting.
    pub error_bound: f64,
    /// The outcome of compressing at that setting (with quality metrics when
    /// `measure_final_quality` is set).
    pub best: CompressionOutcome,
    /// True when the achieved ratio lies inside the acceptable region —
    /// i.e. the requested ratio was feasible.
    pub feasible: bool,
    /// Whether a fresh training search ran (false when a previous time-step's
    /// prediction was reused, Algorithm 1).
    pub retrained: bool,
    /// Total number of compressor invocations the *search* spent (the
    /// optional final quality pass of `measure_final_quality` is not a
    /// search evaluation and is not counted).
    pub evaluations: usize,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
    /// Per-region details (empty when the prediction was reused).
    pub regions: Vec<RegionOutcome>,
}

/// The FRaZ fixed-ratio search driver for a single compressor.
pub struct FixedRatioSearch {
    compressor: Arc<dyn Compressor>,
    config: SearchConfig,
    pool: Option<Arc<Pool>>,
}

impl FixedRatioSearch {
    /// Create a search driver over the given compressor backend.
    ///
    /// Accepts either an owned `Box<dyn Compressor>` (e.g. fresh from
    /// `registry::build`) or a shared `Arc<dyn Compressor>` handle, so one
    /// backend instance can serve several searches concurrently.
    ///
    /// Region tasks run on the process-wide [`fraz_pool::global`] pool
    /// unless [`FixedRatioSearch::with_pool`] installs a dedicated one; no
    /// call to [`FixedRatioSearch::run`] ever spawns an OS thread.
    pub fn new(compressor: impl Into<Arc<dyn Compressor>>, config: SearchConfig) -> Self {
        Self {
            compressor: compressor.into(),
            config,
            pool: None,
        }
    }

    /// Run this search's region tasks on `pool` instead of the global
    /// pool.  The orchestrator uses this to put every field's region tasks
    /// on its single shared pool.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Borrow the underlying compressor.
    pub fn compressor(&self) -> &dyn Compressor {
        self.compressor.as_ref()
    }

    /// A shared handle to the underlying compressor.
    pub fn compressor_handle(&self) -> Arc<dyn Compressor> {
        Arc::clone(&self.compressor)
    }

    /// Borrow the search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The `(lower, upper)` error-bound range the search will cover for this
    /// dataset, honouring `max_error_bound` (`U`).
    pub fn bound_range(&self, dataset: &Dataset) -> (f64, f64) {
        let (lower, mut upper) = self.compressor.bound_range(dataset);
        if let Some(u) = self.config.max_error_bound {
            if u > lower {
                upper = upper.min(u);
            }
        }
        (lower, upper.max(lower * (1.0 + 1e-9)))
    }

    /// Algorithm 2: region-parallel training on one dataset.
    pub fn run(&self, dataset: &Dataset) -> SearchOutcome {
        self.run_with_prediction(dataset, None)
    }

    /// Algorithm 1: try a predicted error bound first (e.g. the previous
    /// time-step's answer); fall back to full training when it misses.
    pub fn run_with_prediction(&self, dataset: &Dataset, prediction: Option<f64>) -> SearchOutcome {
        let start = Instant::now();
        let loss = self.config.loss();

        // Step 1 of Algorithm 1: if a prediction was provided, try it first.
        let mut probe_evaluations = 0usize;
        if let Some(p) = prediction {
            if p > 0.0 {
                probe_evaluations = 1;
                if let Ok(outcome) = self.compressor.evaluate(dataset, p, false) {
                    if loss.is_acceptable(outcome.compression_ratio) {
                        let best = self.finalize(dataset, p, outcome);
                        return SearchOutcome {
                            error_bound: p,
                            feasible: true,
                            retrained: false,
                            evaluations: 1,
                            elapsed: start.elapsed(),
                            regions: Vec::new(),
                            best,
                        };
                    }
                }
            }
        }

        // Step 2: full region-parallel training.
        let (lower, upper) = self.bound_range(dataset);
        let regions = make_error_bounds(
            lower,
            upper,
            self.config.regions,
            self.config.region_overlap,
            self.config.scale,
        );
        let cancel = AtomicBool::new(false);
        let workers = self.config.worker_count().min(regions.len()).max(1);

        // `workers` runner tasks drain the regions through a shared atomic
        // cursor — the same dynamic load balancing as the old mutex-backed
        // queue (any idle runner claims the next region) without a queue
        // or a result mutex, and zero OS threads spawned here.  Highest-
        // bound regions go first (matching the original LIFO pops): for
        // targets well above 1:1 they are the likeliest to contain the
        // answer, which is what makes early termination pay.
        let regions_desc: Vec<Region> = {
            let mut r = regions;
            r.reverse();
            r
        };
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Vec<RegionOutcome>> = vec![Vec::new(); workers];
        if workers == 1 {
            self.run_region_queue(dataset, &loss, &regions_desc, &next, &cancel, &mut slots[0]);
        } else {
            let pool: &Pool = match &self.pool {
                Some(pool) => pool,
                None => fraz_pool::global(),
            };
            pool.scope(|scope| {
                let cancel = &cancel;
                let loss = &loss;
                let next = &next;
                let regions_desc = &regions_desc;
                for slot in slots.iter_mut() {
                    scope.spawn(move || {
                        self.run_region_queue(dataset, loss, regions_desc, next, cancel, slot)
                    });
                }
            });
        }
        let regions_out: Vec<RegionOutcome> = slots.into_iter().flatten().collect();

        let mut best: Option<&RegionOutcome> = None;
        for r in &regions_out {
            let better = match best {
                None => true,
                Some(b) => r.loss < b.loss,
            };
            if better {
                best = Some(r);
            }
        }
        let (error_bound, feasible) = match best {
            Some(b) => (b.error_bound, loss.is_acceptable(b.compression_ratio)),
            None => (lower, false),
        };
        // A missed prediction probe still invoked the compressor once.
        let mut evaluations: usize =
            probe_evaluations + regions_out.iter().map(|r| r.iterations).sum::<usize>();
        // The winning region already measured its best bound — reuse that
        // outcome instead of re-running the compressor, and only count an
        // extra evaluation in the rare case we really must re-measure.
        let measured = match best.and_then(|b| b.measured.clone()) {
            Some(m) => m,
            None => {
                evaluations += 1;
                self.compressor
                    .evaluate(dataset, error_bound, false)
                    .unwrap_or(CompressionOutcome {
                        compressor: self.compressor.name().to_string(),
                        error_bound,
                        compression_ratio: 0.0,
                        bit_rate: 0.0,
                        compressed_bytes: 0,
                        original_bytes: dataset.byte_size(),
                        quality: None,
                    })
            }
        };
        let best = self.finalize(dataset, error_bound, measured);
        SearchOutcome {
            error_bound,
            best,
            feasible,
            retrained: true,
            evaluations,
            elapsed: start.elapsed(),
            regions: regions_out,
        }
    }

    /// One runner task: repeatedly claim the next unstarted region via the
    /// shared cursor and search it, observing and raising the shared
    /// early-termination flag (Algorithm 2, lines 9-14).
    fn run_region_queue(
        &self,
        dataset: &Dataset,
        loss: &RatioLoss,
        regions: &[Region],
        next: &AtomicUsize,
        cancel: &AtomicBool,
        out: &mut Vec<RegionOutcome>,
    ) {
        loop {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(region) = regions.get(index) else {
                break;
            };
            let outcome = self.search_region(dataset, loss, region.clone(), cancel);
            let acceptable = loss.is_acceptable(outcome.compression_ratio);
            out.push(outcome);
            if acceptable {
                // Early termination: cancel every region that has not
                // finished yet.
                cancel.store(true, Ordering::Relaxed);
                break;
            }
        }
    }

    /// Worker task for one region (the inner call of Algorithm 1:
    /// `train_with_cutoff`).
    fn search_region(
        &self,
        dataset: &Dataset,
        loss: &RatioLoss,
        region: Region,
        cancel: &AtomicBool,
    ) -> RegionOutcome {
        // Track the best full outcome seen so the caller can reuse the
        // winning measurement instead of re-compressing after the race.
        let mut best_seen: Option<(f64, CompressionOutcome)> = None;
        let mut objective = |e: f64| match self.compressor.evaluate(dataset, e, false) {
            Ok(outcome) => {
                let l = loss.loss(outcome.compression_ratio);
                if best_seen.as_ref().is_none_or(|(seen, _)| l < *seen) {
                    best_seen = Some((l, outcome.clone()));
                }
                (l, outcome.compression_ratio)
            }
            Err(_) => (loss.gamma, 0.0),
        };
        let optimizer = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: self.config.max_iterations,
            cutoff: if self.config.use_cutoff {
                loss.cutoff()
            } else {
                0.0
            },
            ..Default::default()
        });
        let trace = optimizer.minimize(&mut objective, region.lower, region.upper, Some(cancel));
        // Both trackers keep the *first* minimum in evaluation order, so
        // this equality holds whenever the best evaluation succeeded; the
        // comparison guards the corner where it errored (loss = gamma).
        let measured = best_seen
            .map(|(_, outcome)| outcome)
            .filter(|outcome| outcome.error_bound == trace.best.x);
        RegionOutcome {
            region,
            error_bound: trace.best.x,
            compression_ratio: trace.best.ratio,
            loss: trace.best.loss,
            iterations: trace.iterations(),
            reached_cutoff: trace.reached_cutoff,
            cancelled: trace.cancelled,
            measured,
        }
    }

    /// Optionally re-measure the chosen bound with full quality metrics.
    fn finalize(
        &self,
        dataset: &Dataset,
        error_bound: f64,
        fallback: CompressionOutcome,
    ) -> CompressionOutcome {
        if !self.config.measure_final_quality {
            return fallback;
        }
        self.compressor
            .evaluate(dataset, error_bound, true)
            .unwrap_or(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::Dims;
    use fraz_pressio::registry;

    fn smooth_field() -> Dataset {
        let (nz, ny, nx) = (8usize, 20usize, 20usize);
        let mut values = Vec::with_capacity(nz * ny * nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    values.push(
                        ((x as f32 * 0.31).sin() + (y as f32 * 0.17).cos()) * 5.0
                            + (z as f32 * 0.41).sin() * 2.0,
                    );
                }
            }
        }
        Dataset::from_f32("test", "smooth", 0, Dims::d3(nz, ny, nx), values)
    }

    fn quick_config(target: f64) -> SearchConfig {
        SearchConfig {
            regions: 4,
            max_iterations: 16,
            threads: 2,
            ..SearchConfig::new(target, 0.1)
        }
    }

    #[test]
    fn feasible_target_is_hit_within_tolerance() {
        let dataset = smooth_field();
        let search =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick_config(10.0));
        let outcome = search.run(&dataset);
        assert!(outcome.feasible, "10:1 should be feasible on smooth data");
        assert!(
            (outcome.best.compression_ratio - 10.0).abs() <= 1.0 + 1e-9,
            "ratio {}",
            outcome.best.compression_ratio
        );
        assert!(outcome.retrained);
        assert!(outcome.evaluations >= 1);
        assert!(outcome.best.quality.is_some());
        // The recommended bound really is what produced that ratio.
        let check = search
            .compressor()
            .evaluate(&dataset, outcome.error_bound, false)
            .unwrap();
        assert!((check.compression_ratio - outcome.best.compression_ratio).abs() < 1e-9);
    }

    #[test]
    fn infeasible_target_reports_closest_ratio() {
        let dataset = smooth_field();
        // A ratio below the codec's effective floor (headers alone prevent
        // 1.01:1 exactly) is infeasible; FRaZ must say so and return its
        // closest observation rather than erroring.
        let config = SearchConfig {
            tolerance: 0.001,
            ..quick_config(1.01)
        };
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
        let outcome = search.run(&dataset);
        assert!(!outcome.feasible);
        assert!(outcome.best.compression_ratio > 0.0);
        assert!(!outcome.regions.is_empty());
    }

    #[test]
    fn prediction_reuse_skips_training() {
        let dataset = smooth_field();
        let search =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick_config(10.0));
        let first = search.run(&dataset);
        assert!(first.feasible);
        let second = search.run_with_prediction(&dataset, Some(first.error_bound));
        assert!(second.feasible);
        assert!(!second.retrained, "prediction should have been reused");
        assert_eq!(second.evaluations, 1);
        assert!(second.regions.is_empty());
    }

    #[test]
    fn bad_prediction_falls_back_to_training() {
        let dataset = smooth_field();
        let search =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick_config(10.0));
        let outcome = search.run_with_prediction(&dataset, Some(1e-12));
        assert!(
            outcome.retrained,
            "a useless prediction must trigger training"
        );
        assert!(outcome.feasible);
    }

    #[test]
    fn max_error_bound_is_respected() {
        let dataset = smooth_field();
        let range = dataset.stats().value_range();
        let cap = range * 1e-6;
        let config = quick_config(200.0).with_max_error(cap);
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
        let (_, upper) = search.bound_range(&dataset);
        assert!(upper <= cap * (1.0 + 1e-9));
        let outcome = search.run(&dataset);
        // With such a tight error ceiling a 200:1 ratio is infeasible, and
        // the recommended bound must never exceed the ceiling.
        assert!(outcome.error_bound <= cap * (1.0 + 1e-9));
        assert!(!outcome.feasible);
    }

    #[test]
    fn works_with_every_error_bounded_backend() {
        let dataset = smooth_field();
        for name in registry::error_bounded_names() {
            let backend = registry::build_default(&name).unwrap();
            if !backend.supports_dims(&dataset.dims) {
                continue;
            }
            let search = FixedRatioSearch::new(backend, quick_config(8.0));
            let outcome = search.run(&dataset);
            assert!(
                outcome.best.compression_ratio > 1.0,
                "{name}: ratio {}",
                outcome.best.compression_ratio
            );
        }
    }

    #[test]
    fn single_threaded_and_parallel_agree_on_feasibility() {
        let dataset = smooth_field();
        let serial = FixedRatioSearch::new(
            registry::build_default("sz").unwrap(),
            SearchConfig {
                threads: 1,
                ..quick_config(12.0)
            },
        )
        .run(&dataset);
        let parallel = FixedRatioSearch::new(
            registry::build_default("sz").unwrap(),
            SearchConfig {
                threads: 4,
                ..quick_config(12.0)
            },
        )
        .run(&dataset);
        assert_eq!(serial.feasible, parallel.feasible);
    }

    #[test]
    fn config_builders() {
        let c = SearchConfig::new(50.0, 0.05)
            .with_regions(6)
            .with_threads(3)
            .with_max_error(0.5);
        assert_eq!(c.regions, 6);
        assert_eq!(c.threads, 3);
        assert_eq!(c.max_error_bound, Some(0.5));
        assert_eq!(c.worker_count(), 3);
        assert_eq!(SearchConfig::new(10.0, 0.1).with_regions(0).regions, 1);
    }
}
