//! The FRaZ fixed-ratio search: worker task (Algorithm 1) and region-parallel
//! training (Algorithm 2).
//!
//! Given a black-box error-bounded compressor, a dataset and a target
//! compression ratio, [`FixedRatioSearch`] finds an error-bound setting whose
//! achieved ratio falls inside the user's acceptable region
//! `[ρt(1−ε), ρt(1+ε)]`, never exceeding an optional maximum allowed error
//! `U`.  The error-bound range is split into overlapping regions searched
//! concurrently; the first region to find an acceptable setting cancels the
//! others (early termination), and if none succeeds the closest observed
//! ratio is reported as an infeasible-but-best-effort answer — exactly the
//! semantics of the paper's Algorithms 1 and 2.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::{CompressionOutcome, Compressor};

use crate::cancel::CancelToken;
use crate::hint::{BoundPredictor, HintQuery, HintReport, HintSource, HintTarget, SearchHint};
use crate::loss::RatioLoss;
use crate::optim::{GlobalMinimizer, OptimizerConfig};
use crate::regions::{make_error_bounds, BoundScale, Region};

/// Configuration of a fixed-ratio search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Target compression ratio `ρt`.
    pub target_ratio: f64,
    /// Acceptable relative deviation `ε` from the target ratio.
    pub tolerance: f64,
    /// Maximum allowed compression error `U`; `None` uses the compressor's
    /// full valid range (the paper's default upper bound).
    pub max_error_bound: Option<f64>,
    /// Number of overlapping search regions (the paper found 12 to be a good
    /// default).
    pub regions: usize,
    /// Fractional overlap between adjacent regions (paper: 10 %).
    pub region_overlap: f64,
    /// Maximum objective evaluations per region.
    pub max_iterations: usize,
    /// Enable the early-termination cutoff (the paper's Dlib modification).
    pub use_cutoff: bool,
    /// Layout of the regions on the error-bound axis.
    pub scale: BoundScale,
    /// Concurrent worker tasks for region-parallel training; 0 means one
    /// per region (capped by the available parallelism).  Region tasks run
    /// on a shared [`fraz_pool::Pool`], so this caps the number of regions
    /// in flight for *this* search, not OS threads.
    pub threads: usize,
    /// After the search, re-run the best setting with full quality metrics.
    pub measure_final_quality: bool,
}

impl SearchConfig {
    /// A search for `target_ratio` within relative tolerance `tolerance`,
    /// with the paper's defaults for everything else.
    pub fn new(target_ratio: f64, tolerance: f64) -> Self {
        Self {
            target_ratio,
            tolerance,
            max_error_bound: None,
            regions: 12,
            region_overlap: 0.1,
            max_iterations: 24,
            use_cutoff: true,
            scale: BoundScale::Log,
            threads: 0,
            measure_final_quality: true,
        }
    }

    /// Builder-style setter for the maximum allowed compression error `U`.
    pub fn with_max_error(mut self, max_error_bound: f64) -> Self {
        self.max_error_bound = Some(max_error_bound);
        self
    }

    /// Builder-style setter for the number of regions.
    pub fn with_regions(mut self, regions: usize) -> Self {
        self.regions = regions.max(1);
        self
    }

    /// Builder-style setter for the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn worker_count(&self) -> usize {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        if self.threads == 0 {
            self.regions.min(available)
        } else {
            self.threads.min(self.regions).max(1)
        }
    }

    fn loss(&self) -> RatioLoss {
        RatioLoss::new(self.target_ratio, self.tolerance)
    }
}

/// Result of searching one region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionOutcome {
    /// The region that was searched.
    pub region: Region,
    /// Best error bound found in the region.
    pub error_bound: f64,
    /// Compression ratio achieved at that bound.
    pub compression_ratio: f64,
    /// Loss at that bound.
    pub loss: f64,
    /// Number of compressor invocations spent in the region.
    pub iterations: usize,
    /// True if the region's search hit the early-termination cutoff.
    pub reached_cutoff: bool,
    /// True if the region was cancelled by another region's success.
    pub cancelled: bool,
    /// The full compression outcome measured at `error_bound`, carried out
    /// of the region so the winning bound need not be re-compressed after
    /// the race (absent only if the best evaluation errored).
    pub measured: Option<CompressionOutcome>,
}

/// Result of a fixed-ratio search on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The recommended error-bound setting.
    pub error_bound: f64,
    /// The outcome of compressing at that setting (with quality metrics when
    /// `measure_final_quality` is set).
    pub best: CompressionOutcome,
    /// True when the achieved ratio lies inside the acceptable region —
    /// i.e. the requested ratio was feasible.
    pub feasible: bool,
    /// Whether a fresh training search ran (false when a previous time-step's
    /// prediction was reused, Algorithm 1).
    pub retrained: bool,
    /// Total number of compressor invocations the *search* spent (the
    /// optional final quality pass of `measure_final_quality` is not a
    /// search evaluation and is not counted).
    pub evaluations: usize,
    /// Wall-clock time of the whole search.
    pub elapsed: Duration,
    /// Per-region details (empty when the prediction was reused).
    pub regions: Vec<RegionOutcome>,
    /// What the search did with its seeding hint (`None` on cold runs).
    pub hint: Option<HintReport>,
    /// True when a [`CancelToken`] stopped the search early (deadline or
    /// explicit cancel): `best` is then the best-so-far answer, not a
    /// converged one.
    pub deadline_hit: bool,
}

/// The FRaZ fixed-ratio search driver for a single compressor.
pub struct FixedRatioSearch {
    compressor: Arc<dyn Compressor>,
    config: SearchConfig,
    pool: Option<Arc<Pool>>,
    codec_config: String,
    cancel: Option<CancelToken>,
}

impl FixedRatioSearch {
    /// Create a search driver over the given compressor backend.
    ///
    /// Accepts either an owned `Box<dyn Compressor>` (e.g. fresh from
    /// `registry::build`) or a shared `Arc<dyn Compressor>` handle, so one
    /// backend instance can serve several searches concurrently.
    ///
    /// Region tasks run on the process-wide [`fraz_pool::global`] pool
    /// unless [`FixedRatioSearch::with_pool`] installs a dedicated one; no
    /// call to [`FixedRatioSearch::run`] ever spawns an OS thread.
    pub fn new(compressor: impl Into<Arc<dyn Compressor>>, config: SearchConfig) -> Self {
        Self {
            compressor: compressor.into(),
            config,
            pool: None,
            codec_config: String::new(),
            cancel: None,
        }
    }

    /// Cooperatively stop the search when `token` fires (deadline passed or
    /// explicit cancel).  Checked between compressor evaluations only — a
    /// single evaluation is the atom of work — so the outcome after a fired
    /// token is the best-so-far answer with `deadline_hit: true`.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Run this search's region tasks on `pool` instead of the global
    /// pool.  The orchestrator uses this to put every field's region tasks
    /// on its single shared pool.
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Record the canonical codec-options signature
    /// (`fraz_pressio::Options::signature`) so predictors keying on
    /// (codec + options) see the configuration this search actually runs
    /// with.  Defaults to the empty string (default options).
    pub fn with_codec_config(mut self, codec_config: impl Into<String>) -> Self {
        self.codec_config = codec_config.into();
        self
    }

    /// Borrow the underlying compressor.
    pub fn compressor(&self) -> &dyn Compressor {
        self.compressor.as_ref()
    }

    /// A shared handle to the underlying compressor.
    pub fn compressor_handle(&self) -> Arc<dyn Compressor> {
        Arc::clone(&self.compressor)
    }

    /// Borrow the search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The `(lower, upper)` error-bound range the search will cover for this
    /// dataset, honouring `max_error_bound` (`U`).
    pub fn bound_range(&self, dataset: &Dataset) -> (f64, f64) {
        let (lower, mut upper) = self.compressor.bound_range(dataset);
        if let Some(u) = self.config.max_error_bound {
            if u > lower {
                upper = upper.min(u);
            }
        }
        (lower, upper.max(lower * (1.0 + 1e-9)))
    }

    /// This search's objective in predictor-readable form.
    pub fn hint_target(&self) -> HintTarget {
        HintTarget::Ratio {
            target_ratio: self.config.target_ratio,
            tolerance: self.config.tolerance,
        }
    }

    /// The [`HintQuery`] a [`BoundPredictor`] is consulted with for this
    /// search on `dataset`.
    pub fn hint_query<'a>(&'a self, dataset: &'a Dataset) -> HintQuery<'a> {
        HintQuery {
            dataset,
            codec: self.compressor.name(),
            codec_config: &self.codec_config,
            target: self.hint_target(),
        }
    }

    /// Algorithm 2: region-parallel training on one dataset.
    pub fn run(&self, dataset: &Dataset) -> SearchOutcome {
        self.run_with_hint(dataset, None)
    }

    /// Compatibility shim over [`FixedRatioSearch::run_with_hint`]: a bare
    /// bound becomes a converged [`HintSource::External`] hint.
    pub fn run_with_prediction(&self, dataset: &Dataset, prediction: Option<f64>) -> SearchOutcome {
        let hint = prediction.map(|p| SearchHint::converged(p, HintSource::External));
        self.run_with_hint(dataset, hint.as_ref())
    }

    /// Consult `predictor` for a hint, run, and report the result back via
    /// [`BoundPredictor::observe`] so the predictor learns from this search.
    pub fn run_with_predictor(
        &self,
        dataset: &Dataset,
        predictor: &dyn BoundPredictor,
    ) -> SearchOutcome {
        let query = self.hint_query(dataset);
        let hint = predictor.predict(&query);
        let outcome = self.run_with_hint(dataset, hint.as_ref());
        predictor.observe(&query, outcome.error_bound, outcome.feasible);
        outcome
    }

    /// Algorithm 1: probe the hinted bound first; fall back to full
    /// region-parallel training when it misses (narrowed to the hint's
    /// bracket, if it carries one).
    pub fn run_with_hint(&self, dataset: &Dataset, hint: Option<&SearchHint>) -> SearchOutcome {
        let start = Instant::now();
        let loss = self.config.loss();

        // Step 1 of Algorithm 1: probe the hint.  When the final quality
        // pass is requested the probe measures quality directly, so a hint
        // that lands costs exactly ONE compressor call — the probe *is* the
        // verify pass — and `evaluations: 1` is the true invocation count.
        let mut hint_report: Option<HintReport> = None;
        let token_fired = |this: &Self| this.cancel.as_ref().is_some_and(|t| t.is_cancelled());
        if let Some(h) = hint.filter(|h| h.is_valid() && !token_fired(self)) {
            let probe =
                self.compressor
                    .evaluate(dataset, h.bound, self.config.measure_final_quality);
            let hit = probe
                .as_ref()
                .is_ok_and(|o| loss.is_acceptable(o.compression_ratio));
            hint_report = Some(HintReport {
                source: h.source,
                bound: h.bound,
                hit,
                probes: 1,
            });
            if hit {
                return SearchOutcome {
                    error_bound: h.bound,
                    feasible: true,
                    retrained: false,
                    evaluations: 1,
                    elapsed: start.elapsed(),
                    regions: Vec::new(),
                    hint: hint_report,
                    best: probe.expect("hit implies a successful evaluation"),
                    deadline_hit: false,
                };
            }
        }
        let probe_evaluations = hint_report.as_ref().map_or(0, |r| r.probes);

        // Step 2: full region-parallel training.  A hint bracket narrows
        // the searched range (clipped to the compressor's valid range).
        let (mut lower, mut upper) = self.bound_range(dataset);
        if let Some((blo, bhi)) = hint.and_then(|h| h.bracket) {
            let (nlo, nhi) = (lower.max(blo), upper.min(bhi));
            if nlo < nhi {
                (lower, upper) = (nlo, nhi);
            }
        }
        let regions = make_error_bounds(
            lower,
            upper,
            self.config.regions,
            self.config.region_overlap,
            self.config.scale,
        );
        let cancel = AtomicBool::new(false);
        let workers = self.config.worker_count().min(regions.len()).max(1);

        // `workers` runner tasks drain the regions through a shared atomic
        // cursor — the same dynamic load balancing as the old mutex-backed
        // queue (any idle runner claims the next region) without a queue
        // or a result mutex, and zero OS threads spawned here.  Highest-
        // bound regions go first (matching the original LIFO pops): for
        // targets well above 1:1 they are the likeliest to contain the
        // answer, which is what makes early termination pay.
        let regions_desc: Vec<Region> = {
            let mut r = regions;
            r.reverse();
            r
        };
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Vec<RegionOutcome>> = vec![Vec::new(); workers];
        if workers == 1 {
            self.run_region_queue(dataset, &loss, &regions_desc, &next, &cancel, &mut slots[0]);
        } else {
            let pool: &Pool = match &self.pool {
                Some(pool) => pool,
                None => fraz_pool::global(),
            };
            pool.scope(|scope| {
                let cancel = &cancel;
                let loss = &loss;
                let next = &next;
                let regions_desc = &regions_desc;
                for slot in slots.iter_mut() {
                    scope.spawn(move || {
                        self.run_region_queue(dataset, loss, regions_desc, next, cancel, slot)
                    });
                }
            });
        }
        let regions_out: Vec<RegionOutcome> = slots.into_iter().flatten().collect();

        let mut best: Option<&RegionOutcome> = None;
        for r in &regions_out {
            let better = match best {
                None => true,
                Some(b) => r.loss < b.loss,
            };
            if better {
                best = Some(r);
            }
        }
        let (error_bound, feasible) = match best {
            Some(b) => (b.error_bound, loss.is_acceptable(b.compression_ratio)),
            None => (lower, false),
        };
        // A missed prediction probe still invoked the compressor once.
        let mut evaluations: usize =
            probe_evaluations + regions_out.iter().map(|r| r.iterations).sum::<usize>();
        // The winning region already measured its best bound — reuse that
        // outcome instead of re-running the compressor, and only count an
        // extra evaluation in the rare case we really must re-measure.
        let measured = match best.and_then(|b| b.measured.clone()) {
            Some(m) => m,
            None => {
                evaluations += 1;
                self.compressor
                    .evaluate(dataset, error_bound, false)
                    .unwrap_or(CompressionOutcome {
                        compressor: self.compressor.name().to_string(),
                        error_bound,
                        compression_ratio: 0.0,
                        bit_rate: 0.0,
                        compressed_bytes: 0,
                        original_bytes: dataset.byte_size(),
                        quality: None,
                    })
            }
        };
        let deadline_hit = token_fired(self);
        // Skip the extra quality pass when the token already fired: the
        // caller asked us to stop, so the answer ships as measured.
        let best = if deadline_hit {
            measured
        } else {
            self.finalize(dataset, error_bound, measured)
        };
        SearchOutcome {
            error_bound,
            best,
            feasible,
            retrained: true,
            evaluations,
            elapsed: start.elapsed(),
            regions: regions_out,
            hint: hint_report,
            deadline_hit,
        }
    }

    /// One runner task: repeatedly claim the next unstarted region via the
    /// shared cursor and search it, observing and raising the shared
    /// early-termination flag (Algorithm 2, lines 9-14).
    fn run_region_queue(
        &self,
        dataset: &Dataset,
        loss: &RatioLoss,
        regions: &[Region],
        next: &AtomicUsize,
        cancel: &AtomicBool,
        out: &mut Vec<RegionOutcome>,
    ) {
        loop {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                // Deadline/cancel: stop every runner, not just this one.
                cancel.store(true, Ordering::Relaxed);
                break;
            }
            let index = next.fetch_add(1, Ordering::Relaxed);
            let Some(region) = regions.get(index) else {
                break;
            };
            let outcome = self.search_region(dataset, loss, region.clone(), cancel);
            let acceptable = loss.is_acceptable(outcome.compression_ratio);
            out.push(outcome);
            if acceptable {
                // Early termination: cancel every region that has not
                // finished yet.
                cancel.store(true, Ordering::Relaxed);
                break;
            }
        }
    }

    /// Worker task for one region (the inner call of Algorithm 1:
    /// `train_with_cutoff`).
    fn search_region(
        &self,
        dataset: &Dataset,
        loss: &RatioLoss,
        region: Region,
        cancel: &AtomicBool,
    ) -> RegionOutcome {
        // Track the best full outcome seen so the caller can reuse the
        // winning measurement instead of re-compressing after the race.
        let mut best_seen: Option<(f64, CompressionOutcome)> = None;
        let mut objective = |e: f64| {
            if self.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
                // The minimizer polls `cancel` between evaluations; raising
                // it here stops this optimization without paying another
                // compressor call, and the gamma loss can never displace a
                // real best-so-far observation.
                cancel.store(true, Ordering::Relaxed);
                return (loss.gamma, 0.0);
            }
            match self.compressor.evaluate(dataset, e, false) {
                Ok(outcome) => {
                    let l = loss.loss(outcome.compression_ratio);
                    if best_seen.as_ref().is_none_or(|(seen, _)| l < *seen) {
                        best_seen = Some((l, outcome.clone()));
                    }
                    (l, outcome.compression_ratio)
                }
                Err(_) => (loss.gamma, 0.0),
            }
        };
        let optimizer = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: self.config.max_iterations,
            cutoff: if self.config.use_cutoff {
                loss.cutoff()
            } else {
                0.0
            },
            ..Default::default()
        });
        let trace = optimizer.minimize(&mut objective, region.lower, region.upper, Some(cancel));
        // Both trackers keep the *first* minimum in evaluation order, so
        // this equality holds whenever the best evaluation succeeded; the
        // comparison guards the corner where it errored (loss = gamma).
        let measured = best_seen
            .map(|(_, outcome)| outcome)
            .filter(|outcome| outcome.error_bound == trace.best.x);
        RegionOutcome {
            region,
            error_bound: trace.best.x,
            compression_ratio: trace.best.ratio,
            loss: trace.best.loss,
            iterations: trace.iterations(),
            reached_cutoff: trace.reached_cutoff,
            cancelled: trace.cancelled,
            measured,
        }
    }

    /// Optionally re-measure the chosen bound with full quality metrics.
    fn finalize(
        &self,
        dataset: &Dataset,
        error_bound: f64,
        fallback: CompressionOutcome,
    ) -> CompressionOutcome {
        if !self.config.measure_final_quality {
            return fallback;
        }
        self.compressor
            .evaluate(dataset, error_bound, true)
            .unwrap_or(fallback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hint::LastConverged;
    use fraz_data::Dims;
    use fraz_pressio::{registry, PressioError};

    fn smooth_field() -> Dataset {
        let (nz, ny, nx) = (8usize, 20usize, 20usize);
        let mut values = Vec::with_capacity(nz * ny * nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    values.push(
                        ((x as f32 * 0.31).sin() + (y as f32 * 0.17).cos()) * 5.0
                            + (z as f32 * 0.41).sin() * 2.0,
                    );
                }
            }
        }
        Dataset::from_f32("test", "smooth", 0, Dims::d3(nz, ny, nx), values)
    }

    fn quick_config(target: f64) -> SearchConfig {
        SearchConfig {
            regions: 4,
            max_iterations: 16,
            threads: 2,
            ..SearchConfig::new(target, 0.1)
        }
    }

    #[test]
    fn feasible_target_is_hit_within_tolerance() {
        let dataset = smooth_field();
        let search =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick_config(10.0));
        let outcome = search.run(&dataset);
        assert!(outcome.feasible, "10:1 should be feasible on smooth data");
        assert!(
            (outcome.best.compression_ratio - 10.0).abs() <= 1.0 + 1e-9,
            "ratio {}",
            outcome.best.compression_ratio
        );
        assert!(outcome.retrained);
        assert!(outcome.evaluations >= 1);
        assert!(outcome.best.quality.is_some());
        // The recommended bound really is what produced that ratio.
        let check = search
            .compressor()
            .evaluate(&dataset, outcome.error_bound, false)
            .unwrap();
        assert!((check.compression_ratio - outcome.best.compression_ratio).abs() < 1e-9);
    }

    #[test]
    fn infeasible_target_reports_closest_ratio() {
        let dataset = smooth_field();
        // A ratio below the codec's effective floor (headers alone prevent
        // 1.01:1 exactly) is infeasible; FRaZ must say so and return its
        // closest observation rather than erroring.
        let config = SearchConfig {
            tolerance: 0.001,
            ..quick_config(1.01)
        };
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
        let outcome = search.run(&dataset);
        assert!(!outcome.feasible);
        assert!(outcome.best.compression_ratio > 0.0);
        assert!(!outcome.regions.is_empty());
    }

    #[test]
    fn prediction_reuse_skips_training() {
        let dataset = smooth_field();
        let search =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick_config(10.0));
        let first = search.run(&dataset);
        assert!(first.feasible);
        let second = search.run_with_prediction(&dataset, Some(first.error_bound));
        assert!(second.feasible);
        assert!(!second.retrained, "prediction should have been reused");
        assert_eq!(second.evaluations, 1);
        assert!(second.regions.is_empty());
    }

    #[test]
    fn bad_prediction_falls_back_to_training() {
        let dataset = smooth_field();
        let search =
            FixedRatioSearch::new(registry::build_default("sz").unwrap(), quick_config(10.0));
        let outcome = search.run_with_prediction(&dataset, Some(1e-12));
        assert!(
            outcome.retrained,
            "a useless prediction must trigger training"
        );
        assert!(outcome.feasible);
    }

    #[test]
    fn max_error_bound_is_respected() {
        let dataset = smooth_field();
        let range = dataset.stats().value_range();
        let cap = range * 1e-6;
        let config = quick_config(200.0).with_max_error(cap);
        let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
        let (_, upper) = search.bound_range(&dataset);
        assert!(upper <= cap * (1.0 + 1e-9));
        let outcome = search.run(&dataset);
        // With such a tight error ceiling a 200:1 ratio is infeasible, and
        // the recommended bound must never exceed the ceiling.
        assert!(outcome.error_bound <= cap * (1.0 + 1e-9));
        assert!(!outcome.feasible);
    }

    #[test]
    fn works_with_every_error_bounded_backend() {
        let dataset = smooth_field();
        for name in registry::error_bounded_names() {
            let backend = registry::build_default(&name).unwrap();
            if !backend.supports_dims(&dataset.dims) {
                continue;
            }
            let search = FixedRatioSearch::new(backend, quick_config(8.0));
            let outcome = search.run(&dataset);
            assert!(
                outcome.best.compression_ratio > 1.0,
                "{name}: ratio {}",
                outcome.best.compression_ratio
            );
        }
    }

    #[test]
    fn single_threaded_and_parallel_agree_on_feasibility() {
        let dataset = smooth_field();
        let serial = FixedRatioSearch::new(
            registry::build_default("sz").unwrap(),
            SearchConfig {
                threads: 1,
                ..quick_config(12.0)
            },
        )
        .run(&dataset);
        let parallel = FixedRatioSearch::new(
            registry::build_default("sz").unwrap(),
            SearchConfig {
                threads: 4,
                ..quick_config(12.0)
            },
        )
        .run(&dataset);
        assert_eq!(serial.feasible, parallel.feasible);
    }

    /// A deterministic codec whose ratio is a known monotone function of the
    /// bound, counting every `compress` call — the ground truth against
    /// which `evaluations` accounting is pinned exactly.
    struct CountingCodec {
        calls: AtomicUsize,
        original: Dataset,
    }

    impl CountingCodec {
        const LO: f64 = 1e-6;
        const HI: f64 = 1.0;

        fn new(original: Dataset) -> Self {
            Self {
                calls: AtomicUsize::new(0),
                original,
            }
        }

        fn ratio_at(bound: f64) -> f64 {
            1.0 + 99.0 * ((bound / Self::LO).ln() / (Self::HI / Self::LO).ln())
        }

        /// The bound at which [`CountingCodec::ratio_at`] equals `ratio`.
        fn bound_for(ratio: f64) -> f64 {
            Self::LO * (((ratio - 1.0) / 99.0) * (Self::HI / Self::LO).ln()).exp()
        }
    }

    impl fraz_pressio::Compressor for CountingCodec {
        fn name(&self) -> &str {
            "counting"
        }
        fn supports_dims(&self, _dims: &Dims) -> bool {
            true
        }
        fn bound_range(&self, _dataset: &Dataset) -> (f64, f64) {
            (Self::LO, Self::HI)
        }
        fn compress(&self, dataset: &Dataset, bound: f64) -> Result<Vec<u8>, PressioError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let bytes = (dataset.byte_size() as f64 / Self::ratio_at(bound)).ceil() as usize;
            Ok(vec![0u8; bytes.max(1)])
        }
        fn decompress(&self, _data: &[u8]) -> Result<Dataset, PressioError> {
            Ok(self.original.clone())
        }
    }

    fn counting_search(
        target: f64,
        measure_final_quality: bool,
    ) -> (FixedRatioSearch, Arc<CountingCodec>) {
        let codec = Arc::new(CountingCodec::new(smooth_field()));
        let config = SearchConfig {
            regions: 4,
            max_iterations: 16,
            threads: 1, // serial: the region race is deterministic
            measure_final_quality,
            ..SearchConfig::new(target, 0.1)
        };
        let search = FixedRatioSearch::new(codec.clone() as Arc<dyn Compressor>, config);
        (search, codec)
    }

    #[test]
    fn hinted_hit_costs_exactly_one_compression() {
        let dataset = smooth_field();
        for mfq in [false, true] {
            let (search, codec) = counting_search(10.0, mfq);
            let hint = SearchHint::converged(CountingCodec::bound_for(10.0), HintSource::TuneCache);
            let outcome = search.run_with_hint(&dataset, Some(&hint));
            assert!(outcome.feasible && !outcome.retrained);
            // The probe IS the verify pass: one compressor call total, and
            // `evaluations` reports that true count (the pre-refactor code
            // spent a second, uncounted call on the quality pass).
            assert_eq!(outcome.evaluations, 1, "mfq={mfq}");
            assert_eq!(codec.calls.load(Ordering::Relaxed), 1, "mfq={mfq}");
            assert_eq!(outcome.best.quality.is_some(), mfq);
            let report = outcome.hint.expect("hinted run reports its hint");
            assert!(report.hit);
            assert_eq!(report.probes, 1);
            assert_eq!(report.source, HintSource::TuneCache);
            assert!(outcome.regions.is_empty());
        }
    }

    #[test]
    fn near_miss_counts_probe_plus_training_exactly() {
        let dataset = smooth_field();
        let (search, codec) = counting_search(10.0, false);
        // A hint whose ratio (≈1) is far outside the window: the probe runs,
        // misses, and the full training race follows.
        let hint = SearchHint::converged(CountingCodec::LO, HintSource::External);
        let outcome = search.run_with_hint(&dataset, Some(&hint));
        assert!(outcome.retrained && outcome.feasible);
        let report = outcome.hint.expect("missed hint still reported");
        assert!(!report.hit);
        assert_eq!(report.probes, 1);
        // Every compress call — the missed probe AND the training
        // evaluations — is accounted for, exactly.
        assert_eq!(outcome.evaluations, codec.calls.load(Ordering::Relaxed));
        assert!(outcome.evaluations > 1);
    }

    #[test]
    fn cold_run_counts_every_compression_exactly() {
        let dataset = smooth_field();
        let (search, codec) = counting_search(10.0, false);
        let outcome = search.run(&dataset);
        assert!(outcome.retrained);
        assert!(outcome.hint.is_none(), "cold runs carry no hint report");
        assert_eq!(outcome.evaluations, codec.calls.load(Ordering::Relaxed));
    }

    #[test]
    fn hint_bracket_narrows_the_fallback_range() {
        let dataset = smooth_field();
        let (search, _) = counting_search(10.0, false);
        let answer = CountingCodec::bound_for(10.0);
        // A missing hint bound with a tight bracket around the answer: the
        // fallback race must stay inside the bracket and still converge.
        let hint = SearchHint::seed(CountingCodec::LO, HintSource::Analytic)
            .with_bracket(answer / 10.0, answer * 10.0);
        let outcome = search.run_with_hint(&dataset, Some(&hint));
        assert!(outcome.feasible);
        for region in &outcome.regions {
            assert!(region.region.lower >= answer / 10.0 * (1.0 - 1e-9));
            assert!(region.region.upper <= answer * 10.0 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn predictor_round_trip_learns_and_reuses() {
        let dataset = smooth_field();
        let (search, codec) = counting_search(10.0, false);
        let predictor = LastConverged::new(HintSource::WarmStart);
        let first = search.run_with_predictor(&dataset, &predictor);
        assert!(first.retrained && first.feasible);
        assert_eq!(predictor.bound(), Some(first.error_bound));
        let before = codec.calls.load(Ordering::Relaxed);
        let second = search.run_with_predictor(&dataset, &predictor);
        assert!(!second.retrained);
        assert_eq!(second.evaluations, 1);
        assert_eq!(codec.calls.load(Ordering::Relaxed), before + 1);
        assert_eq!(second.hint.unwrap().source, HintSource::WarmStart);
    }

    #[test]
    fn cancelled_token_stops_training_before_it_starts() {
        let dataset = smooth_field();
        let (search, codec) = counting_search(10.0, false);
        let token = CancelToken::new();
        token.cancel();
        let outcome = search.with_cancel(token).run(&dataset);
        assert!(outcome.deadline_hit);
        assert!(!outcome.feasible);
        // Bounded by the single best-effort measurement, not a full race.
        assert!(codec.calls.load(Ordering::Relaxed) <= 1);
    }

    #[test]
    fn expired_deadline_returns_best_so_far() {
        let dataset = smooth_field();
        let (search, codec) = counting_search(10.0, false);
        let token = CancelToken::with_timeout(Duration::ZERO);
        let search = search.with_cancel(token);
        let outcome = search.run(&dataset);
        assert!(outcome.deadline_hit);
        let spent = codec.calls.load(Ordering::Relaxed);
        // Cancellation latency is bounded by one evaluation per runner plus
        // the final measurement — far below the full race budget.
        assert!(spent <= 4, "spent {spent} evaluations after expiry");
    }

    #[test]
    fn unexpired_token_leaves_search_untouched() {
        let dataset = smooth_field();
        let (search, _) = counting_search(10.0, false);
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        let outcome = search.with_cancel(token).run(&dataset);
        assert!(outcome.feasible);
        assert!(!outcome.deadline_hit);
    }

    #[test]
    fn config_builders() {
        let c = SearchConfig::new(50.0, 0.05)
            .with_regions(6)
            .with_threads(3)
            .with_max_error(0.5);
        assert_eq!(c.regions, 6);
        assert_eq!(c.threads, 3);
        assert_eq!(c.max_error_bound, Some(0.5));
        assert_eq!(c.worker_count(), 3);
        assert_eq!(SearchConfig::new(10.0, 0.1).with_regions(0).regions, 1);
    }
}
