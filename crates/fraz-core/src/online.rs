//! Online (in-situ) fixed-ratio control — the paper's second future-work
//! item (§VII).
//!
//! The offline orchestrator can afford a full region-parallel search per
//! field because the archive already exists on disk.  An *in-situ* producer
//! (a running simulation or an instrument) sees one time-step at a time and
//! can only spare a handful of extra compressions per step.  The
//! [`OnlineController`] provides that mode:
//!
//! * the first step (and any step whose ratio drifts outside a *soft* window)
//!   runs a bounded search seeded at the current bound,
//! * in steady state every step costs exactly one compression: the current
//!   bound is applied and a multiplicative correction nudges it whenever the
//!   achieved ratio drifts, exploiting the fact that the ratio is locally an
//!   increasing function of the bound even though it is globally spiky,
//! * the user's error ceiling `U` is never exceeded, and the controller
//!   reports per-step telemetry so the producer can react (e.g. fall back to
//!   a different compressor if the target keeps being infeasible).

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;
use fraz_pressio::Compressor;

use crate::hint::{BoundPredictor, HintSource, SearchHint};
use crate::loss::RatioLoss;
use crate::search::{FixedRatioSearch, SearchConfig};

/// Configuration of the online controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineControllerConfig {
    /// Target compression ratio.
    pub target_ratio: f64,
    /// Hard acceptance window (the offline ε): a step is "on target" when its
    /// ratio is within this relative deviation.
    pub tolerance: f64,
    /// Soft window: drift beyond this relative deviation triggers a
    /// re-search on the next step instead of a proportional nudge.
    pub resync_tolerance: f64,
    /// Maximum error bound (`U`) the controller may ever use.
    pub max_error_bound: Option<f64>,
    /// Proportional gain of the per-step correction (0 disables nudging).
    pub gain: f64,
    /// Search settings used for the initial calibration and re-syncs; keep
    /// the budget small — this runs inside the producer's critical path.
    pub calibration: SearchConfig,
}

impl OnlineControllerConfig {
    /// A controller for the given target ratio with defaults tuned for a
    /// handful of calibration compressions and one compression per step in
    /// steady state.
    pub fn new(target_ratio: f64, tolerance: f64) -> Self {
        let calibration = SearchConfig {
            regions: 4,
            max_iterations: 12,
            threads: 4,
            measure_final_quality: false,
            ..SearchConfig::new(target_ratio, tolerance)
        };
        Self {
            target_ratio,
            tolerance,
            resync_tolerance: tolerance * 3.0,
            max_error_bound: None,
            gain: 0.6,
            calibration,
        }
    }
}

/// Telemetry for one streamed time-step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineStepReport {
    /// Time-step index (in arrival order).
    pub step: usize,
    /// Error bound used for this step.
    pub error_bound: f64,
    /// Achieved compression ratio.
    pub compression_ratio: f64,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// True when the ratio landed inside the hard acceptance window.
    pub on_target: bool,
    /// Number of compressions spent on this step (1 in steady state).
    pub compressions: usize,
    /// True when this step triggered a full re-calibration search.
    pub recalibrated: bool,
    /// Wall-clock time spent on this step.
    pub elapsed: Duration,
}

/// Streaming fixed-ratio controller.
pub struct OnlineController {
    search: FixedRatioSearch,
    config: OnlineControllerConfig,
    loss: RatioLoss,
    current_bound: Option<f64>,
    steps_processed: usize,
    history: Vec<OnlineStepReport>,
    predictor: Option<Arc<dyn BoundPredictor>>,
}

impl OnlineController {
    /// Create a controller over the given compressor backend (owned box or
    /// shared handle).
    pub fn new(compressor: impl Into<Arc<dyn Compressor>>, config: OnlineControllerConfig) -> Self {
        let mut calibration = config.calibration.clone();
        calibration.max_error_bound = config.max_error_bound;
        let loss = RatioLoss::new(config.target_ratio, config.tolerance);
        Self {
            search: FixedRatioSearch::new(compressor, calibration),
            config,
            loss,
            current_bound: None,
            steps_processed: 0,
            history: Vec::new(),
            predictor: None,
        }
    }

    /// Seed the first-step calibration from an external [`BoundPredictor`]
    /// (e.g. the `fraz-tune` cache), which then observes every calibration
    /// and re-sync result.
    pub fn with_predictor(mut self, predictor: Arc<dyn BoundPredictor>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// Run this controller's calibration and re-sync searches on `pool`
    /// instead of the process-wide [`fraz_pool::global`] pool.  An in-situ
    /// producer typically owns one small pool sized to the cores it can
    /// spare and points every controller (one per field) at it.
    pub fn with_pool(mut self, pool: Arc<fraz_pool::Pool>) -> Self {
        self.search = self.search.with_pool(pool);
        self
    }

    /// The bound the controller will try first on the next step, if any.
    pub fn current_bound(&self) -> Option<f64> {
        self.current_bound
    }

    /// Telemetry for every step processed so far.
    pub fn history(&self) -> &[OnlineStepReport] {
        &self.history
    }

    /// Fraction of processed steps that landed inside the acceptance window.
    pub fn on_target_rate(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().filter(|s| s.on_target).count() as f64 / self.history.len() as f64
    }

    /// Average number of compressions per processed step (1.0 is the ideal
    /// steady state; the first step and re-syncs raise it).
    pub fn mean_compressions_per_step(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(|s| s.compressions).sum::<usize>() as f64
            / self.history.len() as f64
    }

    fn clamp_bound(&self, bound: f64, dataset: &Dataset) -> f64 {
        let (lower, mut upper) = self.search.compressor().bound_range(dataset);
        if let Some(u) = self.config.max_error_bound {
            if u > lower {
                upper = upper.min(u);
            }
        }
        bound.clamp(lower, upper)
    }

    /// Compress one arriving time-step, returning the compressed bytes and
    /// the step's telemetry.
    pub fn compress_step(&mut self, dataset: &Dataset) -> (Vec<u8>, OnlineStepReport) {
        let start = Instant::now();
        let step = self.steps_processed;
        self.steps_processed += 1;
        let mut compressions = 0usize;
        let mut recalibrated = false;

        // Decide the bound for this step.
        let mut bound = match self.current_bound {
            Some(b) => self.clamp_bound(b, dataset),
            None => {
                // First step: full (bounded) calibration search, seeded by
                // the external predictor when one is installed.
                recalibrated = true;
                let outcome = match &self.predictor {
                    Some(predictor) => self.search.run_with_predictor(dataset, predictor.as_ref()),
                    None => self.search.run(dataset),
                };
                compressions += outcome.evaluations;
                self.clamp_bound(outcome.error_bound, dataset)
            }
        };

        // Compress at the chosen bound.
        let mut outcome = self
            .search
            .compressor()
            .evaluate(dataset, bound, false)
            .unwrap_or_else(|_| {
                // An invalid bound (e.g. after clamping on a degenerate
                // field) falls back to the lower end of the valid range.
                let (lower, _) = self.search.compressor().bound_range(dataset);
                bound = lower;
                self.search
                    .compressor()
                    .evaluate(dataset, lower, false)
                    .expect("lower end of the bound range is always valid")
            });
        compressions += 1;

        // If the ratio drifted far outside the soft window, re-calibrate now
        // (this is the expensive path; it should be rare).
        let soft = RatioLoss::new(self.config.target_ratio, self.config.resync_tolerance);
        if !soft.is_acceptable(outcome.compression_ratio) {
            recalibrated = true;
            // Seed the re-search at the current bound — the probe verifies
            // whether the drift was a one-step fluke before the full race.
            let hint = SearchHint::converged(bound, HintSource::Resync);
            let searched = self.search.run_with_hint(dataset, Some(&hint));
            if let Some(predictor) = &self.predictor {
                let query = self.search.hint_query(dataset);
                predictor.observe(&query, searched.error_bound, searched.feasible);
            }
            compressions += searched.evaluations;
            bound = self.clamp_bound(searched.error_bound, dataset);
            outcome = self
                .search
                .compressor()
                .evaluate(dataset, bound, false)
                .unwrap_or(outcome);
            compressions += 1;
        }

        let on_target = self.loss.is_acceptable(outcome.compression_ratio);

        // Proportional correction for the next step: if the ratio is high the
        // bound can shrink (better fidelity), if it is low the bound grows.
        let next_bound = if self.config.gain > 0.0 && outcome.compression_ratio > 0.0 {
            let error = self.config.target_ratio / outcome.compression_ratio;
            bound * error.powf(self.config.gain)
        } else {
            bound
        };
        self.current_bound = Some(self.clamp_bound(next_bound, dataset));

        let compressed = self
            .search
            .compressor()
            .compress(dataset, bound)
            .unwrap_or_default();
        let report = OnlineStepReport {
            step,
            error_bound: bound,
            compression_ratio: outcome.compression_ratio,
            compressed_bytes: compressed.len(),
            on_target,
            compressions,
            recalibrated,
            elapsed: start.elapsed(),
        };
        self.history.push(report.clone());
        (compressed, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::synthetic;
    use fraz_pressio::registry;

    fn controller(target: f64) -> OnlineController {
        OnlineController::new(
            registry::build_default("sz").unwrap(),
            OnlineControllerConfig::new(target, 0.1),
        )
    }

    #[test]
    fn stream_stays_on_target_with_one_compression_per_step() {
        let app = synthetic::hurricane(6, 16, 16, 8, 3);
        let mut ctl = controller(10.0);
        for t in 0..app.timesteps() {
            let frame = app.field("TCf", t);
            let (compressed, report) = ctl.compress_step(&frame);
            assert_eq!(report.step, t);
            assert!(!compressed.is_empty());
            assert!(report.compression_ratio > 1.0);
        }
        assert!(ctl.on_target_rate() >= 0.5, "rate {}", ctl.on_target_rate());
        // Steady state should be cheap: well under the ~50+ compressions a
        // full search costs, averaged over the stream.
        assert!(
            ctl.mean_compressions_per_step() < 20.0,
            "{} compressions/step",
            ctl.mean_compressions_per_step()
        );
        // After the calibration step, most steps cost exactly one compression.
        let steady: Vec<_> = ctl.history().iter().skip(1).collect();
        let single = steady.iter().filter(|s| s.compressions == 1).count();
        assert!(single * 2 >= steady.len(), "{single}/{}", steady.len());
    }

    #[test]
    fn controller_never_exceeds_the_error_ceiling() {
        let app = synthetic::cesm(24, 32, 4, 9);
        let ceiling = app.field("FLDSC", 0).stats().value_range() * 1e-3;
        let mut config = OnlineControllerConfig::new(50.0, 0.1);
        config.max_error_bound = Some(ceiling);
        let mut ctl = OnlineController::new(registry::build_default("sz").unwrap(), config);
        for t in 0..app.timesteps() {
            let frame = app.field("FLDSC", t);
            let (_, report) = ctl.compress_step(&frame);
            assert!(report.error_bound <= ceiling * (1.0 + 1e-9));
        }
    }

    #[test]
    fn first_step_calibrates_and_later_steps_reuse() {
        let app = synthetic::nyx(12, 12, 12, 3, 5);
        let mut ctl = controller(8.0);
        let (_, first) = ctl.compress_step(&app.field("temperature", 0));
        assert!(first.recalibrated);
        assert!(first.compressions > 1);
        let (_, second) = ctl.compress_step(&app.field("temperature", 1));
        // The second step starts from the calibrated bound.
        assert!(second.compressions < first.compressions);
        assert!(ctl.current_bound().is_some());
    }

    #[test]
    fn controller_runs_on_a_dedicated_pool() {
        let pool = Arc::new(fraz_pool::Pool::new(2));
        let app = synthetic::hurricane(4, 12, 12, 2, 21);
        let mut ctl = OnlineController::new(
            registry::build_default("sz").unwrap(),
            OnlineControllerConfig::new(10.0, 0.1),
        )
        .with_pool(pool);
        for t in 0..app.timesteps() {
            let (compressed, report) = ctl.compress_step(&app.field("TCf", t));
            assert!(!compressed.is_empty());
            assert!(report.compression_ratio > 1.0);
        }
    }

    #[test]
    fn telemetry_accumulates() {
        let app = synthetic::hurricane(4, 12, 12, 3, 8);
        let mut ctl = controller(12.0);
        assert_eq!(ctl.history().len(), 0);
        assert_eq!(ctl.on_target_rate(), 0.0);
        for t in 0..3 {
            ctl.compress_step(&app.field("Pf", t));
        }
        assert_eq!(ctl.history().len(), 3);
        assert!(ctl.mean_compressions_per_step() >= 1.0);
    }
}
