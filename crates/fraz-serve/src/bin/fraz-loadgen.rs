//! `fraz-loadgen` — drive a fraz-serve instance with open-loop load.
//!
//! Without `--addr` it self-hosts a server on a loopback port (the CI
//! smoke path: one command, no orchestration), optionally with `--chaos`
//! store-fault injection; with `--addr` it targets an external server.
//! The aggregated report prints human-readably on stdout and, with
//! `--out`, appends the `{"group":"service",...}` JSONL row that
//! `scripts/perf_smoke_check.py` floor-checks against
//! `baselines/service.jsonl`.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use fraz_serve::loadgen::{self, LoadgenConfig};
use fraz_serve::server::{self, ServeConfig};
use fraz_store::FaultConfig;

const USAGE: &str = "fraz-loadgen — open-loop load generation for fraz-serve

USAGE:
    fraz-loadgen [OPTIONS]

OPTIONS:
    --addr <HOST:PORT>    target an external server (default: self-host one)
    --clients <N>         concurrent connections (default 4)
    --rate <HZ>           total arrival rate, jobs/s (default 0 = closed loop)
    --duration-ms <MS>    issuing window (default 3000)
    --psnr-frac <F>       fraction of jobs that are PSNR tunes (default 0.25)
    --target-ratio <R>    fixed-ratio target (default 8.0)
    --target-psnr <DB>    fixed-PSNR target (default 50.0)
    --deadline-ms <MS>    per-job deadline, 0 = none (default 0)
    --side <N>            square field edge length (default 64)
    --codec <NAME>        registry backend (default sz)
    --seed <N>            arrival/mix seed (default 20200118)
    --id <NAME>           JSONL row id (default loadgen)
    --out <PATH>          append the JSONL row to this file
    --chaos <RATE>        self-hosted only: inject transient store faults
    --max-inflight <N>    self-hosted only: admission job budget
    --workers <N>         self-hosted only: search pool threads";

fn parse() -> Result<
    (
        LoadgenConfig,
        Option<String>,
        Option<String>,
        String,
        f64,
        usize,
        usize,
    ),
    String,
> {
    let mut config = LoadgenConfig::default();
    let mut addr = None;
    let mut out = None;
    let mut id = "loadgen".to_string();
    let mut chaos = 0.0;
    let mut max_inflight = 0usize;
    let mut workers = 0usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--clients" => config.clients = parse_num(&value("--clients")?, "--clients")?,
            "--rate" => config.rate_hz = parse_num(&value("--rate")?, "--rate")?,
            "--duration-ms" => {
                let ms: u64 = parse_num(&value("--duration-ms")?, "--duration-ms")?;
                config.duration = Duration::from_millis(ms);
            }
            "--psnr-frac" => {
                config.psnr_fraction = parse_num(&value("--psnr-frac")?, "--psnr-frac")?
            }
            "--target-ratio" => {
                config.target_ratio = parse_num(&value("--target-ratio")?, "--target-ratio")?
            }
            "--target-psnr" => {
                config.target_psnr = parse_num(&value("--target-psnr")?, "--target-psnr")?
            }
            "--deadline-ms" => {
                config.deadline_ms = parse_num(&value("--deadline-ms")?, "--deadline-ms")?
            }
            "--side" => config.side = parse_num(&value("--side")?, "--side")?,
            "--codec" => config.codec = value("--codec")?,
            "--seed" => config.seed = parse_num(&value("--seed")?, "--seed")?,
            "--id" => id = value("--id")?,
            "--out" => out = Some(value("--out")?),
            "--chaos" => chaos = parse_num(&value("--chaos")?, "--chaos")?,
            "--max-inflight" => {
                max_inflight = parse_num(&value("--max-inflight")?, "--max-inflight")?
            }
            "--workers" => workers = parse_num(&value("--workers")?, "--workers")?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok((config, addr, out, id, chaos, max_inflight, workers))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: cannot parse `{raw}`"))
}

fn main() -> ExitCode {
    let (mut config, addr, out, id, chaos, max_inflight, workers) = match parse() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("fraz-loadgen: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Self-host unless an external target was named.
    let server = if let Some(addr) = addr {
        config.addr = addr;
        None
    } else {
        let mut serve = ServeConfig {
            workers,
            ..ServeConfig::default()
        };
        if chaos > 0.0 {
            serve.store_faults = Some(FaultConfig::transient(chaos, config.seed));
        }
        if max_inflight > 0 {
            serve.admission.max_jobs = max_inflight;
        }
        let handle = match server::start(serve) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("fraz-loadgen: cannot start a server: {e}");
                return ExitCode::from(1);
            }
        };
        config.addr = handle.local_addr().to_string();
        eprintln!("fraz-loadgen: self-hosted server on {}", config.addr);
        Some(handle)
    };

    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fraz-loadgen: {e}");
            return ExitCode::from(1);
        }
    };

    if let Some(handle) = server {
        let drain = handle.join();
        eprintln!(
            "fraz-loadgen: server drained in {:.0} ms ({} cancelled)",
            drain.drain_elapsed.as_secs_f64() * 1e3,
            drain.cancelled_jobs
        );
    }

    println!("{}", report.render());
    let row = report.jsonl_row(&id, &config);
    println!("{row}");
    if let Some(out) = out {
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&out)
            .and_then(|mut f| writeln!(f, "{row}"));
        if let Err(e) = appended {
            eprintln!("fraz-loadgen: cannot write `{out}`: {e}");
            return ExitCode::from(1);
        }
    }

    if report.ok == 0 {
        eprintln!("fraz-loadgen: no job completed successfully");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
