//! The service: blocking TCP accept loop, per-connection reader threads,
//! and the robustness envelope around every job.
//!
//! A job's lifecycle is **admit → queue → search → reply** (see
//! ARCHITECTURE.md for the full map):
//!
//! 1. **admit** — the decoded request passes [`Admission`]: a global
//!    in-flight job/byte budget plus a per-client quota.  Over budget,
//!    the job is shed with a typed `Overloaded{retry_after}` before its
//!    payload touches any subsystem.  During drain, new work gets a typed
//!    `Draining` instead.
//! 2. **queue** — admitted search work runs on the shared
//!    [`fraz_pool::Pool`]; connection threads provide request
//!    concurrency, the pool provides compute parallelism.
//! 3. **search** — every search job carries a [`CancelToken`] armed with
//!    its deadline, checked cooperatively between compressor
//!    evaluations; a fired deadline returns `DeadlineExceeded` with the
//!    best-so-far bound.  Job panics are caught and answered with a
//!    typed `Internal` reply — the server outlives its jobs.
//! 4. **reply** — exactly one typed response per request frame, success
//!    or failure.
//!
//! Dependencies degrade instead of failing: the durable store sits under
//! a [`RetryStore`] (jittered backoff on transient errors) with an
//! in-memory fallback once the backend permanently fails, and a broken
//! tune cache means cold searches, not errors.  Shutdown is a *drain*:
//! stop admitting, let in-flight jobs finish under the drain deadline,
//! cancel stragglers at the deadline, flush the tune cache, and report
//! what happened.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fraz_core::{
    CancelToken, FixedQualitySearch, FixedRatioSearch, QualityMetric, QualitySearchConfig,
    SearchConfig,
};
use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::{registry, Compressor};
use fraz_store::{FaultConfig, FaultyStore, FsStore, MemoryStore, RetryPolicy, RetryStore, Store};
use fraz_tune::{CachePredictor, TuneCache};

use crate::admission::{Admission, AdmissionConfig};
use crate::proto::{read_frame, write_frame, ProtoError, Request, Response, StatusBody};

/// Everything the server needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Search pool threads (`0` = available parallelism, capped at 8).
    pub workers: usize,
    /// Ceiling on one frame's payload bytes.
    pub max_frame_len: usize,
    /// Admission budgets.
    pub admission: AdmissionConfig,
    /// Deadline applied to search jobs that carry none (`0` = unlimited).
    pub default_deadline_ms: u32,
    /// How long a drain may wait for in-flight jobs before cancelling
    /// them.
    pub drain_deadline: Duration,
    /// Durable store root (`None` = in-memory only).
    pub store_dir: Option<PathBuf>,
    /// Tune-cache directory (`None` = cold searches).
    pub tune_cache_dir: Option<PathBuf>,
    /// Retry policy over the durable store.
    pub retry: RetryPolicy,
    /// Optional chaos schedule injected under the retry layer (the
    /// `--chaos` flag and the chaos suites).
    pub store_faults: Option<FaultConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_frame_len: crate::proto::MAX_FRAME_LEN,
            admission: AdmissionConfig::default(),
            default_deadline_ms: 0,
            drain_deadline: Duration::from_secs(5),
            store_dir: None,
            tune_cache_dir: None,
            retry: RetryPolicy::default(),
            store_faults: None,
        }
    }
}

/// What the drain accomplished; returned by [`ServerHandle::join`].
#[derive(Debug, Clone, PartialEq)]
pub struct DrainReport {
    /// All in-flight jobs finished before the drain deadline.
    pub drained_within_deadline: bool,
    /// Jobs cancelled at the drain deadline (they answered
    /// `DeadlineExceeded` with best-so-far results).
    pub cancelled_jobs: usize,
    /// How long the drain took.
    pub drain_elapsed: Duration,
    /// The tune cache flushed cleanly (vacuously true without a cache).
    pub tune_cache_flushed: bool,
    /// Final counters.
    pub status: StatusBody,
}

#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    deadline: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    drained_replies: AtomicU64,
}

/// The store stack: retry over the (possibly chaos-wrapped) durable
/// backend, with an in-memory fallback the server degrades to when the
/// backend fails permanently.
struct StoreStack {
    primary: RetryStore<Box<dyn Store>>,
    fallback: MemoryStore,
    degraded: AtomicBool,
    /// Keys whose latest successful write lives in the fallback.  The
    /// primary may hold a stale or *torn* copy of these (a failed durable
    /// put can leave a prefix behind), so reads must prefer the fallback
    /// until a durable put succeeds again.
    fallback_keys: Mutex<std::collections::HashSet<String>>,
}

impl StoreStack {
    fn put(&self, key: &str, value: &[u8]) -> Response {
        match self.primary.put(key, value) {
            Ok(()) => {
                self.fallback_keys
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .remove(key);
                Response::Stored { degraded: false }
            }
            Err(primary_err) => match self.fallback.put(key, value) {
                Ok(()) => {
                    self.degraded.store(true, Ordering::Relaxed);
                    self.fallback_keys
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .insert(key.to_string());
                    Response::Stored { degraded: true }
                }
                Err(_) => Response::IoFailed {
                    transient: primary_err.is_transient(),
                    message: primary_err.to_string(),
                },
            },
        }
    }

    fn get(&self, key: &str) -> Response {
        let prefer_fallback = self
            .fallback_keys
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .contains(key);
        if prefer_fallback {
            if let Ok(blob) = self.fallback.get(key) {
                return Response::Blob(blob);
            }
        }
        match self.primary.get(key) {
            Ok(blob) => Response::Blob(blob),
            Err(primary_err) => match self.fallback.get(key) {
                Ok(blob) => Response::Blob(blob),
                Err(_) => match primary_err {
                    fraz_store::StoreError::NotFound(_) => Response::BadRequest {
                        message: format!("no object stored under `{key}`"),
                    },
                    other => Response::IoFailed {
                        transient: other.is_transient(),
                        message: other.to_string(),
                    },
                },
            },
        }
    }
}

struct Inner {
    config: ServeConfig,
    pool: Arc<Pool>,
    admission: Arc<Admission>,
    store: StoreStack,
    tune: Option<Arc<TuneCache>>,
    tune_degraded: AtomicBool,
    compressors: Mutex<HashMap<String, Arc<dyn Compressor>>>,
    counters: Counters,
    draining: AtomicBool,
    next_job: AtomicU64,
    active_tokens: Mutex<HashMap<u64, CancelToken>>,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn status_body(&self) -> StatusBody {
        StatusBody {
            draining: self.stopping(),
            degraded: self.store.degraded.load(Ordering::Relaxed)
                || self.tune_degraded.load(Ordering::Relaxed),
            inflight_jobs: self.admission.inflight_jobs() as u32,
            inflight_bytes: self.admission.inflight_bytes(),
            jobs_ok: self.counters.ok.load(Ordering::Relaxed),
            jobs_shed: self.admission.shed(),
            jobs_deadline: self.counters.deadline.load(Ordering::Relaxed),
            jobs_rejected: self.counters.rejected.load(Ordering::Relaxed),
            jobs_failed: self.counters.failed.load(Ordering::Relaxed),
        }
    }

    fn compressor(&self, codec: &str) -> Result<Arc<dyn Compressor>, Response> {
        let mut cache = self.compressors.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(found) = cache.get(codec) {
            return Ok(Arc::clone(found));
        }
        match registry::build_arc(codec, &fraz_pressio::Options::new()) {
            Ok(built) => {
                cache.insert(codec.to_string(), Arc::clone(&built));
                Ok(built)
            }
            Err(e) => Err(Response::BadRequest {
                message: e.to_string(),
            }),
        }
    }

    /// Arm a token for one search job: the request deadline, else the
    /// configured default, else un-expiring (but still drain-cancellable).
    fn job_token(&self, deadline_ms: u32) -> (u64, CancelToken) {
        let ms = if deadline_ms > 0 {
            deadline_ms
        } else {
            self.config.default_deadline_ms
        };
        let token = if ms > 0 {
            CancelToken::with_timeout(Duration::from_millis(ms as u64))
        } else {
            CancelToken::new()
        };
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.active_tokens
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id, token.clone());
        (id, token)
    }

    fn finish_job(&self, id: u64) {
        self.active_tokens
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&id);
    }

    /// One request frame in, exactly one typed response out.
    fn handle_payload(&self, payload: &[u8], client: u64) -> Response {
        let request = match Request::decode(payload) {
            Ok(request) => request,
            Err(e) => {
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Response::BadRequest {
                    message: e.to_string(),
                };
            }
        };
        if matches!(request, Request::Status) {
            return Response::Status(self.status_body());
        }
        if self.stopping() {
            self.counters
                .drained_replies
                .fetch_add(1, Ordering::Relaxed);
            return Response::Draining;
        }
        let permit = match self.admission.try_admit(client, payload.len() as u64) {
            Ok(permit) => permit,
            Err(overload) => {
                return Response::Overloaded {
                    retry_after_ms: overload.retry_after.as_millis() as u32,
                }
            }
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(request)));
        drop(permit);
        let response = match outcome {
            Ok(response) => response,
            Err(panic) => {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "job panicked".to_string());
                Response::Internal { message }
            }
        };
        match &response {
            Response::Compressed { .. }
            | Response::Dataset(_)
            | Response::Tuned { .. }
            | Response::Stored { .. }
            | Response::Blob(_) => self.counters.ok.fetch_add(1, Ordering::Relaxed),
            Response::DeadlineExceeded { .. } => {
                self.counters.deadline.fetch_add(1, Ordering::Relaxed)
            }
            Response::BadRequest { .. } => self.counters.rejected.fetch_add(1, Ordering::Relaxed),
            Response::IoFailed { .. } | Response::Internal { .. } => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed)
            }
            _ => 0,
        };
        response
    }

    fn execute(&self, request: Request) -> Response {
        match request {
            Request::Status => Response::Status(self.status_body()),
            Request::Compress {
                deadline_ms,
                target_ratio,
                tolerance,
                codec,
                dataset,
            } => self.run_compress(deadline_ms, target_ratio, tolerance, &codec, &dataset),
            Request::TunePsnr {
                deadline_ms,
                target_psnr,
                codec,
                dataset,
            } => self.run_tune_psnr(deadline_ms, target_psnr, &codec, &dataset),
            Request::Decompress { codec, blob } => {
                let compressor = match self.compressor(&codec) {
                    Ok(compressor) => compressor,
                    Err(response) => return response,
                };
                match compressor.decompress(&blob) {
                    Ok(dataset) => Response::Dataset(dataset),
                    Err(e) => Response::BadRequest {
                        message: format!("blob does not decompress: {e}"),
                    },
                }
            }
            Request::PutStore { key, blob } => self.store.put(&key, &blob),
            Request::GetStore { key } => self.store.get(&key),
        }
    }

    fn check_search_params(params: &[(&str, f64)]) -> Option<Response> {
        for (name, value) in params {
            if !value.is_finite() || *value <= 0.0 {
                return Some(Response::BadRequest {
                    message: format!("{name} must be positive and finite, got {value}"),
                });
            }
        }
        None
    }

    fn check_dims(compressor: &dyn Compressor, dataset: &Dataset) -> Option<Response> {
        if compressor.supports_dims(&dataset.dims) {
            None
        } else {
            Some(Response::BadRequest {
                message: format!(
                    "codec `{}` does not support a rank-{} grid",
                    compressor.name(),
                    dataset.dims.ndims()
                ),
            })
        }
    }

    fn run_compress(
        &self,
        deadline_ms: u32,
        target_ratio: f64,
        tolerance: f64,
        codec: &str,
        dataset: &Dataset,
    ) -> Response {
        if let Some(bad) =
            Self::check_search_params(&[("target ratio", target_ratio), ("tolerance", tolerance)])
        {
            return bad;
        }
        let compressor = match self.compressor(codec) {
            Ok(compressor) => compressor,
            Err(response) => return response,
        };
        if let Some(bad) = Self::check_dims(compressor.as_ref(), dataset) {
            return bad;
        }
        let (job_id, token) = self.job_token(deadline_ms);
        let search = FixedRatioSearch::new(
            Arc::clone(&compressor),
            SearchConfig::new(target_ratio, tolerance),
        )
        .with_pool(Arc::clone(&self.pool))
        .with_cancel(token);
        let outcome = match &self.tune {
            Some(cache) => {
                search.run_with_predictor(dataset, &CachePredictor::new(Arc::clone(cache)))
            }
            None => search.run(dataset),
        };
        self.finish_job(job_id);
        if outcome.deadline_hit {
            return Response::DeadlineExceeded {
                error_bound: outcome.error_bound,
                achieved: outcome.best.compression_ratio,
                evaluations: outcome.evaluations as u32,
            };
        }
        match compressor.compress(dataset, outcome.error_bound) {
            Ok(blob) => Response::Compressed {
                error_bound: outcome.error_bound,
                ratio: outcome.best.compression_ratio,
                feasible: outcome.feasible,
                evaluations: outcome.evaluations as u32,
                blob,
            },
            Err(e) => Response::Internal {
                message: format!("compression at the chosen bound failed: {e}"),
            },
        }
    }

    fn run_tune_psnr(
        &self,
        deadline_ms: u32,
        target_psnr: f64,
        codec: &str,
        dataset: &Dataset,
    ) -> Response {
        if let Some(bad) = Self::check_search_params(&[("target PSNR", target_psnr)]) {
            return bad;
        }
        let compressor = match self.compressor(codec) {
            Ok(compressor) => compressor,
            Err(response) => return response,
        };
        if let Some(bad) = Self::check_dims(compressor.as_ref(), dataset) {
            return bad;
        }
        let (job_id, token) = self.job_token(deadline_ms);
        let search = FixedQualitySearch::new(
            Arc::clone(&compressor),
            QualitySearchConfig::new(QualityMetric::PsnrAtLeast(target_psnr)),
        )
        .with_pool(Arc::clone(&self.pool))
        .with_cancel(token);
        let outcome = match &self.tune {
            Some(cache) => {
                search.run_with_predictor(dataset, &CachePredictor::new(Arc::clone(cache)))
            }
            None => search.run(dataset),
        };
        self.finish_job(job_id);
        let achieved = outcome
            .best
            .quality
            .as_ref()
            .map(|q| q.psnr)
            .unwrap_or(f64::NAN);
        if outcome.deadline_hit {
            return Response::DeadlineExceeded {
                error_bound: outcome.error_bound,
                achieved,
                evaluations: outcome.evaluations as u32,
            };
        }
        Response::Tuned {
            error_bound: outcome.error_bound,
            achieved_psnr: achieved,
            satisfiable: outcome.satisfiable,
            evaluations: outcome.evaluations as u32,
        }
    }
}

/// Read one frame, returning `Ok(None)` when the connection should close
/// instead (peer hung up, or the server is draining and the line is
/// idle).  Read timeouts while idle poll the drain flag; timeouts
/// mid-frame keep accumulating — a slow sender is not an error.
fn read_frame_or_close(
    stream: &mut TcpStream,
    inner: &Inner,
) -> Result<Option<Vec<u8>>, ProtoError> {
    struct PollingReader<'a> {
        stream: &'a mut TcpStream,
        inner: &'a Inner,
        stop: bool,
    }
    impl std::io::Read for PollingReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                match self.stream.read(buf) {
                    Ok(n) => return Ok(n),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        // The 50 ms read timeout is the drain poll: once
                        // the server is stopping, stop waiting for bytes
                        // (idle or mid-frame) and close.
                        if self.inner.stopping() {
                            self.stop = true;
                            return Ok(0);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let mut reader = PollingReader {
        stream,
        inner,
        stop: false,
    };
    match read_frame(&mut reader, inner.config.max_frame_len) {
        Ok(payload) => Ok(Some(payload)),
        Err(ProtoError::Closed) => Ok(None),
        Err(e) if reader.stop => {
            // The synthetic EOF from the drain poll surfaces as
            // Closed/Truncated; either way the connection just closes.
            let _ = e;
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

fn connection_loop(inner: Arc<Inner>, mut stream: TcpStream, client: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    loop {
        match read_frame_or_close(&mut stream, &inner) {
            Ok(Some(payload)) => {
                let response = inner.handle_payload(&payload, client);
                let close = matches!(response, Response::Draining);
                if write_frame(&mut stream, &response.encode()).is_err() || close {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                // A desynced or hostile frame gets one typed reply on a
                // best-effort basis, then the connection closes: after a
                // framing error there is no trustworthy boundary to
                // resume from.
                inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                let reply = Response::BadRequest {
                    message: e.to_string(),
                };
                let _ = write_frame(&mut stream, &reply.encode());
                break;
            }
        }
    }
}

/// A running server.  Dropping the handle does *not* stop the server;
/// call [`ServerHandle::join`] to drain and stop.
pub struct ServerHandle {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Start a server for `config`; returns once the listener is bound.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let workers = if config.workers > 0 {
        config.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8)
    };
    let pool = Arc::new(Pool::new(workers));

    let base: Box<dyn Store> = match &config.store_dir {
        Some(dir) => Box::new(
            FsStore::open(dir)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))?,
        ),
        None => Box::new(MemoryStore::new()),
    };
    let base: Box<dyn Store> = match &config.store_faults {
        Some(faults) => Box::new(FaultyStore::new(base, faults.clone())),
        None => base,
    };
    let store = StoreStack {
        primary: RetryStore::with_policy(base, config.retry.clone()),
        fallback: MemoryStore::new(),
        degraded: AtomicBool::new(false),
        fallback_keys: Mutex::new(std::collections::HashSet::new()),
    };

    // A broken tune-cache directory degrades to cold searches — the
    // service must come up anyway.
    let mut tune_degraded = false;
    let tune = match &config.tune_cache_dir {
        Some(dir) => match TuneCache::open(dir) {
            Ok(cache) => Some(Arc::new(cache)),
            Err(e) => {
                eprintln!("fraz-serve: tune cache unavailable ({e}); searches run cold");
                tune_degraded = true;
                None
            }
        },
        None => None,
    };

    let admission = Admission::new(config.admission.clone());
    let inner = Arc::new(Inner {
        config,
        pool,
        admission,
        store,
        tune,
        tune_degraded: AtomicBool::new(tune_degraded),
        compressors: Mutex::new(HashMap::new()),
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        next_job: AtomicU64::new(0),
        active_tokens: Mutex::new(HashMap::new()),
    });

    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let inner = Arc::clone(&inner);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("fraz-serve-accept".into())
            .spawn(move || {
                let mut next_client: u64 = 0;
                while !inner.stopping() {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let client = next_client;
                            next_client += 1;
                            let _ = stream.set_nonblocking(false);
                            let inner = Arc::clone(&inner);
                            let spawned = std::thread::Builder::new()
                                .name(format!("fraz-serve-conn-{client}"))
                                .spawn(move || connection_loop(inner, stream, client));
                            match spawned {
                                Ok(handle) => connections
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .push(handle),
                                Err(_) => {
                                    // Thread exhaustion: drop the
                                    // connection; the client sees a clean
                                    // close and retries elsewhere.
                                }
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?
    };

    Ok(ServerHandle {
        inner,
        local_addr,
        accept: Some(accept),
        connections,
    })
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begin draining: no new connections or jobs.  Non-blocking; call
    /// [`ServerHandle::join`] to wait for completion.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::Release);
    }

    /// Current counters (for tests and the drain report).
    pub fn status(&self) -> StatusBody {
        self.inner.status_body()
    }

    /// High-water mark of concurrently admitted jobs.
    pub fn peak_jobs(&self) -> usize {
        self.inner.admission.peak_jobs()
    }

    /// Drain and stop: stop admitting, wait for in-flight jobs up to the
    /// drain deadline, cancel stragglers, flush the tune cache, join
    /// every thread.
    pub fn join(mut self) -> DrainReport {
        self.shutdown();
        let start = Instant::now();
        let deadline = start + self.inner.config.drain_deadline;

        // Phase 1: wait for in-flight jobs to finish on their own.
        while self.inner.admission.inflight_jobs() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained_within_deadline = self.inner.admission.inflight_jobs() == 0;

        // Phase 2: cancel whatever outlived the deadline — the searches
        // observe the token between evaluations and answer with their
        // best-so-far bound.
        let cancelled_jobs = {
            let tokens = self
                .inner
                .active_tokens
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            for token in tokens.values() {
                token.cancel();
            }
            tokens.len()
        };

        // Phase 3: join the accept loop and every connection thread (the
        // 50 ms read timeout bounds how long an idle one takes to notice).
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        loop {
            let handle = {
                let mut connections = self.connections.lock().unwrap_or_else(|p| p.into_inner());
                connections.pop()
            };
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }

        // Phase 4: flush the tune cache so the next process starts warm.
        let tune_cache_flushed = match &self.inner.tune {
            Some(cache) => cache.flush().is_ok(),
            None => true,
        };

        DrainReport {
            drained_within_deadline,
            cancelled_jobs,
            drain_elapsed: start.elapsed(),
            tune_cache_flushed,
            status: self.inner.status_body(),
        }
    }
}
