//! A small blocking client for the service protocol.
//!
//! One connection, one request in flight at a time — the shape the
//! loadgen, the CLI smoke tests, and the chaos suites all want.  Every
//! method returns the server's typed [`Response`]; protocol-level
//! failures (truncation, transport errors) surface as [`ProtoError`] so
//! callers can tell "the server said no" from "the wire broke".

use std::net::TcpStream;
use std::time::Duration;

use fraz_data::Dataset;

use crate::proto::{read_frame, write_frame, ProtoError, Request, Response, MAX_FRAME_LEN};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
}

impl Client {
    /// Connect to `addr` (e.g. the server's `local_addr().to_string()`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            max_frame_len: MAX_FRAME_LEN,
        })
    }

    /// Bound how long one reply may take to arrive (`None` = forever).
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one request and wait for its reply.
    pub fn request(&mut self, request: &Request) -> Result<Response, ProtoError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream, self.max_frame_len)?;
        Response::decode(&payload)
    }

    /// Send raw bytes as a frame payload (adversarial tests).
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<(), ProtoError> {
        write_frame(&mut self.stream, payload)
    }

    /// Read one reply frame without sending anything first.
    pub fn read_reply(&mut self) -> Result<Response, ProtoError> {
        let payload = read_frame(&mut self.stream, self.max_frame_len)?;
        Response::decode(&payload)
    }

    /// The underlying stream (adversarial tests write torn bytes to it).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// `Status` round trip.
    pub fn status(&mut self) -> Result<Response, ProtoError> {
        self.request(&Request::Status)
    }

    /// Fixed-ratio compression of `dataset` (deadline `0` = none).
    pub fn compress(
        &mut self,
        codec: &str,
        dataset: &Dataset,
        target_ratio: f64,
        tolerance: f64,
        deadline_ms: u32,
    ) -> Result<Response, ProtoError> {
        self.request(&Request::Compress {
            deadline_ms,
            target_ratio,
            tolerance,
            codec: codec.into(),
            dataset: dataset.clone(),
        })
    }

    /// Fixed-quality (PSNR floor) search over `dataset`.
    pub fn tune_psnr(
        &mut self,
        codec: &str,
        dataset: &Dataset,
        target_psnr: f64,
        deadline_ms: u32,
    ) -> Result<Response, ProtoError> {
        self.request(&Request::TunePsnr {
            deadline_ms,
            target_psnr,
            codec: codec.into(),
            dataset: dataset.clone(),
        })
    }

    /// Decompress a blob previously produced by `codec`.
    pub fn decompress(&mut self, codec: &str, blob: Vec<u8>) -> Result<Response, ProtoError> {
        self.request(&Request::Decompress {
            codec: codec.into(),
            blob,
        })
    }

    /// Store `blob` under `key`.
    pub fn put(&mut self, key: &str, blob: Vec<u8>) -> Result<Response, ProtoError> {
        self.request(&Request::PutStore {
            key: key.into(),
            blob,
        })
    }

    /// Fetch the blob under `key`.
    pub fn get(&mut self, key: &str) -> Result<Response, ProtoError> {
        self.request(&Request::GetStore { key: key.into() })
    }
}
