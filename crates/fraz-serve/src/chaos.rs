//! Fault injection for the transport: seed-deterministic socket torture.
//!
//! [`FaultyStream`] wraps any `Read + Write` transport and injects the
//! failure modes TCP actually exhibits under duress — short reads and
//! writes (the kernel returning fewer bytes than asked), transient
//! `Interrupted` errors, hard connection errors, and an early close after
//! a byte budget.  The schedule is drawn from a seeded [`ChaCha8Rng`], so
//! a chaos run that found a bug replays byte-for-byte from its seed.
//!
//! The chaos suites use it on the *client* side of a live server socket:
//! short reads/writes stress the server's frame reassembly, early closes
//! stress its mid-frame disconnect handling, and neither may ever panic
//! the server or leave a job without its one typed outcome.

use std::io::{Read, Write};
use std::sync::Mutex;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What to inject on the stream, and how often.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFaults {
    /// Probability a read is truncated to a random prefix of the buffer.
    pub short_read_rate: f64,
    /// Probability a write only takes a random prefix of the buffer.
    pub short_write_rate: f64,
    /// Probability an operation fails with `ErrorKind::Interrupted`
    /// (which well-behaved callers must retry).
    pub interrupt_rate: f64,
    /// Close the stream (EOF on read, `BrokenPipe` on write) after this
    /// many total bytes have crossed it in either direction.
    pub close_after_bytes: Option<u64>,
    /// Seed of the fault schedule.
    pub seed: u64,
}

impl Default for StreamFaults {
    fn default() -> Self {
        Self {
            short_read_rate: 0.0,
            short_write_rate: 0.0,
            interrupt_rate: 0.0,
            close_after_bytes: None,
            seed: 0,
        }
    }
}

impl StreamFaults {
    /// A schedule that chops reads and writes but never errors: the
    /// protocol must reassemble frames from arbitrary fragmentation.
    pub fn choppy(seed: u64) -> Self {
        Self {
            short_read_rate: 0.75,
            short_write_rate: 0.75,
            interrupt_rate: 0.1,
            close_after_bytes: None,
            seed,
        }
    }
}

struct State {
    rng: ChaCha8Rng,
    transferred: u64,
}

/// A `Read + Write` decorator that injects seed-deterministic faults.
pub struct FaultyStream<S> {
    inner: S,
    faults: StreamFaults,
    state: Mutex<State>,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: S, faults: StreamFaults) -> Self {
        let state = Mutex::new(State {
            rng: ChaCha8Rng::seed_from_u64(faults.seed),
            transferred: 0,
        });
        Self {
            inner,
            faults,
            state,
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Total bytes moved in either direction so far.
    pub fn transferred(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .transferred
    }

    /// Decide this operation's fate: `Err` = injected failure, `Ok(None)`
    /// = injected close, `Ok(Some(cap))` = proceed with at most `cap` of
    /// the caller's `len` bytes.
    fn roll(&self, len: usize, short_rate: f64) -> std::io::Result<Option<usize>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(budget) = self.faults.close_after_bytes {
            if state.transferred >= budget {
                return Ok(None);
            }
        }
        if self.faults.interrupt_rate > 0.0 && state.rng.gen_bool(self.faults.interrupt_rate) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected interrupt",
            ));
        }
        let cap = if len > 1 && short_rate > 0.0 && state.rng.gen_bool(short_rate) {
            state.rng.gen_range(1..len)
        } else {
            len
        };
        Ok(Some(cap))
    }

    fn count(&self, n: usize) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.transferred += n as u64;
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.roll(buf.len(), self.faults.short_read_rate)? {
            None => Ok(0), // injected close reads as EOF
            Some(cap) => {
                let n = self.inner.read(&mut buf[..cap])?;
                self.count(n);
                Ok(n)
            }
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self.roll(buf.len(), self.faults.short_write_rate)? {
            None => Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected close",
            )),
            Some(cap) => {
                let n = self.inner.write(&buf[..cap])?;
                self.count(n);
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame, write_frame, MAX_FRAME_LEN};

    /// An in-memory duplex pipe: writes land in a buffer reads drain.
    #[derive(Default)]
    struct PipeBuf {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for PipeBuf {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for PipeBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.data.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn choppy_streams_still_carry_frames_intact() {
        // Frames written through (and read back through) a heavily
        // fragmenting, interrupt-happy stream must round-trip exactly:
        // the framing layer owns reassembly.
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let mut wire = FaultyStream::new(PipeBuf::default(), StreamFaults::choppy(11));
        for _ in 0..3 {
            write_frame_retrying(&mut wire, &payload);
        }
        for _ in 0..3 {
            assert_eq!(read_frame(&mut wire, MAX_FRAME_LEN).unwrap(), payload);
        }
    }

    /// `write_frame` maps injected `Interrupted` to `ProtoError::Io` (a
    /// real socket retries inside `write_all`; `PipeBuf` has no such
    /// loop), so the test retries at the frame level.
    fn write_frame_retrying(wire: &mut FaultyStream<PipeBuf>, payload: &[u8]) {
        for _ in 0..1000 {
            // A torn write_frame would desync the pipe; reset on failure.
            let before = wire.get_ref().data.len();
            match write_frame(wire, payload) {
                Ok(()) => return,
                Err(_) => wire.inner.data.truncate(before),
            }
        }
        panic!("frame never made it through the choppy stream");
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        let run = |seed| {
            let mut stream = FaultyStream::new(
                PipeBuf::default(),
                StreamFaults {
                    short_write_rate: 0.5,
                    seed,
                    ..StreamFaults::default()
                },
            );
            (0..40)
                .map(|_| stream.write(&[0u8; 64]).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn byte_budget_closes_both_directions() {
        let faults = StreamFaults {
            close_after_bytes: Some(10),
            ..StreamFaults::default()
        };
        let mut stream = FaultyStream::new(PipeBuf::default(), faults);
        stream.write_all(&[1u8; 10]).unwrap();
        let err = stream.write(&[1u8; 4]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 4];
        assert_eq!(stream.read(&mut buf).unwrap(), 0, "reads see EOF");
    }
}
