//! # fraz-serve — a fault-tolerant compression service
//!
//! FRaZ's search is a library; HPC facilities run *services*.  This crate
//! stands the search up as a long-running daemon speaking a
//! length-prefixed binary protocol over blocking TCP — no async runtime,
//! just an accept loop and per-connection reader threads feeding the
//! shared [`fraz_pool::Pool`] — and builds the robustness envelope such a
//! service needs as small, reusable layers:
//!
//! * [`proto`] — the framed wire protocol; every length prefix is
//!   validated before allocation, every decode failure is typed,
//! * [`admission`] — bounded in-flight job/byte budgets with per-client
//!   fairness; over budget sheds with `Overloaded{retry_after}`,
//! * [`server`] — job execution with cooperative deadlines
//!   ([`fraz_core::CancelToken`] checked between compressor
//!   evaluations), retry/backoff over the store, graceful degradation
//!   (broken cache → cold search; broken store → in-memory fallback),
//!   panic isolation, and a drain-on-shutdown that flushes the tune
//!   cache,
//! * [`client`] — a blocking client for tools and tests,
//! * [`chaos`] — seed-deterministic socket fault injection
//!   ([`FaultyStream`]), the transport half of the chaos harness (the
//!   storage half is [`fraz_store::FaultyStore`]),
//! * [`loadgen`] — open-loop load generation over `fraz-scenarios`
//!   workloads, reporting p50/p99 latency, throughput, and shed rate as
//!   JSONL rows for `baselines/service.jsonl`.
//!
//! The chaos suites (`tests/chaos.rs`, `tests/adversarial.rs`,
//! `tests/overload.rs`) assert the envelope end to end: injected store
//! and socket faults under concurrent load produce zero panics, zero
//! hangs, exactly one typed outcome per job, and no corrupt containers.

pub mod admission;
pub mod chaos;
pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmissionConfig, Overload, Permit};
pub use chaos::{FaultyStream, StreamFaults};
pub use client::Client;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use proto::{ProtoError, Request, Response, StatusBody, MAX_FRAME_LEN};
pub use server::{start, DrainReport, ServeConfig, ServerHandle};
