//! Open-loop load generation against a running service.
//!
//! Each client thread draws exponential inter-arrival times from a
//! seeded rng (so a run is reproducible) and issues a mixed stream of
//! fixed-ratio and fixed-PSNR jobs over `fraz-scenarios` synthetic
//! fields.  Arrivals are *scheduled*, not paced by replies: when the
//! server slows down, requests queue behind the schedule exactly the way
//! an external workload would, which is what makes saturation and shed
//! behaviour measurable.
//!
//! The report aggregates exactly-one-outcome tallies (every issued job
//! lands in precisely one bucket), latency percentiles over serviced
//! jobs, completed-job throughput, and the shed rate — and renders the
//! `{"group":"service",...}` JSONL row the CI smoke floor-checks against
//! `baselines/service.jsonl`.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use fraz_data::{DType, Dataset, Dims};
use fraz_scenarios::Regime;

use crate::client::Client;
use crate::proto::Response;

/// One load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total arrival rate across all clients, jobs/second (`0` =
    /// closed-loop: each client issues as fast as replies return).
    pub rate_hz: f64,
    /// How long to keep issuing jobs.
    pub duration: Duration,
    /// Fraction of jobs that are fixed-PSNR tunes (the rest are
    /// fixed-ratio compressions).
    pub psnr_fraction: f64,
    /// Target for fixed-ratio jobs.
    pub target_ratio: f64,
    /// Tolerance for fixed-ratio jobs.
    pub tolerance: f64,
    /// Target for fixed-PSNR jobs.
    pub target_psnr: f64,
    /// Per-job deadline in milliseconds (`0` = none).
    pub deadline_ms: u32,
    /// Square field edge length (elements).
    pub side: usize,
    /// Codec to search.
    pub codec: String,
    /// Seed of arrivals and job mix.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            clients: 4,
            rate_hz: 0.0,
            duration: Duration::from_secs(3),
            psnr_fraction: 0.25,
            target_ratio: 8.0,
            tolerance: 0.3,
            target_psnr: 50.0,
            deadline_ms: 0,
            side: 64,
            codec: "sz".into(),
            seed: 20200118,
        }
    }
}

/// Aggregated outcome of a run.  Every issued job lands in exactly one of
/// `ok`/`shed`/`deadline`/`draining`/`failed`/`transport_errors`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadgenReport {
    /// Jobs issued.
    pub jobs: u64,
    /// Jobs answered with a success reply.
    pub ok: u64,
    /// Jobs shed with `Overloaded`.
    pub shed: u64,
    /// Jobs answered `DeadlineExceeded`.
    pub deadline: u64,
    /// Jobs answered `Draining`.
    pub draining: u64,
    /// Jobs answered with a typed failure (`BadRequest`/`IoFailed`/
    /// `Internal`).
    pub failed: u64,
    /// Jobs whose connection broke before a reply (the one untyped
    /// outcome a client can observe).
    pub transport_errors: u64,
    /// Wall-clock span of the run in seconds.
    pub elapsed_s: f64,
    /// Completed (ok) jobs per second.
    pub jobs_per_s: f64,
    /// Median reply latency over serviced (ok + deadline) jobs, ms.
    pub p50_ms: f64,
    /// 99th-percentile reply latency over serviced jobs, ms.
    pub p99_ms: f64,
    /// Worst reply latency, ms.
    pub max_ms: f64,
    /// `shed / jobs`.
    pub shed_rate: f64,
}

impl LoadgenReport {
    /// The committed-baseline JSONL row.
    pub fn jsonl_row(&self, id: &str, config: &LoadgenConfig) -> String {
        format!(
            concat!(
                "{{\"group\":\"service\",\"id\":\"{}\",",
                "\"jobs_per_s\":{:.3},\"p50_ms\":{:.3},\"p99_ms\":{:.3},",
                "\"shed_rate\":{:.4},\"jobs\":{},\"ok\":{},\"shed\":{},",
                "\"deadline\":{},\"failed\":{},\"transport_errors\":{},",
                "\"clients\":{},\"rate_hz\":{:.1},\"side\":{},\"codec\":\"{}\"}}"
            ),
            id,
            self.jobs_per_s,
            self.p50_ms,
            self.p99_ms,
            self.shed_rate,
            self.jobs,
            self.ok,
            self.shed,
            self.deadline,
            self.failed,
            self.transport_errors,
            config.clients,
            config.rate_hz,
            config.side,
            config.codec,
        )
    }

    /// Human-readable one-screen summary.
    pub fn render(&self) -> String {
        format!(
            "jobs {} · ok {} · shed {} · deadline {} · draining {} · failed {} · transport {}\n\
             throughput {:.1} jobs/s · latency p50 {:.1} ms · p99 {:.1} ms · max {:.1} ms · \
             shed rate {:.1}%",
            self.jobs,
            self.ok,
            self.shed,
            self.deadline,
            self.draining,
            self.failed,
            self.transport_errors,
            self.jobs_per_s,
            self.p50_ms,
            self.p99_ms,
            self.max_ms,
            self.shed_rate * 100.0,
        )
    }
}

/// The scenario fields one client cycles through: a smooth (highly
/// compressible) and a turbulent (hard) regime, so the job mix spans the
/// search-difficulty range.
pub fn workload_fields(side: usize, seed: u64) -> Vec<Dataset> {
    [Regime::Smooth, Regime::Turbulence]
        .into_iter()
        .enumerate()
        .map(|(i, regime)| {
            let config = fraz_scenarios::ScenarioConfig::new(regime).with_seed(seed + i as u64);
            config
                .generate(&Dims::d2(side, side), DType::F32, 0)
                .dataset
        })
        .collect()
}

struct Tally {
    report: LoadgenReport,
    latencies_ms: Vec<f64>,
}

fn classify(tally: &mut Tally, response: &Response, latency: Duration) {
    let serviced = matches!(
        response,
        Response::Compressed { .. } | Response::Tuned { .. } | Response::DeadlineExceeded { .. }
    );
    if serviced {
        tally.latencies_ms.push(latency.as_secs_f64() * 1e3);
    }
    match response {
        Response::Compressed { .. } | Response::Tuned { .. } => tally.report.ok += 1,
        Response::Overloaded { .. } => tally.report.shed += 1,
        Response::DeadlineExceeded { .. } => tally.report.deadline += 1,
        Response::Draining => tally.report.draining += 1,
        _ => tally.report.failed += 1,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run one load generation pass.  Connection failures at startup are
/// errors; mid-run transport failures are tallied and the client
/// reconnects.
pub fn run(config: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let shared = Mutex::new(Tally {
        report: LoadgenReport::default(),
        latencies_ms: Vec::new(),
    });
    let start = Instant::now();
    let per_client_rate = if config.rate_hz > 0.0 {
        config.rate_hz / config.clients.max(1) as f64
    } else {
        0.0
    };

    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut joins = Vec::new();
        for client_index in 0..config.clients {
            let shared = &shared;
            let fields = workload_fields(config.side, config.seed + 100 + client_index as u64);
            joins.push(scope.spawn(move || {
                let mut rng = ChaCha8Rng::seed_from_u64(config.seed + client_index as u64);
                let mut client = match Client::connect(&config.addr) {
                    Ok(client) => client,
                    Err(_) => return,
                };
                let mut tally = Tally {
                    report: LoadgenReport::default(),
                    latencies_ms: Vec::new(),
                };
                let mut next_arrival = Instant::now();
                while start.elapsed() < config.duration {
                    if per_client_rate > 0.0 {
                        // Exponential inter-arrival: the open-loop
                        // schedule advances regardless of reply pacing.
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let dt = -(1.0 - u).ln() / per_client_rate;
                        next_arrival += Duration::from_secs_f64(dt);
                        let now = Instant::now();
                        if next_arrival > now {
                            std::thread::sleep(next_arrival - now);
                        }
                    }
                    if start.elapsed() >= config.duration {
                        break;
                    }
                    let dataset = &fields[tally.report.jobs as usize % fields.len()];
                    let is_psnr = rng.gen_bool(config.psnr_fraction.clamp(0.0, 1.0));
                    tally.report.jobs += 1;
                    let sent = Instant::now();
                    let result = if is_psnr {
                        client.tune_psnr(
                            &config.codec,
                            dataset,
                            config.target_psnr,
                            config.deadline_ms,
                        )
                    } else {
                        client.compress(
                            &config.codec,
                            dataset,
                            config.target_ratio,
                            config.tolerance,
                            config.deadline_ms,
                        )
                    };
                    match result {
                        Ok(response) => classify(&mut tally, &response, sent.elapsed()),
                        Err(_) => {
                            tally.report.transport_errors += 1;
                            // One reconnect attempt keeps the thread
                            // useful after an injected disconnect.
                            match Client::connect(&config.addr) {
                                Ok(fresh) => client = fresh,
                                Err(_) => break,
                            }
                        }
                    }
                }
                let mut shared = shared.lock().unwrap_or_else(|p| p.into_inner());
                shared.report.jobs += tally.report.jobs;
                shared.report.ok += tally.report.ok;
                shared.report.shed += tally.report.shed;
                shared.report.deadline += tally.report.deadline;
                shared.report.draining += tally.report.draining;
                shared.report.failed += tally.report.failed;
                shared.report.transport_errors += tally.report.transport_errors;
                shared.latencies_ms.extend(tally.latencies_ms);
            }));
        }
        for join in joins {
            let _ = join.join();
        }
        Ok(())
    })?;

    let elapsed = start.elapsed();
    let mut tally = shared.into_inner().unwrap_or_else(|p| p.into_inner());
    tally
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut report = tally.report;
    report.elapsed_s = elapsed.as_secs_f64();
    report.jobs_per_s = report.ok as f64 / elapsed.as_secs_f64().max(1e-9);
    report.p50_ms = percentile(&tally.latencies_ms, 0.50);
    report.p99_ms = percentile(&tally.latencies_ms, 0.99);
    report.max_ms = tally.latencies_ms.last().copied().unwrap_or(0.0);
    report.shed_rate = if report.jobs > 0 {
        report.shed as f64 / report.jobs as f64
    } else {
        0.0
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sane_ranks() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.5), 51.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn jsonl_row_parses_as_json() {
        let report = LoadgenReport {
            jobs: 10,
            ok: 8,
            shed: 2,
            jobs_per_s: 3.5,
            p50_ms: 12.0,
            p99_ms: 40.0,
            shed_rate: 0.2,
            ..LoadgenReport::default()
        };
        let row = report.jsonl_row("loadgen", &LoadgenConfig::default());
        let value: serde_json::Value = serde_json::from_str(&row).unwrap();
        assert_eq!(value.get("group").and_then(|v| v.as_str()), Some("service"));
        assert_eq!(value.get("ok").and_then(|v| v.as_f64()), Some(8.0));
        assert!(value.get("jobs_per_s").and_then(|v| v.as_f64()).unwrap() > 3.0);
    }

    #[test]
    fn workload_fields_are_deterministic_and_sized() {
        let a = workload_fields(32, 7);
        let b = workload_fields(32, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|d| d.len() == 32 * 32));
    }
}
