//! The wire protocol: length-prefixed frames with typed request/response
//! bodies.
//!
//! A frame is `u32` little-endian payload length followed by exactly that
//! many payload bytes; the payload's first byte is an opcode.  The length
//! prefix is validated against [`MAX_FRAME_LEN`] (or the caller's cap)
//! *before* any allocation, so a hostile 4-gigabyte prefix costs the
//! server a typed error, not an OOM.  Body decoding is pure slicing over
//! the already-read frame — a malformed body can never allocate more than
//! the frame it arrived in.
//!
//! Every decode failure is a typed [`ProtoError`]:
//!
//! * [`ProtoError::Closed`] — clean EOF on a frame boundary (the peer
//!   hung up politely),
//! * [`ProtoError::Truncated`] — EOF mid-frame (a torn or interrupted
//!   peer),
//! * [`ProtoError::TooLarge`] — the length prefix exceeds the cap,
//! * [`ProtoError::Malformed`] — the payload does not parse,
//! * [`ProtoError::Io`] — the transport itself failed.

use std::io::{Read, Write};

use fraz_data::{DType, DataBuffer, Dataset, Dims};

/// Default ceiling on one frame's payload (64 MiB — comfortably above any
/// field the test scenarios ship, far below an allocation-of-death).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Ceiling on any single string field (names, keys, error messages).
const MAX_STR_LEN: usize = 4096;

/// Ceiling on dataset rank accepted off the wire.
const MAX_NDIMS: usize = 8;

/// Typed protocol failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The peer closed the connection on a frame boundary.
    Closed,
    /// The connection ended mid-frame.
    Truncated,
    /// A length prefix exceeded the frame cap.
    TooLarge { len: u64, max: usize },
    /// The payload failed to parse.
    Malformed(String),
    /// The underlying transport failed.
    Io(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Truncated => write!(f, "connection closed mid-frame"),
            ProtoError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            ProtoError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            ProtoError::Io(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn malformed(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Read one length-prefixed frame.  EOF before the first header byte is
/// [`ProtoError::Closed`]; EOF anywhere later is [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; 4];
    read_full(r, &mut header, true)?;
    let len = u32::from_le_bytes(header) as usize;
    if len > max_len {
        return Err(ProtoError::TooLarge {
            len: len as u64,
            max: max_len,
        });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, false)?;
    Ok(payload)
}

/// Fill `buf` completely.  `at_boundary` selects the error for EOF on the
/// very first byte (a clean close) versus EOF later (a truncation).
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    ProtoError::Closed
                } else {
                    ProtoError::Truncated
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e.to_string())),
        }
    }
    Ok(())
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtoError> {
    let len: u32 = payload.len().try_into().map_err(|_| ProtoError::TooLarge {
        len: payload.len() as u64,
        max: u32::MAX as usize,
    })?;
    let io = |e: std::io::Error| ProtoError::Io(e.to_string());
    w.write_all(&len.to_le_bytes()).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)
}

// ---------------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A bounds-checked reader over one received payload.  Every accessor
/// slices the existing buffer — no reads, no allocation beyond the copies
/// the caller explicitly asks for.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| malformed(format!("body ends {n} byte(s) short")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str_(&mut self, what: &str) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_STR_LEN {
            return Err(malformed(format!(
                "{what} length {len} exceeds the {MAX_STR_LEN}-byte cap"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        // The declared length can never exceed the frame that carried it,
        // so this bound — not a separate cap — limits the allocation.
        let bytes = self
            .take(len)
            .map_err(|_| malformed(format!("{what} length {len} overruns the frame")))?;
        Ok(bytes.to_vec())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing byte(s) after the body",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Dataset wire form
// ---------------------------------------------------------------------------

fn put_dataset(out: &mut Vec<u8>, dataset: &Dataset) {
    out.push(match dataset.dtype() {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    put_u64(out, dataset.timestep as u64);
    put_str(out, &dataset.application);
    put_str(out, &dataset.field);
    out.push(dataset.dims.ndims() as u8);
    for &axis in dataset.dims.as_slice() {
        put_u64(out, axis as u64);
    }
    put_bytes(out, &dataset.buffer.to_le_bytes());
}

fn read_dataset(c: &mut Cursor<'_>) -> Result<Dataset, ProtoError> {
    let dtype = match c.u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(malformed(format!("unknown dtype tag {other}"))),
    };
    let timestep = c.u64()? as usize;
    let application = c.str_("application name")?;
    let field = c.str_("field name")?;
    let ndims = c.u8()? as usize;
    if ndims == 0 || ndims > MAX_NDIMS {
        return Err(malformed(format!(
            "rank {ndims} outside the accepted 1..={MAX_NDIMS}"
        )));
    }
    let mut axes = Vec::with_capacity(ndims);
    let mut elems: usize = 1;
    for _ in 0..ndims {
        let axis = c.u64()?;
        let axis: usize = axis
            .try_into()
            .map_err(|_| malformed(format!("axis length {axis} does not fit")))?;
        if axis == 0 {
            return Err(malformed("zero-length axis"));
        }
        elems = elems
            .checked_mul(axis)
            .ok_or_else(|| malformed("grid size overflows"))?;
        axes.push(axis);
    }
    let values = c.bytes("value buffer")?;
    let expected = elems
        .checked_mul(dtype.byte_width())
        .ok_or_else(|| malformed("grid byte size overflows"))?;
    if values.len() != expected {
        return Err(malformed(format!(
            "value buffer holds {} byte(s), the {}-element grid needs {expected}",
            values.len(),
            elems
        )));
    }
    let buffer = DataBuffer::from_le_bytes(&values, dtype)
        .ok_or_else(|| malformed("value buffer does not decode"))?;
    Ok(Dataset {
        application,
        field,
        timestep,
        dims: Dims::new(&axes),
        buffer,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client request.  Search jobs carry `deadline_ms` (`0` = no
/// deadline): the server converts it into a cooperative
/// [`CancelToken`](fraz_core::CancelToken) checked between compressor
/// evaluations.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Server health and counters.
    Status,
    /// Fixed-ratio search + compression of the payload dataset.
    Compress {
        deadline_ms: u32,
        target_ratio: f64,
        tolerance: f64,
        codec: String,
        dataset: Dataset,
    },
    /// Decompress a blob previously produced by `codec`.
    Decompress { codec: String, blob: Vec<u8> },
    /// Fixed-quality (PSNR floor) search over the payload dataset.
    TunePsnr {
        deadline_ms: u32,
        target_psnr: f64,
        codec: String,
        dataset: Dataset,
    },
    /// Durably store a blob under `key`.
    PutStore { key: String, blob: Vec<u8> },
    /// Fetch the blob stored under `key`.
    GetStore { key: String },
}

const OP_STATUS: u8 = 0x01;
const OP_COMPRESS: u8 = 0x02;
const OP_DECOMPRESS: u8 = 0x03;
const OP_TUNE_PSNR: u8 = 0x04;
const OP_PUT_STORE: u8 = 0x05;
const OP_GET_STORE: u8 = 0x06;

impl Request {
    /// Serialize to a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Status => out.push(OP_STATUS),
            Request::Compress {
                deadline_ms,
                target_ratio,
                tolerance,
                codec,
                dataset,
            } => {
                out.push(OP_COMPRESS);
                put_u32(&mut out, *deadline_ms);
                put_f64(&mut out, *target_ratio);
                put_f64(&mut out, *tolerance);
                put_str(&mut out, codec);
                put_dataset(&mut out, dataset);
            }
            Request::Decompress { codec, blob } => {
                out.push(OP_DECOMPRESS);
                put_str(&mut out, codec);
                put_bytes(&mut out, blob);
            }
            Request::TunePsnr {
                deadline_ms,
                target_psnr,
                codec,
                dataset,
            } => {
                out.push(OP_TUNE_PSNR);
                put_u32(&mut out, *deadline_ms);
                put_f64(&mut out, *target_psnr);
                put_str(&mut out, codec);
                put_dataset(&mut out, dataset);
            }
            Request::PutStore { key, blob } => {
                out.push(OP_PUT_STORE);
                put_str(&mut out, key);
                put_bytes(&mut out, blob);
            }
            Request::GetStore { key } => {
                out.push(OP_GET_STORE);
                put_str(&mut out, key);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let request = match c.u8()? {
            OP_STATUS => Request::Status,
            OP_COMPRESS => Request::Compress {
                deadline_ms: c.u32()?,
                target_ratio: c.f64()?,
                tolerance: c.f64()?,
                codec: c.str_("codec name")?,
                dataset: read_dataset(&mut c)?,
            },
            OP_DECOMPRESS => Request::Decompress {
                codec: c.str_("codec name")?,
                blob: c.bytes("compressed blob")?,
            },
            OP_TUNE_PSNR => Request::TunePsnr {
                deadline_ms: c.u32()?,
                target_psnr: c.f64()?,
                codec: c.str_("codec name")?,
                dataset: read_dataset(&mut c)?,
            },
            OP_PUT_STORE => Request::PutStore {
                key: c.str_("store key")?,
                blob: c.bytes("store blob")?,
            },
            OP_GET_STORE => Request::GetStore {
                key: c.str_("store key")?,
            },
            other => return Err(malformed(format!("unknown request opcode {other:#04x}"))),
        };
        c.finish()?;
        Ok(request)
    }

    /// Short label for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Status => "status",
            Request::Compress { .. } => "compress",
            Request::Decompress { .. } => "decompress",
            Request::TunePsnr { .. } => "tune-psnr",
            Request::PutStore { .. } => "put-store",
            Request::GetStore { .. } => "get-store",
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Server counters carried by [`Response::Status`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatusBody {
    /// The server has stopped admitting and is draining in-flight jobs.
    pub draining: bool,
    /// Some dependency (store, tune cache) has failed over to a fallback.
    pub degraded: bool,
    /// Jobs currently executing.
    pub inflight_jobs: u32,
    /// Payload bytes belonging to in-flight jobs.
    pub inflight_bytes: u64,
    /// Jobs answered successfully.
    pub jobs_ok: u64,
    /// Jobs shed by admission control.
    pub jobs_shed: u64,
    /// Jobs stopped at their deadline.
    pub jobs_deadline: u64,
    /// Malformed or unserviceable requests.
    pub jobs_rejected: u64,
    /// Jobs failed on I/O or internal errors.
    pub jobs_failed: u64,
}

/// One server reply.  Exactly one reply answers every request frame —
/// success and failure are both typed, never a dropped connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Health and counters.
    Status(StatusBody),
    /// A completed fixed-ratio job: the chosen bound and the blob
    /// compressed at it.
    Compressed {
        error_bound: f64,
        ratio: f64,
        feasible: bool,
        evaluations: u32,
        blob: Vec<u8>,
    },
    /// A decompressed dataset.
    Dataset(Dataset),
    /// A completed fixed-quality job.
    Tuned {
        error_bound: f64,
        achieved_psnr: f64,
        satisfiable: bool,
        evaluations: u32,
    },
    /// The blob was stored.  `degraded` marks a write that fell back to
    /// the in-memory store after the durable backend failed.
    Stored { degraded: bool },
    /// The blob stored under the requested key.
    Blob(Vec<u8>),
    /// Admission control shed the job; retry after the hinted delay.
    Overloaded { retry_after_ms: u32 },
    /// The deadline fired mid-search; the best bound found so far.
    DeadlineExceeded {
        error_bound: f64,
        achieved: f64,
        evaluations: u32,
    },
    /// The request was well-framed but unserviceable.
    BadRequest { message: String },
    /// Storage failed even after retries.
    IoFailed { transient: bool, message: String },
    /// The server is draining and takes no new work.
    Draining,
    /// The job panicked; the server survived it.
    Internal { message: String },
}

const OP_R_STATUS: u8 = 0x80;
const OP_R_COMPRESSED: u8 = 0x81;
const OP_R_DATASET: u8 = 0x82;
const OP_R_TUNED: u8 = 0x83;
const OP_R_STORED: u8 = 0x84;
const OP_R_BLOB: u8 = 0x85;
const OP_R_OVERLOADED: u8 = 0xE0;
const OP_R_DEADLINE: u8 = 0xE1;
const OP_R_BAD_REQUEST: u8 = 0xE2;
const OP_R_IO_FAILED: u8 = 0xE3;
const OP_R_DRAINING: u8 = 0xE4;
const OP_R_INTERNAL: u8 = 0xE5;

impl Response {
    /// Serialize to a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Status(s) => {
                out.push(OP_R_STATUS);
                out.push(s.draining as u8);
                out.push(s.degraded as u8);
                put_u32(&mut out, s.inflight_jobs);
                put_u64(&mut out, s.inflight_bytes);
                put_u64(&mut out, s.jobs_ok);
                put_u64(&mut out, s.jobs_shed);
                put_u64(&mut out, s.jobs_deadline);
                put_u64(&mut out, s.jobs_rejected);
                put_u64(&mut out, s.jobs_failed);
            }
            Response::Compressed {
                error_bound,
                ratio,
                feasible,
                evaluations,
                blob,
            } => {
                out.push(OP_R_COMPRESSED);
                put_f64(&mut out, *error_bound);
                put_f64(&mut out, *ratio);
                out.push(*feasible as u8);
                put_u32(&mut out, *evaluations);
                put_bytes(&mut out, blob);
            }
            Response::Dataset(dataset) => {
                out.push(OP_R_DATASET);
                put_dataset(&mut out, dataset);
            }
            Response::Tuned {
                error_bound,
                achieved_psnr,
                satisfiable,
                evaluations,
            } => {
                out.push(OP_R_TUNED);
                put_f64(&mut out, *error_bound);
                put_f64(&mut out, *achieved_psnr);
                out.push(*satisfiable as u8);
                put_u32(&mut out, *evaluations);
            }
            Response::Stored { degraded } => {
                out.push(OP_R_STORED);
                out.push(*degraded as u8);
            }
            Response::Blob(blob) => {
                out.push(OP_R_BLOB);
                put_bytes(&mut out, blob);
            }
            Response::Overloaded { retry_after_ms } => {
                out.push(OP_R_OVERLOADED);
                put_u32(&mut out, *retry_after_ms);
            }
            Response::DeadlineExceeded {
                error_bound,
                achieved,
                evaluations,
            } => {
                out.push(OP_R_DEADLINE);
                put_f64(&mut out, *error_bound);
                put_f64(&mut out, *achieved);
                put_u32(&mut out, *evaluations);
            }
            Response::BadRequest { message } => {
                out.push(OP_R_BAD_REQUEST);
                put_str(&mut out, message);
            }
            Response::IoFailed { transient, message } => {
                out.push(OP_R_IO_FAILED);
                out.push(*transient as u8);
                put_str(&mut out, message);
            }
            Response::Draining => out.push(OP_R_DRAINING),
            Response::Internal { message } => {
                out.push(OP_R_INTERNAL);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let response = match c.u8()? {
            OP_R_STATUS => Response::Status(StatusBody {
                draining: c.u8()? != 0,
                degraded: c.u8()? != 0,
                inflight_jobs: c.u32()?,
                inflight_bytes: c.u64()?,
                jobs_ok: c.u64()?,
                jobs_shed: c.u64()?,
                jobs_deadline: c.u64()?,
                jobs_rejected: c.u64()?,
                jobs_failed: c.u64()?,
            }),
            OP_R_COMPRESSED => Response::Compressed {
                error_bound: c.f64()?,
                ratio: c.f64()?,
                feasible: c.u8()? != 0,
                evaluations: c.u32()?,
                blob: c.bytes("compressed blob")?,
            },
            OP_R_DATASET => Response::Dataset(read_dataset(&mut c)?),
            OP_R_TUNED => Response::Tuned {
                error_bound: c.f64()?,
                achieved_psnr: c.f64()?,
                satisfiable: c.u8()? != 0,
                evaluations: c.u32()?,
            },
            OP_R_STORED => Response::Stored {
                degraded: c.u8()? != 0,
            },
            OP_R_BLOB => Response::Blob(c.bytes("stored blob")?),
            OP_R_OVERLOADED => Response::Overloaded {
                retry_after_ms: c.u32()?,
            },
            OP_R_DEADLINE => Response::DeadlineExceeded {
                error_bound: c.f64()?,
                achieved: c.f64()?,
                evaluations: c.u32()?,
            },
            OP_R_BAD_REQUEST => Response::BadRequest {
                message: c.str_("error message")?,
            },
            OP_R_IO_FAILED => Response::IoFailed {
                transient: c.u8()? != 0,
                message: c.str_("error message")?,
            },
            OP_R_DRAINING => Response::Draining,
            OP_R_INTERNAL => Response::Internal {
                message: c.str_("error message")?,
            },
            other => return Err(malformed(format!("unknown response opcode {other:#04x}"))),
        };
        c.finish()?;
        Ok(response)
    }

    /// Short label for counters and loadgen tallies.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Status(_) => "status",
            Response::Compressed { .. } => "compressed",
            Response::Dataset(_) => "dataset",
            Response::Tuned { .. } => "tuned",
            Response::Stored { .. } => "stored",
            Response::Blob(_) => "blob",
            Response::Overloaded { .. } => "overloaded",
            Response::DeadlineExceeded { .. } => "deadline-exceeded",
            Response::BadRequest { .. } => "bad-request",
            Response::IoFailed { .. } => "io-failed",
            Response::Draining => "draining",
            Response::Internal { .. } => "internal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let values: Vec<f32> = (0..24).map(|i| i as f32 * 0.5).collect();
        Dataset::from_f32("app", "field", 3, Dims::d3(2, 3, 4), values)
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Status,
            Request::Compress {
                deadline_ms: 250,
                target_ratio: 8.0,
                tolerance: 0.2,
                codec: "sz".into(),
                dataset: sample_dataset(),
            },
            Request::Decompress {
                codec: "szx".into(),
                blob: vec![1, 2, 3],
            },
            Request::TunePsnr {
                deadline_ms: 0,
                target_psnr: 60.0,
                codec: "sz".into(),
                dataset: sample_dataset(),
            },
            Request::PutStore {
                key: "a/b".into(),
                blob: vec![9; 100],
            },
            Request::GetStore { key: "a/b".into() },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Status(StatusBody {
                draining: true,
                degraded: false,
                inflight_jobs: 3,
                inflight_bytes: 1 << 20,
                jobs_ok: 10,
                jobs_shed: 2,
                jobs_deadline: 1,
                jobs_rejected: 4,
                jobs_failed: 0,
            }),
            Response::Compressed {
                error_bound: 1e-3,
                ratio: 7.5,
                feasible: true,
                evaluations: 12,
                blob: vec![5; 64],
            },
            Response::Dataset(sample_dataset()),
            Response::Tuned {
                error_bound: 2e-4,
                achieved_psnr: 61.2,
                satisfiable: true,
                evaluations: 9,
            },
            Response::Stored { degraded: true },
            Response::Blob(vec![7; 16]),
            Response::Overloaded { retry_after_ms: 40 },
            Response::DeadlineExceeded {
                error_bound: 5e-3,
                achieved: 6.1,
                evaluations: 4,
            },
            Response::BadRequest {
                message: "nope".into(),
            },
            Response::IoFailed {
                transient: true,
                message: "disk".into(),
            },
            Response::Draining,
            Response::Internal {
                message: "panic".into(),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let payload = Request::Status.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader, MAX_FRAME_LEN).unwrap(), payload);
        assert_eq!(
            read_frame(&mut reader, MAX_FRAME_LEN),
            Err(ProtoError::Closed)
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let wire = u32::MAX.to_le_bytes();
        let err = read_frame(&mut wire.as_slice(), MAX_FRAME_LEN).unwrap_err();
        assert!(matches!(err, ProtoError::TooLarge { .. }));
    }

    #[test]
    fn truncation_mid_frame_is_typed() {
        let payload = Request::GetStore { key: "k".into() }.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        for cut in 1..wire.len() {
            let err = read_frame(&mut &wire[..cut], MAX_FRAME_LEN).unwrap_err();
            assert_eq!(err, ProtoError::Truncated, "cut at byte {cut}");
        }
    }

    #[test]
    fn every_single_byte_truncation_of_a_body_is_malformed_not_panic() {
        let payload = Request::Compress {
            deadline_ms: 100,
            target_ratio: 8.0,
            tolerance: 0.2,
            codec: "sz".into(),
            dataset: sample_dataset(),
        }
        .encode();
        for cut in 0..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "truncation at byte {cut} must not decode"
            );
        }
    }

    #[test]
    fn hostile_dims_do_not_allocate() {
        // A dataset body claiming a 2^60-element grid must die on the
        // value-count check, not attempt the allocation.
        let mut out = Vec::new();
        out.push(OP_COMPRESS);
        put_u32(&mut out, 0);
        put_f64(&mut out, 8.0);
        put_f64(&mut out, 0.2);
        put_str(&mut out, "sz");
        out.push(0); // dtype f32
        put_u64(&mut out, 0); // timestep
        put_str(&mut out, "app");
        put_str(&mut out, "field");
        out.push(3);
        put_u64(&mut out, 1 << 20);
        put_u64(&mut out, 1 << 20);
        put_u64(&mut out, 1 << 20);
        put_bytes(&mut out, &[0u8; 4]);
        let err = Request::decode(&out).unwrap_err();
        assert!(matches!(err, ProtoError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = Request::Status.encode();
        payload.push(0xAB);
        assert!(Request::decode(&payload).is_err());
    }
}
