//! Admission control: bounded in-flight work with per-client fairness.
//!
//! The service's memory story is simple because this layer makes it so:
//! a job is either *admitted* — it holds a [`Permit`] counted against the
//! global job and byte budgets — or it is *shed* with a typed
//! `Overloaded{retry_after}` before its payload influences anything.
//! Queue depth therefore never exceeds `max_jobs` and queued payload bytes
//! never exceed `max_bytes`, no matter how many clients connect or how
//! fast they push.
//!
//! A per-client quota keeps one greedy client from consuming the whole
//! budget: each connection may hold at most `per_client_jobs` permits, so
//! under overload every client still gets a slice.
//!
//! Permits are RAII: dropping one (on any path — success, typed failure,
//! panic unwinding through `catch_unwind`) releases its share of every
//! budget, so a leaked count would require leaking the permit itself.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Budgets enforced by [`Admission`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Global ceiling on concurrently admitted jobs.
    pub max_jobs: usize,
    /// Global ceiling on the summed payload bytes of admitted jobs.
    pub max_bytes: u64,
    /// Ceiling on jobs one client may hold at once.
    pub per_client_jobs: usize,
    /// The retry hint handed to shed clients.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_jobs: 64,
            max_bytes: 256 << 20,
            per_client_jobs: 8,
            retry_after: Duration::from_millis(50),
        }
    }
}

/// Why a job was shed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overload {
    /// How long the client should wait before retrying.
    pub retry_after: Duration,
    /// Which budget tripped (for logs and tests).
    pub reason: &'static str,
}

/// The shared admission state.
pub struct Admission {
    config: AdmissionConfig,
    jobs: AtomicUsize,
    bytes: AtomicU64,
    per_client: Mutex<HashMap<u64, usize>>,
    admitted: AtomicU64,
    shed: AtomicU64,
    peak_jobs: AtomicUsize,
    peak_bytes: AtomicU64,
}

impl Admission {
    /// Fresh state under the given budgets.
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(Self {
            config,
            jobs: AtomicUsize::new(0),
            bytes: AtomicU64::new(0),
            per_client: Mutex::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            peak_jobs: AtomicUsize::new(0),
            peak_bytes: AtomicU64::new(0),
        })
    }

    /// The configured budgets.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Try to admit a `bytes`-byte job from `client`.  On success the
    /// returned [`Permit`] holds the budget share until dropped.
    pub fn try_admit(self: &Arc<Self>, client: u64, bytes: u64) -> Result<Permit, Overload> {
        let shed = |reason: &'static str| {
            self.shed.fetch_add(1, Ordering::Relaxed);
            Err(Overload {
                retry_after: self.config.retry_after,
                reason,
            })
        };

        // Per-client quota first: a client over its slice must not be able
        // to contend for (and transiently inflate) the global counters.
        {
            let mut per_client = self.per_client.lock().unwrap_or_else(|p| p.into_inner());
            let held = per_client.entry(client).or_insert(0);
            if *held >= self.config.per_client_jobs {
                return shed("per-client quota");
            }
            *held += 1;
        }

        let jobs = self.jobs.fetch_add(1, Ordering::AcqRel) + 1;
        if jobs > self.config.max_jobs {
            self.jobs.fetch_sub(1, Ordering::AcqRel);
            self.release_client(client);
            return shed("job budget");
        }
        let total = self.bytes.fetch_add(bytes, Ordering::AcqRel) + bytes;
        if total > self.config.max_bytes {
            self.bytes.fetch_sub(bytes, Ordering::AcqRel);
            self.jobs.fetch_sub(1, Ordering::AcqRel);
            self.release_client(client);
            return shed("byte budget");
        }

        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak_jobs.fetch_max(jobs, Ordering::Relaxed);
        self.peak_bytes.fetch_max(total, Ordering::Relaxed);
        Ok(Permit {
            admission: Arc::clone(self),
            client,
            bytes,
        })
    }

    fn release_client(&self, client: u64) {
        let mut per_client = self.per_client.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(held) = per_client.get_mut(&client) {
            *held = held.saturating_sub(1);
            if *held == 0 {
                per_client.remove(&client);
            }
        }
    }

    /// Jobs currently holding permits.
    pub fn inflight_jobs(&self) -> usize {
        self.jobs.load(Ordering::Acquire)
    }

    /// Payload bytes currently held by permits.
    pub fn inflight_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// Total jobs ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total jobs ever shed.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently admitted jobs — the overload suite
    /// asserts this never exceeds `max_jobs`.
    pub fn peak_jobs(&self) -> usize {
        self.peak_jobs.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently admitted payload bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }
}

/// RAII share of the admission budgets; dropping releases it.
pub struct Permit {
    admission: Arc<Admission>,
    client: u64,
    bytes: u64,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit")
            .field("client", &self.client)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.admission.bytes.fetch_sub(self.bytes, Ordering::AcqRel);
        self.admission.jobs.fetch_sub(1, Ordering::AcqRel);
        self.admission.release_client(self.client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(max_jobs: usize, max_bytes: u64, per_client: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_jobs,
            max_bytes,
            per_client_jobs: per_client,
            retry_after: Duration::from_millis(25),
        }
    }

    #[test]
    fn budgets_are_enforced_and_released() {
        let admission = Admission::new(config(2, 1000, 2));
        let a = admission.try_admit(1, 400).unwrap();
        let _b = admission.try_admit(2, 400).unwrap();
        let over = admission.try_admit(3, 100).unwrap_err();
        assert_eq!(over.reason, "job budget");
        assert_eq!(over.retry_after, Duration::from_millis(25));
        drop(a);
        assert!(admission.try_admit(3, 100).is_ok(), "release reopens");
        assert_eq!(admission.shed(), 1);
    }

    #[test]
    fn byte_budget_sheds_independently_of_job_budget() {
        let admission = Admission::new(config(10, 500, 10));
        let _a = admission.try_admit(1, 400).unwrap();
        let over = admission.try_admit(1, 200).unwrap_err();
        assert_eq!(over.reason, "byte budget");
        // The failed admission must not leak its transient increments.
        assert_eq!(admission.inflight_jobs(), 1);
        assert_eq!(admission.inflight_bytes(), 400);
    }

    #[test]
    fn one_greedy_client_cannot_starve_the_rest() {
        let admission = Admission::new(config(10, 10_000, 2));
        let _a = admission.try_admit(7, 10).unwrap();
        let _b = admission.try_admit(7, 10).unwrap();
        assert_eq!(
            admission.try_admit(7, 10).unwrap_err().reason,
            "per-client quota"
        );
        assert!(
            admission.try_admit(8, 10).is_ok(),
            "other clients still fit"
        );
    }

    #[test]
    fn peaks_record_high_water_marks() {
        let admission = Admission::new(config(4, 10_000, 4));
        let permits: Vec<_> = (0..3)
            .map(|i| admission.try_admit(i, 100).unwrap())
            .collect();
        drop(permits);
        assert_eq!(admission.peak_jobs(), 3);
        assert_eq!(admission.peak_bytes(), 300);
        assert_eq!(admission.inflight_jobs(), 0);
        assert_eq!(admission.inflight_bytes(), 0);
    }
}
