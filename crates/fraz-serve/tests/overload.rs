//! Overload suite: admission control under 2× saturation.
//!
//! A server with a deliberately tiny job budget is hammered by several
//! times that many concurrent clients.  The contract under overload:
//!
//! * excess jobs are shed with a typed `Overloaded{retry_after}` — never
//!   queued without bound, never silently dropped,
//! * the in-flight high-water mark never exceeds the configured budget
//!   (this *is* the bounded-queue-memory assertion: queued payload is
//!   capped by `max_jobs × frame size`),
//! * clients that honour the retry hint eventually get served,
//! * the server stays responsive — status during the storm, clean jobs
//!   after it, and a mid-load drain that completes within its deadline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fraz_serve::admission::AdmissionConfig;
use fraz_serve::loadgen::workload_fields;
use fraz_serve::proto::Response;
use fraz_serve::server::{start, ServeConfig, ServerHandle};
use fraz_serve::Client;

const MAX_JOBS: usize = 2;
const RETRY_AFTER_MS: u64 = 30;

fn tiny_server() -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        admission: AdmissionConfig {
            max_jobs: MAX_JOBS,
            max_bytes: 64 << 20,
            per_client_jobs: 1,
            retry_after: Duration::from_millis(RETRY_AFTER_MS),
        },
        ..ServeConfig::default()
    })
    .expect("server starts")
}

#[test]
fn saturation_sheds_typed_and_bounds_the_queue() {
    let handle = tiny_server();
    let addr = handle.local_addr().to_string();

    const CLIENTS: usize = 8; // 4× the job budget
    let served = AtomicU64::new(0);
    let shed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let served = &served;
            let shed = &shed;
            scope.spawn(move || {
                let fields = workload_fields(32, 700 + c as u64);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_reply_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for j in 0..6usize {
                    let reply = client
                        .compress("sz", &fields[j % fields.len()], 6.0, 0.5, 0)
                        .expect("typed reply");
                    match reply {
                        Response::Compressed { .. } => {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Overloaded { retry_after_ms } => {
                            assert_eq!(
                                retry_after_ms as u64, RETRY_AFTER_MS,
                                "shed replies must carry the configured hint"
                            );
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("storm job answered {:?}", other.kind()),
                    }
                }
            });
        }
        // Mid-storm, status must still answer (it bypasses admission).
        std::thread::sleep(Duration::from_millis(50));
        let mut probe = Client::connect(&addr).expect("connect during storm");
        probe
            .set_reply_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        match probe.status().expect("status during storm") {
            Response::Status(_) => {}
            other => panic!("mid-storm status answered {:?}", other.kind()),
        }
    });

    // Exactly one outcome per issued job, with real shedding.
    assert_eq!(
        served.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed),
        (CLIENTS * 6) as u64
    );
    assert!(shed.load(Ordering::Relaxed) > 0, "4x overload must shed");
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "overload must not starve"
    );

    // The bounded-queue guarantee: concurrency never exceeded the budget.
    assert!(
        handle.peak_jobs() <= MAX_JOBS,
        "peak {} jobs exceeded the budget of {MAX_JOBS}",
        handle.peak_jobs()
    );
    assert_eq!(handle.status().jobs_shed, shed.load(Ordering::Relaxed));

    // After the storm the server serves a clean job promptly.
    let fields = workload_fields(32, 3);
    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client
        .compress("sz", &fields[0], 6.0, 0.5, 0)
        .expect("typed reply")
    {
        Response::Compressed { .. } => {}
        other => panic!("post-storm compress answered {:?}", other.kind()),
    }
    handle.join();
}

#[test]
fn clients_that_honour_the_retry_hint_all_get_served() {
    let handle = tiny_server();
    let addr = handle.local_addr().to_string();

    const CLIENTS: usize = 6;
    let retried = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let retried = &retried;
            scope.spawn(move || {
                let fields = workload_fields(24, 800 + c as u64);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_reply_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                // Retry-with-backoff: exactly what the typed hint is for.
                for attempt in 0..200usize {
                    match client
                        .compress("sz", &fields[0], 6.0, 0.5, 0)
                        .expect("typed reply")
                    {
                        Response::Compressed { .. } => return,
                        Response::Overloaded { retry_after_ms } => {
                            retried.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                        }
                        other => panic!("retry job answered {:?}", other.kind()),
                    }
                    assert!(attempt < 199, "client never got served");
                }
            });
        }
    });

    assert!(
        retried.load(Ordering::Relaxed) > 0,
        "6 clients against a budget of {MAX_JOBS} must collide"
    );
    assert_eq!(handle.status().jobs_ok, CLIENTS as u64);
    handle.join();
}

#[test]
fn byte_budget_sheds_jobs_larger_than_the_window() {
    let handle = start(ServeConfig {
        workers: 1,
        admission: AdmissionConfig {
            max_jobs: 8,
            max_bytes: 1024, // smaller than any compress payload below
            per_client_jobs: 8,
            retry_after: Duration::from_millis(10),
        },
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    let fields = workload_fields(32, 4); // 32*32*4 B payloads ≫ 1 KiB
    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client
        .compress("sz", &fields[0], 6.0, 0.5, 0)
        .expect("typed reply")
    {
        Response::Overloaded { retry_after_ms } => assert_eq!(retry_after_ms, 10),
        other => panic!("oversized job answered {:?}", other.kind()),
    }
    // Status still answers: the byte budget protects memory, not liveness.
    match client.status().expect("typed reply") {
        Response::Status(status) => assert_eq!(status.jobs_shed, 1),
        other => panic!("status answered {:?}", other.kind()),
    }
    handle.join();
}

#[test]
fn drain_under_load_completes_within_its_deadline() {
    let handle = start(ServeConfig {
        workers: 2,
        drain_deadline: Duration::from_secs(10),
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    let draining_seen = AtomicU64::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        for c in 0..3u64 {
            let addr = &addr;
            let draining_seen = &draining_seen;
            let stop = &stop;
            scope.spawn(move || {
                let fields = workload_fields(32, 900 + c);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_reply_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for j in 0..200usize {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match client.compress("sz", &fields[j % fields.len()], 6.0, 0.5, 0) {
                        Ok(Response::Draining) => {
                            draining_seen.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        Ok(_) => {}
                        // A drained server closing the line is equally
                        // clean from where the client stands.
                        Err(_) => return,
                    }
                }
            });
        }

        // Let the load establish, then drain out from under it.
        std::thread::sleep(Duration::from_millis(250));
        let report = handle.join();
        stop.store(true, Ordering::Relaxed);

        assert!(
            report.drained_within_deadline,
            "in-flight jobs must finish inside the drain window"
        );
        assert!(report.drain_elapsed < Duration::from_secs(10));
        assert!(report.status.draining);
        assert!(
            report.status.jobs_ok > 0,
            "jobs issued before the drain must have completed"
        );
        assert_eq!(report.status.inflight_jobs, 0, "nothing left in flight");
    });
    // Jobs that raced the drain saw a typed Draining reply or a clean
    // close; either way no client hung (the scope exiting proves it).
}
