//! Adversarial protocol suite against a *live* server.
//!
//! Satellite (c) of the robustness PR: truncation at every byte of a
//! valid frame, garbage frames, oversized length prefixes, mid-frame
//! disconnects, slow-sender fragmentation, and malformed bodies inside
//! intact frames.  The server must answer every hostile input with a
//! typed error or a clean close — never a panic, never a hang, never an
//! unbounded allocation — and must keep serving well-formed clients
//! afterwards.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use fraz_serve::proto::{read_frame, Request, Response, MAX_FRAME_LEN};
use fraz_serve::server::{start, ServeConfig, ServerHandle};
use fraz_serve::Client;

fn serve() -> ServerHandle {
    start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// A status round trip proves the server is alive and typed.
fn assert_healthy(addr: &str) {
    let mut client = Client::connect(addr).expect("healthy server accepts");
    client
        .set_reply_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.status().expect("healthy server replies") {
        Response::Status(_) => {}
        other => panic!("status answered {:?}", other.kind()),
    }
}

/// One well-formed request frame with a non-trivial body.
fn valid_put_frame() -> Vec<u8> {
    let payload = Request::PutStore {
        key: "adversarial".into(),
        blob: (0..32u8).collect(),
    }
    .encode();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

#[test]
fn truncation_at_every_byte_is_survived() {
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let frame = valid_put_frame();

    // Cut the connection after every possible prefix of a valid frame:
    // mid-header, mid-length, mid-body.  Each cut is one hostile client.
    for cut in 0..frame.len() {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.write_all(&frame[..cut]).expect("prefix writes");
        drop(stream);
    }

    // Interleaved well-formed traffic still works.
    assert_healthy(&addr);
    let report = handle.join();
    assert_eq!(report.status.jobs_ok, 0, "no truncated put may be acked");
}

#[test]
fn garbage_frames_get_a_typed_reply_and_the_connection_survives() {
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Deterministic garbage: every payload is a validly framed pile of
    // junk, so the frame layer stays in sync and the body decoder is the
    // one under attack.
    for i in 0..64u64 {
        let garbage: Vec<u8> = (0..(1 + (i * 37) % 200))
            .map(|j| ((i * 131 + j * 29) % 256) as u8)
            .collect();
        client.send_raw_frame(&garbage).expect("frame sends");
        match client.read_reply().expect("typed reply") {
            Response::BadRequest { .. } => {}
            other => panic!("garbage answered {:?}", other.kind()),
        }
    }

    // The same connection still serves a real request.
    match client.status().expect("connection still usable") {
        Response::Status(status) => {
            assert!(status.jobs_rejected >= 64, "rejections must be counted")
        }
        other => panic!("status answered {:?}", other.kind()),
    }
    handle.join();
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let handle = serve();
    let addr = handle.local_addr().to_string();

    for len in [u32::MAX, (MAX_FRAME_LEN as u32) + 1, 1 << 30] {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&len.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 16]).unwrap();
        // The server answers with a typed BadRequest (best effort) and
        // closes — it must not wait for, or allocate, the claimed bytes.
        match read_frame(&mut stream, MAX_FRAME_LEN) {
            Ok(payload) => {
                let reply = Response::decode(&payload).expect("typed reply");
                assert!(
                    matches!(reply, Response::BadRequest { .. }),
                    "oversized prefix answered {:?}",
                    reply.kind()
                );
            }
            Err(_) => {} // clean close is also acceptable
        }
        // Either way the connection is done.
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }

    assert_healthy(&addr);
    handle.join();
}

#[test]
fn mid_frame_disconnect_storm_leaves_the_server_healthy() {
    let handle = serve();
    let addr = handle.local_addr().to_string();

    for i in 0..40u32 {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        // Claim a 4 KiB payload, deliver only a sliver, vanish.
        stream.write_all(&4096u32.to_le_bytes()).unwrap();
        stream.write_all(&vec![0xAB; (i % 7 + 1) as usize]).unwrap();
        drop(stream);
    }

    assert_healthy(&addr);
    handle.join();
}

#[test]
fn slowloris_fragmentation_still_parses() {
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let frame = valid_put_frame();

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // One byte at a time with pauses: many read timeouts fire server-side
    // mid-frame, none of which may abandon the partial frame.
    for byte in &frame {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let payload = read_frame(&mut stream, MAX_FRAME_LEN).expect("reply arrives");
    let reply = Response::decode(&payload).expect("typed reply");
    assert!(
        matches!(reply, Response::Stored { .. }),
        "dripped put answered {:?}",
        reply.kind()
    );
    handle.join();
}

#[test]
fn malformed_body_in_an_intact_frame_keeps_the_connection_usable() {
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let valid_body = Request::PutStore {
        key: "k".into(),
        blob: vec![1, 2, 3, 4, 5, 6, 7, 8],
    }
    .encode();
    // Every proper prefix of a valid body is an intact frame whose body
    // decode must fail typed — and must not poison the connection.
    for cut in 0..valid_body.len() {
        client.send_raw_frame(&valid_body[..cut]).expect("sends");
        match client.read_reply().expect("typed reply") {
            Response::BadRequest { .. } => {}
            other => panic!("cut body at {cut} answered {:?}", other.kind()),
        }
    }
    // Unknown opcodes likewise.
    for opcode in [0x00u8, 0x07, 0x7F, 0xFF] {
        client.send_raw_frame(&[opcode, 1, 2, 3]).expect("sends");
        match client.read_reply().expect("typed reply") {
            Response::BadRequest { .. } => {}
            other => panic!("opcode {opcode:#x} answered {:?}", other.kind()),
        }
    }

    // The intact full body still works on the same connection.
    client.send_raw_frame(&valid_body).expect("sends");
    match client.read_reply().expect("typed reply") {
        Response::Stored { .. } => {}
        other => panic!("valid body answered {:?}", other.kind()),
    }
    handle.join();
}

#[test]
fn hostile_dims_cannot_force_an_allocation() {
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // A compress request whose dataset claims 2^60 elements but ships
    // almost no bytes: the body decoder must reject it from the length
    // check alone.
    let mut body = vec![0x02u8]; // Compress opcode
    body.extend_from_slice(&0u32.to_le_bytes()); // deadline
    body.extend_from_slice(&8.0f64.to_bits().to_le_bytes()); // ratio
    body.extend_from_slice(&0.1f64.to_bits().to_le_bytes()); // tolerance
    body.extend_from_slice(&2u32.to_le_bytes()); // codec len
    body.extend_from_slice(b"sz");
    body.push(0); // dtype f32
    body.extend_from_slice(&0u64.to_le_bytes()); // timestep
    body.extend_from_slice(&1u32.to_le_bytes()); // app len
    body.push(b'a');
    body.extend_from_slice(&1u32.to_le_bytes()); // field len
    body.push(b'f');
    body.push(2); // ndims
    body.extend_from_slice(&(1u64 << 30).to_le_bytes());
    body.extend_from_slice(&(1u64 << 30).to_le_bytes());
    body.extend_from_slice(&16u32.to_le_bytes()); // 16 bytes of "values"
    body.extend_from_slice(&[0u8; 16]);

    client.send_raw_frame(&body).expect("sends");
    match client.read_reply().expect("typed reply") {
        Response::BadRequest { .. } => {}
        other => panic!("2^60-element claim answered {:?}", other.kind()),
    }
    assert_healthy(&addr);
    handle.join();
}

#[test]
fn a_reply_frame_sent_as_a_request_is_rejected_not_echoed() {
    // Response opcodes are not request opcodes: a confused (or malicious)
    // peer replaying server output at the server gets a typed rejection.
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    let reply_payload = Response::Draining.encode();
    client.send_raw_frame(&reply_payload).expect("sends");
    match client.read_reply().expect("typed reply") {
        Response::BadRequest { .. } => {}
        other => panic!("replayed response answered {:?}", other.kind()),
    }
    handle.join();
}

#[test]
fn writes_after_server_drain_fail_cleanly() {
    let handle = serve();
    let addr = handle.local_addr().to_string();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Let the connection thread pick us up, then drain the server.
    std::thread::sleep(Duration::from_millis(60));
    let report = handle.join();
    assert!(report.drained_within_deadline);

    // Requests racing the drain end as a typed Draining reply, a clean
    // close, or a connection error — never a hang.
    let frame = valid_put_frame();
    let _ = stream.write_all(&frame);
    match read_frame(&mut stream, MAX_FRAME_LEN) {
        Ok(payload) => {
            let reply = Response::decode(&payload).expect("typed reply");
            assert!(
                matches!(reply, Response::Draining | Response::BadRequest { .. }),
                "post-drain request answered {:?}",
                reply.kind()
            );
        }
        Err(_) => {} // closed is fine
    }
}
